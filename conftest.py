"""Pytest bootstrap for running the suite from a source checkout.

If the package has been installed (``pip install -e .``) this file is a
no-op; otherwise it puts ``src/`` on ``sys.path`` so ``import repro`` works
when tests and benchmarks are run directly from the repository root (useful in
offline environments where editable installs are unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
