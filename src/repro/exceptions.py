"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or row does not conform to its declared schema."""


class UnknownAttributeError(SchemaError):
    """An operation referenced an attribute that is not in the schema."""


class PartitioningError(ReproError):
    """Sensitive/non-sensitive partitioning could not be performed."""


class BinningError(ReproError):
    """Bin creation failed (e.g. inconsistent inputs to Algorithm 1)."""


class BinLookupError(BinningError):
    """A query value could not be located in any bin (Algorithm 2)."""


class QueryError(ReproError):
    """A query is malformed or refers to unknown attributes."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, corrupted ciphertext...)."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed; the ciphertext was tampered with."""


class CloudError(ReproError):
    """The (simulated) cloud could not execute the requested operation."""


class MemberFailure(CloudError):
    """A multi-cloud fleet member crashed (or was killed) while serving.

    The crash signal the fleet coordinator narrows on: a member's batch
    raising this is retried and then failed over to a live replica.  Real
    member implementations (or their RPC boundary) wrap transport-level
    outages in it; other :class:`CloudError` subclasses are deterministic
    request/configuration errors and propagate to the caller instead of
    marking healthy members failed.
    """


class MemberTimeout(MemberFailure):
    """A fleet member missed an RPC deadline (wedged or badly degraded).

    Raised by :class:`repro.cloud.process_member.ProcessMemberProxy` when a
    worker fails to reply within ``rpc_timeout`` and by health probes that
    find a member unresponsive.  Subclasses :class:`MemberFailure` because a
    wedged-but-alive worker must feed the same retry/failover machinery a
    crashed one does — the alternative is a coordinator blocked forever on a
    pipe ``recv()``.  The proxy abandons (kills) the worker on timeout, since
    a late reply from it could no longer be matched to its request.
    """


class ProcessMemberError(CloudError):
    """The worker protocol behind a process-backed fleet member broke.

    Raised by :class:`repro.cloud.process_member.ProcessMemberProxy` when the
    member process is unreachable *outside* of batch service — during
    outsourcing, index builds, or observation management.  A worker that
    dies while serving a batch is reported as :class:`MemberFailure`
    instead, so a real process loss flows into the fleet's retry/failover
    machinery exactly like a simulated crash.
    """


class FleetDegradedError(CloudError):
    """Too many members failed: a request half has no live replica left.

    Raised by :meth:`repro.cloud.multi_cloud.MultiCloud.process_batch` when
    every candidate member for some request half (the bin's primary and all
    of its replicas, or every cleartext-capable member) is in the failed
    set — the fleet cannot serve the batch without violating either
    availability or the non-collusion placement rules.
    """


class SecurityViolation(ReproError):
    """A partitioned-data-security invariant was found to be violated."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or missing parameters."""


class ServiceError(ReproError):
    """The encrypted-search service could not serve a request.

    Base class for service-layer failures reported back over the wire; the
    server maps any :class:`ReproError` a tenant operation raises into an
    error response carrying the original exception type's name.
    """


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full; the request was rejected.

    The bounded queue trades latency for an explicit signal: rather than
    letting queueing delay grow without bound past the service's capacity,
    an over-offered request is rejected immediately and the client may
    retry later (ideally with backoff).  Load harnesses count these
    rejections separately from served latencies.
    """


class TenantRateLimitedError(ServiceOverloadedError):
    """One tenant exhausted its token bucket; only *its* request was shed.

    Subclasses :class:`ServiceOverloadedError` because the client-side
    remedy is the same (back off, retry later), but the cause is per-tenant
    admission — the service as a whole has capacity, this tenant spent its
    share.  Rejections are accounted on the tenant's session and surfaced
    via the ``stats`` op, so a noisy tenant's shed load is visible without
    touching the global admission counters.
    """


class DeadlineExceededError(ServiceError):
    """A request's client-supplied deadline expired before execution.

    Requests may carry a time-to-live; a worker that dequeues an
    already-expired request drops it *without executing* — serving work
    whose caller has given up wastes capacity that live requests need.
    The typed error tells the client the request was never applied, so a
    deadline-bounded caller can safely re-issue it (dedup makes the retry
    exactly-once for mutating ops).
    """


class WireProtocolError(ServiceError):
    """The service wire itself (framing, not the request) was violated."""


class FrameTooLargeError(WireProtocolError):
    """A frame announced a length above the configured cap.

    Raised instead of allocating the announced buffer: an adversarial (or
    corrupted) length prefix must cost the peer its connection, not cost
    the server an OOM.  Client-side the same cap rejects an oversized
    outbound request before any bytes hit the socket.
    """


class FrameCorruptionError(WireProtocolError):
    """A frame's CRC did not match its payload; the stream is poisoned.

    After a checksum mismatch the receiver cannot trust that it is still
    aligned on frame boundaries, so the connection is closed rather than
    resynchronised — failing loudly is what keeps a flipped bit from
    silently becoming a wrong answer.
    """


class WireTimeoutError(WireProtocolError):
    """A read deadline expired: the peer is idle, wedged, or trickling.

    Covers both the handshake/idle deadline (no first byte in time) and
    the per-message deadline (a frame that started but never finished — the
    slow-loris pattern).  The server reaps the connection; a resilient
    client reconnects and replays.
    """


class ServiceClosedError(ServiceError):
    """The service (or this connection) is shutting down or already closed."""


class UnknownTenantError(ServiceError):
    """A request named a tenant the registry has not provisioned."""
