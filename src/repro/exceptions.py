"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or row does not conform to its declared schema."""


class UnknownAttributeError(SchemaError):
    """An operation referenced an attribute that is not in the schema."""


class PartitioningError(ReproError):
    """Sensitive/non-sensitive partitioning could not be performed."""


class BinningError(ReproError):
    """Bin creation failed (e.g. inconsistent inputs to Algorithm 1)."""


class BinLookupError(BinningError):
    """A query value could not be located in any bin (Algorithm 2)."""


class QueryError(ReproError):
    """A query is malformed or refers to unknown attributes."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, corrupted ciphertext...)."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed; the ciphertext was tampered with."""


class CloudError(ReproError):
    """The (simulated) cloud could not execute the requested operation."""


class SecurityViolation(ReproError):
    """A partitioned-data-security invariant was found to be violated."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or missing parameters."""
