"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or row does not conform to its declared schema."""


class UnknownAttributeError(SchemaError):
    """An operation referenced an attribute that is not in the schema."""


class PartitioningError(ReproError):
    """Sensitive/non-sensitive partitioning could not be performed."""


class BinningError(ReproError):
    """Bin creation failed (e.g. inconsistent inputs to Algorithm 1)."""


class BinLookupError(BinningError):
    """A query value could not be located in any bin (Algorithm 2)."""


class QueryError(ReproError):
    """A query is malformed or refers to unknown attributes."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, corrupted ciphertext...)."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed; the ciphertext was tampered with."""


class CloudError(ReproError):
    """The (simulated) cloud could not execute the requested operation."""


class MemberFailure(CloudError):
    """A multi-cloud fleet member crashed (or was killed) while serving.

    The crash signal the fleet coordinator narrows on: a member's batch
    raising this is retried and then failed over to a live replica.  Real
    member implementations (or their RPC boundary) wrap transport-level
    outages in it; other :class:`CloudError` subclasses are deterministic
    request/configuration errors and propagate to the caller instead of
    marking healthy members failed.
    """


class MemberTimeout(MemberFailure):
    """A fleet member missed an RPC deadline (wedged or badly degraded).

    Raised by :class:`repro.cloud.process_member.ProcessMemberProxy` when a
    worker fails to reply within ``rpc_timeout`` and by health probes that
    find a member unresponsive.  Subclasses :class:`MemberFailure` because a
    wedged-but-alive worker must feed the same retry/failover machinery a
    crashed one does — the alternative is a coordinator blocked forever on a
    pipe ``recv()``.  The proxy abandons (kills) the worker on timeout, since
    a late reply from it could no longer be matched to its request.
    """


class ProcessMemberError(CloudError):
    """The worker protocol behind a process-backed fleet member broke.

    Raised by :class:`repro.cloud.process_member.ProcessMemberProxy` when the
    member process is unreachable *outside* of batch service — during
    outsourcing, index builds, or observation management.  A worker that
    dies while serving a batch is reported as :class:`MemberFailure`
    instead, so a real process loss flows into the fleet's retry/failover
    machinery exactly like a simulated crash.
    """


class FleetDegradedError(CloudError):
    """Too many members failed: a request half has no live replica left.

    Raised by :meth:`repro.cloud.multi_cloud.MultiCloud.process_batch` when
    every candidate member for some request half (the bin's primary and all
    of its replicas, or every cleartext-capable member) is in the failed
    set — the fleet cannot serve the batch without violating either
    availability or the non-collusion placement rules.
    """


class SecurityViolation(ReproError):
    """A partitioned-data-security invariant was found to be violated."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or missing parameters."""


class ServiceError(ReproError):
    """The encrypted-search service could not serve a request.

    Base class for service-layer failures reported back over the wire; the
    server maps any :class:`ReproError` a tenant operation raises into an
    error response carrying the original exception type's name.
    """


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full; the request was rejected.

    The bounded queue trades latency for an explicit signal: rather than
    letting queueing delay grow without bound past the service's capacity,
    an over-offered request is rejected immediately and the client may
    retry later (ideally with backoff).  Load harnesses count these
    rejections separately from served latencies.
    """


class ServiceClosedError(ServiceError):
    """The service (or this connection) is shutting down or already closed."""


class UnknownTenantError(ServiceError):
    """A request named a tenant the registry has not provisioned."""
