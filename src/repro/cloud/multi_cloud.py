"""Sharded execution across multiple non-colluding clouds.

The paper's query-binning architecture assumes sensitive data can be spread
across clouds that do not collude.  This module provides the fleet-side half
of that architecture:

* :class:`MultiCloud` — a fixed set of :class:`CloudServer` members, each
  recording its *own* adversarial view, statistics, and network charges;
* :class:`ShardRouter` — the partition-aware placement function that assigns
  QB bins to members and routes request halves to them.

Placement policies
------------------
Sensitive bins are assigned to members by one of two deterministic policies
(see :data:`repro.data.partition.SHARD_POLICIES`):

``hash``
    ``crc32(bin) % count`` — placement of a bin is independent of every
    other bin, so layouts that grow (incremental re-binning) never move
    existing bins.
``range``
    contiguous near-even ranges of bin indexes — the classic choice when
    consecutive bins should stay co-resident (e.g. to serve range extensions
    from one member).

At outsourcing time every member receives the cleartext non-sensitive
relation (it is public) but only the encrypted rows of the sensitive bins the
router assigned to it, so a bin's whole slice — real and fake tuples alike —
lives on exactly one member and a bin retrieval never crosses servers.

The non-collusion model
-----------------------
A binned request has two halves: the opaque tokens for a sensitive bin and
the cleartext values of a non-sensitive bin.  Observing *both* halves of one
query is exactly what lets an adversary associate the two bins (the paper's
Table V leakage), so the router never co-locates them.  With
``replication_factor = k`` the router carves the member ring into two
segments *per sensitive bin* ``s`` with primary member ``p``:

* the **token segment** ``{p, p+1, ..., p+k-1}`` (mod count) — the primary
  and its ``k-1`` ring successors, the only members ever storing or serving
  ``s``'s encrypted slice (primary or replica);
* the **cleartext segment** ``{p+k, ..., p+count-1}`` (mod count) — the only
  members ever serving the cleartext half of a request anchored at ``s``;
  the policy picks ``p + k + policy(ns_bin) % (count - k)`` and failover
  walks the rest of the segment.

The two segments are disjoint by construction, so *no placement the fleet
can ever produce* — primary routing, replica storage, or failover — puts a
bin's token half and its paired cleartext traffic on the same member.  At
``k = 1`` this degrades to PR 2's offset rule exactly.  Each member records
views containing either tokens or cleartext values, never both, and the
fleet as a whole observes exactly the information a single server would have
observed — the parity tests in ``tests/test_multicloud_parity.py`` and the
exhaustive grid in ``tests/test_replica_router.py`` pin this down.

Fault tolerance
---------------
:meth:`MultiCloud.process_batch` survives member failures.  A member whose
batch raises :class:`~repro.exceptions.MemberFailure` (the crash signal; a
deterministic :class:`CloudError` such as a malformed request propagates
instead of masquerading as an outage) is retried up to ``member_retries``
times (transient faults), then added to the fleet's persistent
``failed_members`` set; every half it was serving is re-routed to the next
live candidate — sensitive halves walk the bin's replica chain, cleartext
halves walk the cleartext segment — and served in a follow-up wave.  A
crashed member is assumed to lose the volatile observations of its in-flight
batch (see :meth:`CloudServer.restore_observations`), so a degraded run
records exactly one view per half fleet-wide and aggregates to the same
statistics as a healthy run.  When a half's candidates are all dead the
batch raises :class:`~repro.exceptions.FleetDegradedError` instead of
hanging or silently dropping requests.

Concurrency and member backends
-------------------------------
:meth:`MultiCloud.process_batch` splits a batch per member and serves the
per-member batches concurrently.  Two backends place the member compute:

``member_backend="thread"`` (default)
    every member is an in-process :class:`CloudServer` served on a thread
    pool.  Cheap and zero-copy, but all members compute under the
    coordinator's GIL: CPU-bound cloud work (SSE trial decryption above
    all) is time-sliced, not parallel.  Members share one
    :class:`EncryptedSearchScheme` object (the keys are the owner's);
    schemes whose cloud-side matching mutates internal counters declare
    ``concurrent_search_safe = False`` and are served one member at a time
    rather than racing on ``+=``.

``member_backend="process"``
    every member's server lives in its own worker process behind a
    :class:`~repro.cloud.process_member.ProcessMemberProxy`.  Requests and
    responses are picklable wire types; observations sync back to the
    coordinator in per-batch deltas, so adversary/auditor code still sees
    exactly the single-server information split.  The coordinator threads
    release the GIL while waiting on worker pipes, which is what finally
    lets trial-decryption work scale with member count on multi-core
    hardware.  Each worker holds its *own* scheme copy, so
    ``concurrent_search_safe = False`` schemes need no serialisation (their
    internal work counters then tally per-worker work and are not synced
    back to the owner's scheme object).  Call :meth:`MultiCloud.close`
    (or use the fleet as a context manager) to reap the workers.

Either way each member's state is touched by only one worker at a time, and
each member processes its requests in arrival order, so per-server view
logs, statistics, and network charges are deterministic regardless of
scheduling.  The optional ``response_consumer`` runs in the *calling*
thread as members complete, which is what lets the query engine overlap
owner-side decryption with the remaining members' searches — under
failover it is invoked exactly once per half, whenever the half's serving
member (original or replica) completes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.cloud.network import NetworkModel
from repro.cloud.process_member import ProcessMemberProxy
from repro.cloud.server import BatchRequest, CloudServer, QueryResponse
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.partition import (
    SHARD_POLICIES,
    rendezvous_order,
    replica_chain,
    stable_item_hash,
)
from repro.data.relation import Relation, Row
from repro.exceptions import CloudError, FleetDegradedError, MemberFailure

#: (server index, position) of one request half; ``position`` is the index
#: inside the server's batch for :meth:`MultiCloud.split_requests` plans and
#: the absolute view-log index in :class:`FleetBatchReport` placements (the
#: two coincide for a freshly reset fleet serving one batch).
HalfPlacement = Optional[Tuple[int, int]]


@dataclass(frozen=True)
class FleetBatchReport:
    """How the last :meth:`MultiCloud.process_batch` call actually placed work.

    ``placements`` mirrors :meth:`MultiCloud.split_requests` — one
    ``(sensitive half, cleartext half)`` entry per input request — but
    records where each half was *finally served* after any failover, as
    ``(server index, absolute view-log position)``.  ``failed_members``
    holds the members newly detected as failed during this batch;
    ``rerouted_halves`` counts the halves that had to move to a replica.
    The fault-injection parity harness reads this to look up per-query views
    in a degraded run.
    """

    placements: Tuple[Tuple[HalfPlacement, HalfPlacement], ...]
    failed_members: frozenset
    rerouted_halves: int


@dataclass(frozen=True)
class FleetDeployment:
    """What the fleet was last outsourced with — the context membership
    changes need to initialise fresh members (join/replace) without a full
    re-outsource: the cleartext relation and index attribute every member
    mirrors, and the scheme whose cloud-side logic serves the slices."""

    attribute: str
    non_sensitive: Relation
    scheme: EncryptedSearchScheme


@dataclass
class _HalfUnit:
    """One request half in flight: its candidates and current assignee."""

    slot: int
    kind: str  # "sensitive" | "cleartext"
    request: BatchRequest
    candidates: Tuple[int, ...]
    attempt: int = 0
    member: int = -1


class ShardRouter:
    """Deterministic assignment of QB bins — and request halves — to members.

    Parameters
    ----------
    num_sensitive_bins / num_non_sensitive_bins:
        The bin counts of the layout being sharded.
    num_shards:
        Fleet size; at least ``replication_factor + 1``, because the token
        segment of every bin takes ``replication_factor`` members and the
        non-collusion guarantee needs at least one member left over for the
        cleartext half.
    policy:
        ``"hash"`` or ``"range"`` — see the module docstring.
    replication_factor:
        How many members hold each sensitive bin's slice (primary included).
        ``1`` (the default) reproduces PR 2's unreplicated placement exactly;
        ``k ≥ 2`` tolerates ``k - 1`` failed members per bin.  Replicas are
        the primary's ring successors, which keeps them inside the bin's
        token segment — see the module docstring's non-collusion model.

    Bins outside the counts the router was built for (layouts can grow
    through incremental re-binning) fall back to hash placement, so routing
    stays total without rebuilding.

    ``live_members`` (default: every slot) restricts routing to a subset of
    the fleet's member slots — the elastic-fleet membership view.  Primaries
    keep their *static* slot assignment (so bins anchored on live members
    never move when an unrelated member dies), but chains walk the ring
    skipping non-live slots: a bin whose static chain touches a dead member
    extends to the next live successor, which is exactly where the lifecycle
    manager re-replicates its slice.  The cleartext segment becomes "every
    live member outside the bin's live chain", ordered by rendezvous hash
    after the static preferred pick — so a dead member's cleartext load
    spreads across all eligible survivors instead of piling onto one
    deterministic successor.  Full membership degrades to the static
    behaviour bit-for-bit.
    """

    def __init__(
        self,
        num_sensitive_bins: int,
        num_non_sensitive_bins: int,
        num_shards: int,
        policy: str = "hash",
        replication_factor: int = 1,
        live_members: Optional[Sequence[int]] = None,
    ):
        if num_shards < 2:
            raise CloudError(
                "shard routing needs at least 2 servers so the cleartext half "
                f"never lands on the sensitive half's server (got {num_shards})"
            )
        if replication_factor < 1:
            raise CloudError(
                f"replication_factor must be at least 1, got {replication_factor}"
            )
        if num_shards < replication_factor + 1:
            raise CloudError(
                f"replication_factor={replication_factor} needs at least "
                f"{replication_factor + 1} servers — {replication_factor} token "
                "members per bin plus one member left over for the cleartext "
                f"half (got {num_shards})"
            )
        try:
            assign = SHARD_POLICIES[policy]
        except KeyError:
            raise CloudError(
                f"unknown shard policy {policy!r}; choose from "
                f"{sorted(SHARD_POLICIES)}"
            ) from None
        self.num_sensitive_bins = num_sensitive_bins
        self.num_non_sensitive_bins = num_non_sensitive_bins
        self.num_shards = num_shards
        self.policy = policy
        self.replication_factor = replication_factor
        if live_members is None:
            self.live_members = frozenset(range(num_shards))
        else:
            self.live_members = frozenset(live_members)
            if not self.live_members <= frozenset(range(num_shards)):
                raise CloudError(
                    f"live_members {sorted(self.live_members)} outside the "
                    f"fleet's {num_shards} slots"
                )
            if len(self.live_members) < replication_factor + 1:
                raise CloudError(
                    f"{len(self.live_members)} live members cannot host "
                    f"replication_factor={replication_factor} plus a disjoint "
                    "cleartext member; replace failed members or lower the "
                    "replication factor"
                )
        self._full_membership = len(self.live_members) == num_shards
        #: primary slot → live chain; tiny key space, hot planning path.
        self._chain_memo: Dict[int, Tuple[int, ...]] = {}
        self._sensitive_assignment: Dict[object, int] = assign(
            range(num_sensitive_bins), num_shards
        )
        # The cleartext half is placed by an *offset into the cleartext
        # segment* of the anchoring sensitive member, never by an absolute
        # shard, so it can collide neither with the sensitive half nor with
        # any of its replicas, no matter which member owns the bin.  The raw
        # policy value is kept (not the precomputed offset) so failover can
        # walk the rest of the segment deterministically from it.
        self._non_sensitive_raw: Dict[object, int] = assign(
            range(num_non_sensitive_bins), num_shards
        )
        # Routing is a pure function of the (immutable) assignment tables,
        # and QB workloads revisit the same bin pairs constantly, so the
        # per-request candidate chains are memoised — the hot batch-planning
        # path then does one dict probe per half instead of rebuilding ring
        # tuples per query.
        self._candidate_memo: Dict[
            Tuple[Optional[int], Optional[int], bool, bool],
            Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]],
        ] = {}

    # -- bin-level placement -------------------------------------------------
    def shard_of_sensitive(self, bin_index: int) -> int:
        """The member owning (primary for) sensitive bin ``bin_index``."""
        shard = self._sensitive_assignment.get(bin_index)
        if shard is None:  # bin created after the router was built
            shard = stable_item_hash(bin_index) % self.num_shards
        return shard

    def _chain_from(self, primary: int) -> Tuple[int, ...]:
        """The live token chain anchored at slot ``primary``.

        Full membership: the static ring successors (memoised globally).
        Partial membership: the first ``replication_factor`` *live* slots at
        or after ``primary`` on the ring — the chain a bin's slice is
        re-replicated onto after a member loss.
        """
        if self._full_membership:
            return replica_chain(primary, self.num_shards, self.replication_factor)
        chain = self._chain_memo.get(primary)
        if chain is None:
            collected: List[int] = []
            for offset in range(self.num_shards):
                member = (primary + offset) % self.num_shards
                if member in self.live_members:
                    collected.append(member)
                    if len(collected) == self.replication_factor:
                        break
            chain = tuple(collected)
            self._chain_memo[primary] = chain
        return chain

    def replicas_of_sensitive(self, bin_index: Optional[int]) -> Tuple[int, ...]:
        """Every member holding bin ``bin_index``'s slice, primary first.

        This is the failover order for the bin's token half.  ``None`` (rows
        or requests without a bin annotation) anchors on member 0, matching
        :meth:`route` and the outsourcing path for unplaced rows.
        """
        primary = 0 if bin_index is None else self.shard_of_sensitive(bin_index)
        return self._chain_from(primary)

    def cleartext_candidates(
        self, bin_index: Optional[int], sensitive_shard: int
    ) -> Tuple[int, ...]:
        """The failover order for a cleartext half anchored at ``sensitive_shard``.

        All candidates lie in the anchor's cleartext segment (the live
        members minus the anchor's live token chain), so every choice —
        preferred or failover — is guaranteed disjoint from the bin's
        primary *and* replicas.  The first candidate is the static policy
        pick when it is eligible (healthy placement never moves); the rest
        are ordered by rendezvous hash per bin, so a failed member's
        cleartext traffic spreads over *all* eligible survivors instead of
        walking one deterministic successor.
        """
        window = self.num_shards - self.replication_factor
        if bin_index is None:
            raw = 0
        else:
            raw = self._non_sensitive_raw.get(bin_index)
            if raw is None:
                raw = stable_item_hash(bin_index)
        preferred = (
            sensitive_shard + self.replication_factor + raw % window
        ) % self.num_shards
        chain = set(self._chain_from(sensitive_shard))
        eligible = self.live_members - chain
        ordered: List[int] = []
        if preferred in eligible:
            ordered.append(preferred)
        ordered.extend(
            member
            for member in rendezvous_order(bin_index, sorted(eligible))
            if member != preferred
        )
        return tuple(ordered)

    def shard_of_non_sensitive(self, bin_index: Optional[int], sensitive_shard: int) -> int:
        """The preferred member for a cleartext half, guaranteed ≠ any token member."""
        return self.cleartext_candidates(bin_index, sensitive_shard)[0]

    def route_candidates(
        self, request: BatchRequest
    ) -> Tuple[Optional[Tuple[int, ...]], Optional[Tuple[int, ...]]]:
        """Ordered candidate members for each half of one request.

        First entries are the healthy-fleet placement (identical to
        :meth:`route`); the rest are the failover order.  A half the request
        does not carry maps to ``None``.  Memoised per (bin pair, carried
        halves) — see the constructor comment.
        """
        memo_key = (
            request.sensitive_bin_index,
            request.non_sensitive_bin_index,
            request.has_sensitive_half,
            request.has_non_sensitive_half,
        )
        cached = self._candidate_memo.get(memo_key)
        if cached is not None:
            return cached
        anchor = 0
        if request.sensitive_bin_index is not None:
            anchor = self.shard_of_sensitive(request.sensitive_bin_index)
        sensitive: Optional[Tuple[int, ...]] = None
        if request.has_sensitive_half:
            sensitive = self._chain_from(anchor)
        non_sensitive: Optional[Tuple[int, ...]] = None
        if request.has_non_sensitive_half:
            non_sensitive = self.cleartext_candidates(
                request.non_sensitive_bin_index, anchor
            )
        self._candidate_memo[memo_key] = (sensitive, non_sensitive)
        return sensitive, non_sensitive

    def route(self, request: BatchRequest) -> Tuple[Optional[int], Optional[int]]:
        """(sensitive member, cleartext member) for one request's halves.

        A half the request does not carry routes to ``None``.  Requests
        without a sensitive bin annotation (un-binned engines) anchor their
        sensitive half on member 0 so routing stays total.
        """
        sensitive, non_sensitive = self.route_candidates(request)
        return (
            sensitive[0] if sensitive is not None else None,
            non_sensitive[0] if non_sensitive is not None else None,
        )

    def rebalanced(
        self,
        num_shards: int,
        replication_factor: Optional[int] = None,
        live_members: Optional[Sequence[int]] = None,
    ) -> "ShardRouter":
        """The router for the same layout on a different fleet size.

        Pure function of (bin counts, policy, count, replication factor,
        membership): rebalancing to ``k`` servers and back reproduces the
        original assignment — replica chains included — exactly.  The
        replication factor is preserved unless explicitly overridden;
        membership defaults to every slot of the new size (pass
        ``live_members`` when growing a fleet that still carries failed or
        departed slots).
        """
        return ShardRouter(
            self.num_sensitive_bins,
            self.num_non_sensitive_bins,
            num_shards,
            policy=self.policy,
            replication_factor=(
                self.replication_factor
                if replication_factor is None
                else replication_factor
            ),
            live_members=live_members,
        )

    def with_membership(self, live_members: Sequence[int]) -> "ShardRouter":
        """The same router restricted to ``live_members``.

        The elastic-fleet transition primitive: primaries stay on their
        static slots, chains and cleartext segments are recomputed over the
        live subset.  Routing through the result is only correct once the
        slices it promises have actually been migrated — use
        :class:`repro.cloud.lifecycle.FleetLifecycleManager`, which pairs
        every membership change with the matching slice migration.
        """
        return ShardRouter(
            self.num_sensitive_bins,
            self.num_non_sensitive_bins,
            self.num_shards,
            policy=self.policy,
            replication_factor=self.replication_factor,
            live_members=live_members,
        )

    def sensitive_assignment(self) -> Dict[int, int]:
        """A copy of the bin → primary member map (introspection / tests)."""
        return dict(self._sensitive_assignment)

    def replica_assignment(self) -> Dict[int, Tuple[int, ...]]:
        """The bin → (primary, replicas...) map (introspection / tests)."""
        return {
            bin_index: self.replicas_of_sensitive(bin_index)
            for bin_index in range(self.num_sensitive_bins)
        }


class MultiCloud:
    """A fixed set of non-colluding cloud servers.

    ``use_indexes`` / ``use_encrypted_indexes`` are forwarded to every member
    so a fleet can be configured exactly like the single reference server it
    is compared against.  ``server_factory`` lets tests substitute member
    implementations (e.g. the fault-injecting server); it receives the same
    keyword arguments :class:`CloudServer` takes.  ``member_retries`` is the
    per-member retry budget :meth:`process_batch` spends on a failing member
    before excluding it and failing its work over to replicas.

    ``member_backend`` selects where member compute runs: ``"thread"``
    keeps every member in-process (the default), ``"process"`` places each
    member's server in its own worker process behind a
    :class:`~repro.cloud.process_member.ProcessMemberProxy` so CPU-bound
    schemes escape the GIL — see the module docstring.  Process fleets own
    worker processes; call :meth:`close` (or use the fleet as a context
    manager) when done.

    ``failed_members`` persists across batches: once a member is excluded it
    receives no further work until the fleet is explicitly repaired
    (:meth:`mark_all_recovered`, e.g. after a re-outsourcing rebin replaces
    the member).
    """

    MEMBER_BACKENDS = ("thread", "process")

    def __init__(
        self,
        count: int = 2,
        network_factory: Optional[Callable[[], NetworkModel]] = None,
        use_indexes: bool = True,
        use_encrypted_indexes: bool = True,
        server_factory: Optional[Callable[..., CloudServer]] = None,
        member_retries: int = 1,
        member_backend: str = "thread",
        rpc_timeout: Optional[float] = None,
        storage_backend: str = "memory",
        storage_dir: Optional[str] = None,
    ):
        if count < 2:
            raise CloudError("a multi-cloud deployment needs at least 2 servers")
        if member_retries < 0:
            raise CloudError(f"member_retries must be >= 0, got {member_retries}")
        if member_backend not in self.MEMBER_BACKENDS:
            raise CloudError(
                f"unknown member_backend {member_backend!r}; choose from "
                f"{list(self.MEMBER_BACKENDS)}"
            )
        # Member-construction config is retained: elastic membership ops
        # (add_member/replace_member) build new members identical to the
        # originals.
        self._network_factory = network_factory or NetworkModel
        self._server_factory = server_factory
        self._use_indexes = use_indexes
        self._use_encrypted_indexes = use_encrypted_indexes
        self._rpc_timeout = rpc_timeout
        #: forwarded to every member (``"memory"`` or ``"sqlite"``); process
        #: members build their backend worker-side, so the database file
        #: lives in the worker process that serves it.
        self._storage_backend = storage_backend
        self._storage_dir = storage_dir
        self.member_backend = member_backend
        self.servers: List[CloudServer] = [
            self._new_member(index) for index in range(count)
        ]
        self.member_retries = member_retries
        self.failed_members: Set[int] = set()
        #: slots whose members left the fleet for good (graceful leave or
        #: loss without replacement).  Slots are stable identities — a
        #: departed slot is never reused except by replace_member — so
        #: reports, error maps, and router live sets stay index-consistent
        #: across membership churn.
        self.departed_members: Set[int] = set()
        self.last_report: Optional[FleetBatchReport] = None
        #: what outsource_sharded last deployed (fresh members need it)
        self.last_deployment: Optional[FleetDeployment] = None
        #: last crash observed per member, kept for diagnosis: a
        #: FleetDegradedError reports *why* the exhausted chain's candidates
        #: died instead of leaving only "all failed".
        self._member_errors: Dict[int, CloudError] = {}
        #: serializes whole batches (and observation resets) through the
        #: fleet: wave planning, per-wave snapshots, failover bookkeeping,
        #: and ``last_report`` all assume one batch in flight at a time.
        #: Re-entrant so fleet-level helpers can nest a batch.
        self._batch_lock = threading.RLock()

    def _new_member(self, index: int) -> CloudServer:
        """Build one member exactly as the constructor would have."""
        if self.member_backend == "process":
            return ProcessMemberProxy(
                name=f"cloud-{index}",
                network_factory=self._network_factory,
                server_factory=self._server_factory,
                rpc_timeout=self._rpc_timeout,
                use_indexes=self._use_indexes,
                use_encrypted_indexes=self._use_encrypted_indexes,
                storage_backend=self._storage_backend,
                storage_dir=self._storage_dir,
            )
        make_server = self._server_factory or CloudServer
        return make_server(
            name=f"cloud-{index}",
            network=self._network_factory(),
            use_indexes=self._use_indexes,
            use_encrypted_indexes=self._use_encrypted_indexes,
            storage_backend=self._storage_backend,
            storage_dir=self._storage_dir,
        )

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> CloudServer:
        return self.servers[index]

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Release member resources (worker processes under ``"process"``).

        Idempotent; a thread-backed fleet has nothing to release.  Proxy
        mirrors (views, statistics, network logs) stay readable after close,
        so analysis code may inspect a closed fleet — it just cannot serve
        further batches.
        """
        for server in self.servers:
            close = getattr(server, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "MultiCloud":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- elastic membership -------------------------------------------------------
    @property
    def live_members(self) -> FrozenSet[int]:
        """Slots currently part of the fleet (departed tombstones excluded).

        Failed-but-present members *are* live: they still hold their slices
        and may recover.  Routing excludes them transiently via
        ``failed_members``; only a departure (or replacement) changes the
        membership a router should be built for.
        """
        return frozenset(
            index
            for index in range(len(self.servers))
            if index not in self.departed_members
        )

    def _validate_slot(self, index: int) -> None:
        if not 0 <= index < len(self.servers):
            raise CloudError(
                f"no member slot {index}; fleet has slots 0..{len(self.servers) - 1}"
            )

    def add_member(self) -> int:
        """Append a fresh, empty member slot and return its index.

        The new member is built exactly like the originals (same backend,
        network model, server factory, RPC timeout) but holds no data and is
        not yet part of any router's membership.  Pair with
        :meth:`FleetLifecycleManager.add_member <repro.cloud.lifecycle.FleetLifecycleManager.add_member>`,
        which initialises the member from :attr:`last_deployment`, migrates
        the bin slices the rebalanced router assigns it, and swaps routers —
        adding a raw slot without migrating is only safe for tests.
        """
        index = len(self.servers)
        self.servers.append(self._new_member(index))
        return index

    def remove_member(self, index: int) -> None:
        """Tombstone slot ``index``: the member leaves the fleet for good.

        The slot is *retained* (never reused, except by
        :meth:`replace_member`) so member indexes stay stable across churn —
        reports, error maps, and router live sets never need remapping.  The
        member's resources are released; its observation mirrors stay
        readable.  This does **not** migrate the member's slices — the
        lifecycle manager migrates first, then calls this.
        """
        self._validate_slot(index)
        if index in self.departed_members:
            raise CloudError(f"member {index} has already departed the fleet")
        self.departed_members.add(index)
        self.failed_members.discard(index)
        self._member_errors.pop(index, None)
        close = getattr(self.servers[index], "close", None)
        if close is not None:
            close()

    def replace_member(self, index: int) -> CloudServer:
        """Swap a fresh, empty member into slot ``index`` and return it.

        The old member (crashed, abandoned, or simply being rotated out) is
        released.  The fresh member starts *excluded* (in
        ``failed_members``): it holds none of the slot's slices yet, so
        routing to it would return wrong results.  Re-admit it with
        :meth:`mark_recovered` once its slices are restored — the lifecycle
        manager's ``replace_member`` does initialise + migrate + re-admit as
        one operation.
        """
        self._validate_slot(index)
        close = getattr(self.servers[index], "close", None)
        if close is not None:
            close()
        fresh = self._new_member(index)
        self.servers[index] = fresh
        self.departed_members.discard(index)
        self.failed_members.add(index)
        self._member_errors.pop(index, None)
        return fresh

    def _excluded(self, member: int) -> bool:
        """Whether routing must skip ``member`` (failed or departed)."""
        return member in self.failed_members or member in self.departed_members

    # -- outsourcing --------------------------------------------------------------
    def broadcast_non_sensitive(self, relation: Relation) -> None:
        """Store the cleartext relation on every server (it is public anyway)."""
        for index, server in enumerate(self.servers):
            if index in self.departed_members:
                continue
            server.store_non_sensitive(relation)

    def distribute_sensitive(
        self,
        per_server_rows: Sequence[Sequence[EncryptedRow]],
        scheme: EncryptedSearchScheme,
    ) -> None:
        """Give each server its own shares/ciphertexts of the sensitive data."""
        if len(per_server_rows) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} row groups, got {len(per_server_rows)}"
            )
        for server, rows in zip(self.servers, per_server_rows):
            server.store_sensitive(rows, scheme)

    def outsource_sharded(
        self,
        attribute: str,
        non_sensitive: Relation,
        encrypted_rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Mapping[int, int],
        router: ShardRouter,
    ) -> None:
        """Shard the encrypted relation across members by sensitive bin.

        Every member receives the public cleartext relation (with a hash
        index over ``attribute``) and exactly the ciphertexts of the bins the
        router assigned to it — as primary or replica: under
        ``router.replication_factor = k`` each bin's whole slice (real and
        fake tuples alike) is stored identically on all ``k`` members of the
        bin's token segment, so any of them can serve a retrieval
        bit-identically.  ``bin_assignment`` maps rid → sensitive bin index
        for every row, fakes included.  Rows the owner did not place (no
        bin) land on member 0's replica chain so no ciphertext is ever
        dropped, mirroring where their requests anchor.
        """
        if router.num_shards != len(self.servers):
            raise CloudError(
                f"router was built for {router.num_shards} shards, fleet has "
                f"{len(self.servers)}"
            )
        per_server_rows, per_server_bins = self._replicated_row_groups(
            encrypted_rows, bin_assignment, router
        )
        for index, (server, rows, bins) in enumerate(
            zip(self.servers, per_server_rows, per_server_bins)
        ):
            if index in self.departed_members:
                continue
            server.store_non_sensitive(non_sensitive)
            server.store_sensitive(rows, scheme, bin_assignment=bins or None)
            server.build_index(attribute)
        # Retained so membership changes can initialise fresh members
        # (cleartext relation + scheme + index attribute) without a full
        # re-outsource; slices themselves migrate via the lifecycle manager.
        self.last_deployment = FleetDeployment(
            attribute=attribute, non_sensitive=non_sensitive, scheme=scheme
        )

    def _replicated_row_groups(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Mapping[int, int],
        router: ShardRouter,
    ) -> Tuple[List[List[EncryptedRow]], List[Dict[int, int]]]:
        """Group rows per member, replicating each bin's slice on its chain."""
        per_server_rows: List[List[EncryptedRow]] = [[] for _ in self.servers]
        per_server_bins: List[Dict[int, int]] = [{} for _ in self.servers]
        chain_by_bin: Dict[Optional[int], Tuple[int, ...]] = {}
        for row in encrypted_rows:
            bin_index = bin_assignment.get(row.rid)
            chain = chain_by_bin.get(bin_index)
            if chain is None:
                chain = router.replicas_of_sensitive(bin_index)
                chain_by_bin[bin_index] = chain
            for shard in chain:
                per_server_rows[shard].append(row)
                if bin_index is not None:
                    per_server_bins[shard][row.rid] = bin_index
        return per_server_rows, per_server_bins

    def append_sensitive_sharded(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Mapping[int, int],
        router: ShardRouter,
    ) -> None:
        """Route freshly inserted ciphertexts to the members holding their bins.

        Replica-consistent: an insert reaches *every* member of its bin's
        replica chain in the same call, so primaries and replicas never
        diverge and a failover performed at any point between inserts
        returns exactly what the primary would have.
        """
        per_server_rows, per_server_bins = self._replicated_row_groups(
            encrypted_rows, bin_assignment, router
        )
        for index, (server, rows, bins) in enumerate(
            zip(self.servers, per_server_rows, per_server_bins)
        ):
            if rows and index not in self.departed_members:
                server.append_sensitive(rows, bin_assignment=bins)

    def register_non_sensitive_row(self, row: Row) -> None:
        """Account for a cleartext row inserted into the shared relation."""
        for index, server in enumerate(self.servers):
            if index in self.departed_members:
                continue
            server.register_non_sensitive_row(row)

    # -- querying --------------------------------------------------------------------
    def fan_out(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        per_server_tokens: Sequence[Sequence[SearchToken]],
        sensitive_bin_index: Optional[int] = None,
        non_sensitive_bin_index: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Send (possibly different) token sets to each server.

        The cleartext half of the request is only sent to the first server to
        avoid double-charging communication for public data.  Each server's
        slice is served through :meth:`CloudServer.process_batch` — the same
        code path as batched and sharded execution — so network and
        statistics charging can never diverge between the fan-out and batch
        APIs.
        """
        if len(per_server_tokens) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} token groups, got {len(per_server_tokens)}"
            )
        responses = []
        for position, (server, tokens) in enumerate(zip(self.servers, per_server_tokens)):
            request = BatchRequest(
                attribute=attribute,
                cleartext_values=tuple(cleartext_values) if position == 0 else (),
                tokens=tuple(tokens),
                sensitive_bin_index=sensitive_bin_index,
                non_sensitive_bin_index=(
                    non_sensitive_bin_index if position == 0 else None
                ),
            )
            responses.append(server.process_batch([request])[0])
        return responses

    def split_requests(
        self, requests: Sequence[BatchRequest], router: ShardRouter
    ) -> Tuple[List[List[BatchRequest]], List[Tuple[HalfPlacement, HalfPlacement]]]:
        """Split a batch into per-member batches of request halves.

        Returns the per-member request lists plus, per input request, the
        placement of its two halves: ``((server, position), (server,
        position))`` with ``None`` for a half the request does not carry.
        Placements are what lets the merge step — and the parity tests — map
        per-member responses and views back onto the original request order.
        """
        if router.num_shards != len(self.servers):
            raise CloudError(
                f"router was built for {router.num_shards} shards, fleet has "
                f"{len(self.servers)}; resize with router.rebalanced() and "
                "re-outsource (bin slices do not migrate on their own)"
            )
        per_server: List[List[BatchRequest]] = [[] for _ in self.servers]
        placements: List[Tuple[HalfPlacement, HalfPlacement]] = []
        for request in requests:
            sensitive_shard, non_sensitive_shard = router.route(request)
            sensitive_placement: HalfPlacement = None
            if sensitive_shard is not None:
                batch = per_server[sensitive_shard]
                sensitive_placement = (sensitive_shard, len(batch))
                batch.append(request.sensitive_half())
            non_sensitive_placement: HalfPlacement = None
            if non_sensitive_shard is not None:
                batch = per_server[non_sensitive_shard]
                non_sensitive_placement = (non_sensitive_shard, len(batch))
                batch.append(request.non_sensitive_half())
            placements.append((sensitive_placement, non_sensitive_placement))
        return per_server, placements

    def _plan(
        self, requests: Sequence[BatchRequest], router: ShardRouter
    ) -> Tuple[List[_HalfUnit], List[Tuple[Optional[int], Optional[int]]]]:
        """Split a batch into half units carrying their failover candidates.

        Returns the units (in request order, sensitive half before cleartext
        half — the same per-member order :meth:`split_requests` produces) and,
        per input request, the unit slots of its two halves.
        """
        if router.num_shards != len(self.servers):
            raise CloudError(
                f"router was built for {router.num_shards} shards, fleet has "
                f"{len(self.servers)}; resize with router.rebalanced() and "
                "re-outsource (bin slices do not migrate on their own)"
            )
        units: List[_HalfUnit] = []
        slot_pairs: List[Tuple[Optional[int], Optional[int]]] = []
        for request in requests:
            sensitive_candidates, cleartext_candidates = router.route_candidates(
                request
            )
            sensitive_slot: Optional[int] = None
            if sensitive_candidates is not None:
                sensitive_slot = len(units)
                units.append(
                    _HalfUnit(
                        slot=sensitive_slot,
                        kind="sensitive",
                        request=request.sensitive_half(),
                        candidates=sensitive_candidates,
                    )
                )
            cleartext_slot: Optional[int] = None
            if cleartext_candidates is not None:
                cleartext_slot = len(units)
                units.append(
                    _HalfUnit(
                        slot=cleartext_slot,
                        kind="cleartext",
                        request=request.non_sensitive_half(),
                        candidates=cleartext_candidates,
                    )
                )
            slot_pairs.append((sensitive_slot, cleartext_slot))
        return units, slot_pairs

    def _assign_live_member(self, unit: _HalfUnit) -> None:
        """Point ``unit`` at its first candidate not failed or departed."""
        while unit.attempt < len(unit.candidates):
            member = unit.candidates[unit.attempt]
            if not self._excluded(member):
                unit.member = member
                return
            unit.attempt += 1
        bin_index = (
            unit.request.sensitive_bin_index
            if unit.kind == "sensitive"
            else unit.request.non_sensitive_bin_index
        )
        # chain the most recent crash from the exhausted chain itself, not
        # whichever member happened to fail last fleet-wide
        cause: Optional[CloudError] = None
        for member in unit.candidates:
            if member in self._member_errors:
                cause = self._member_errors[member]
        causes = "; ".join(
            f"cloud-{member}: {str(self._member_errors[member])!r}"
            for member in unit.candidates
            if member in self._member_errors
        )
        raise FleetDegradedError(
            f"no live member can serve the {unit.kind} half for bin "
            f"{bin_index!r}: every candidate {list(unit.candidates)} has "
            f"failed (failed members: {sorted(self.failed_members)}"
            + (f"; member errors: {causes}" if causes else "")
            + "); raise replication_factor or replace the failed members and "
            "re-outsource"
        ) from cause

    def process_batch(
        self,
        requests: Sequence[BatchRequest],
        router: ShardRouter,
        max_workers: Optional[int] = None,
        response_consumer: Optional[
            Callable[[BatchRequest, QueryResponse], None]
        ] = None,
    ) -> List[QueryResponse]:
        """Serve a batch across the fleet concurrently; responses in input order.

        Each request is split into its sensitive and cleartext halves, the
        halves are routed by ``router``, and every member serves its slice
        through its own :meth:`CloudServer.process_batch` (keeping the
        per-member dedup, view, and accounting semantics) on a worker thread.
        ``response_consumer`` — when given — is invoked in the calling thread
        with each (half request, response) pair as soon as its member
        finishes, so the owner can decrypt one member's results while the
        others are still searching.

        Execution is wave-based so member failures never fail the batch: a
        member whose batch raises :class:`~repro.exceptions.MemberFailure`
        is retried up to the fleet's ``member_retries`` budget, then added
        to ``failed_members``;
        its halves advance along their candidate chains (replicas for token
        halves, the cleartext segment for cleartext halves) and are served in
        the next wave.  Only a half whose candidates are *all* failed raises
        :class:`~repro.exceptions.FleetDegradedError`.  A healthy fleet runs
        exactly one wave, identical to the pre-failover semantics.  The final
        placement of every half is recorded in :attr:`last_report`.

        The merged response for a request stitches its halves back together;
        the encrypted row list of the sensitive half is passed through *by
        identity*, so deduplicated retrievals stay shared and the owner can
        key decryption caches on it exactly as in the single-server batch
        path.

        One batch flows through the fleet at a time: the batch lock guards
        wave planning, per-wave snapshots, and ``last_report``, so concurrent
        sessions (service tenants sharing one fleet) queue here rather than
        corrupt each other's failover bookkeeping.
        """
        with self._batch_lock:
            return self._process_batch_locked(
                requests, router, max_workers, response_consumer
            )

    def _process_batch_locked(
        self,
        requests: Sequence[BatchRequest],
        router: ShardRouter,
        max_workers: Optional[int] = None,
        response_consumer: Optional[
            Callable[[BatchRequest, QueryResponse], None]
        ] = None,
    ) -> List[QueryResponse]:
        # Invalidate up front: if this batch aborts (FleetDegradedError, a
        # mismatched router), a caller must not mistake the previous batch's
        # report for this one's.
        self.last_report = None
        units, slot_pairs = self._plan(requests, router)
        for unit in units:
            self._assign_live_member(unit)
        responses: List[Optional[QueryResponse]] = [None] * len(units)
        positions: List[HalfPlacement] = [None] * len(units)
        retries_left = {index: self.member_retries for index in range(len(self.servers))}
        failed_this_batch: Set[int] = set()
        rerouted = 0
        workers = max_workers or len(self.servers)
        # Thread-backed members share one scheme object; schemes whose
        # search() mutates internal work counters declare themselves
        # concurrency-unsafe and get served one member at a time (correct
        # counters over overlap).  Process-backed members each hold their
        # own scheme copy, so no serialisation is needed there.
        if self.member_backend == "thread" and any(
            server.scheme is not None and not server.scheme.concurrent_search_safe
            for server in self.servers
        ):
            workers = 1
        pending = list(units)
        while pending:
            # Re-validate assignments at every wave boundary: a half
            # re-queued while its member still looked live may have lost
            # that member to an exclusion handled *later in the same wave*
            # (two members failing together); an excluded member must never
            # be handed further work.
            for unit in pending:
                if self._excluded(unit.candidates[unit.attempt]):
                    self._assign_live_member(unit)
                    rerouted += 1
            groups: Dict[int, List[_HalfUnit]] = {}
            for unit in pending:  # pending is kept in slot order
                groups.setdefault(unit.member, []).append(unit)
            # Absolute view-log base per member, read before any worker runs:
            # a member's log grows only under its own (single) worker.
            log_bases = {
                member: len(self.servers[member].view_log) for member in groups
            }
            # Pre-wave observation snapshots back the crash semantics for
            # *any* member implementation: whatever a member recorded before
            # raising is rolled back below, so a retried or re-routed half
            # can never be double-counted in views, statistics, or transfer
            # logs.  (The fault-injecting test server restores itself too —
            # the restore is idempotent against the same snapshot.)
            snapshots = {
                member: self.servers[member].observation_snapshot()
                for member in groups
            }
            next_pending: List[_HalfUnit] = []
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        self.servers[member].process_batch,
                        [unit.request for unit in group],
                    ): member
                    for member, group in groups.items()
                }
                for future in as_completed(futures):
                    member = futures[future]
                    group = groups[member]
                    try:
                        member_responses = future.result()
                    except MemberFailure as error:
                        # Only crash signals trigger failover; a deterministic
                        # CloudError (malformed request, misconfiguration)
                        # propagates instead of poisoning healthy members'
                        # standing in failed_members.  The member's worker is
                        # done (the future resolved), so restoring its
                        # snapshot races with nothing.
                        self.servers[member].restore_observations(
                            snapshots[member]
                        )
                        self._member_errors[member] = error
                        if retries_left[member] > 0:
                            retries_left[member] -= 1
                        else:
                            self.failed_members.add(member)
                            failed_this_batch.add(member)
                        # re-routing (and its accounting) happens at the next
                        # wave boundary, where exclusions from the whole wave
                        # are known
                        next_pending.extend(group)
                        continue
                    for offset, (unit, response) in enumerate(
                        zip(group, member_responses)
                    ):
                        responses[unit.slot] = response
                        positions[unit.slot] = (member, log_bases[member] + offset)
                        if response_consumer is not None:
                            response_consumer(unit.request, response)
            next_pending.sort(key=lambda unit: unit.slot)
            pending = next_pending

        self.last_report = FleetBatchReport(
            placements=tuple(
                (
                    positions[sensitive_slot] if sensitive_slot is not None else None,
                    positions[cleartext_slot] if cleartext_slot is not None else None,
                )
                for sensitive_slot, cleartext_slot in slot_pairs
            ),
            failed_members=frozenset(failed_this_batch),
            rerouted_halves=rerouted,
        )

        # Member responses are interned per distinct request (repeated bin
        # pairs return the *same* response object), so the stitched whole
        # responses are memoised by half identity: steady-state repeats of a
        # bin pair share one merged response instead of re-allocating it per
        # query.  Consumers treat responses as read-only, exactly as they do
        # the member responses themselves.
        merged: List[QueryResponse] = []
        merged_memo: Dict[Tuple[int, int], QueryResponse] = {}
        for sensitive_slot, cleartext_slot in slot_pairs:
            sensitive_response: Optional[QueryResponse] = None
            if sensitive_slot is not None:
                sensitive_response = responses[sensitive_slot]
            non_sensitive_response: Optional[QueryResponse] = None
            if cleartext_slot is not None:
                non_sensitive_response = responses[cleartext_slot]
            memo_key = (id(sensitive_response), id(non_sensitive_response))
            whole = merged_memo.get(memo_key)
            if whole is None:
                whole = QueryResponse(
                    non_sensitive_rows=(
                        non_sensitive_response.non_sensitive_rows
                        if non_sensitive_response is not None
                        else []
                    ),
                    encrypted_rows=(
                        sensitive_response.encrypted_rows
                        if sensitive_response is not None
                        else []
                    ),
                    non_sensitive_scanned=(
                        non_sensitive_response.non_sensitive_scanned
                        if non_sensitive_response is not None
                        else 0
                    ),
                    sensitive_scanned=(
                        sensitive_response.sensitive_scanned
                        if sensitive_response is not None
                        else 0
                    ),
                    transfer_seconds=(
                        (sensitive_response.transfer_seconds if sensitive_response else 0.0)
                        + (
                            non_sensitive_response.transfer_seconds
                            if non_sensitive_response
                            else 0.0
                        )
                    ),
                )
                merged_memo[memo_key] = whole
            merged.append(whole)
        return merged

    # -- adversarial analysis -----------------------------------------------------------
    def single_server_view_sizes(self) -> Dict[str, int]:
        """Number of views each individual server has accumulated."""
        return {server.name: len(server.view_log) for server in self.servers}

    def total_transfer_seconds(self) -> float:
        return sum(server.network.total_seconds() for server in self.servers)

    def total_transfer_tuples(self, direction: Optional[str] = None) -> int:
        """Tuples moved fleet-wide (parity comparisons vs. a single server)."""
        return sum(
            server.network.total_tuples(direction) for server in self.servers
        )

    def aggregate_stat(self, field_name: str) -> int:
        """Sum one :class:`CloudStatistics` counter across the fleet."""
        return sum(getattr(server.stats, field_name) for server in self.servers)

    def total_wire_bytes(self) -> int:
        """Real transport bytes moved over process-member pipes, fleet-wide.

        Zero for thread-backed fleets (no serialisation happens); for the
        process backend this is the serialisation cost of the whole workload
        since the last ``reset_observations`` — frame headers, pickled
        requests/replies, and out-of-band buffers in both directions.
        """
        return sum(
            getattr(server.network, "wire_bytes", 0) for server in self.servers
        )

    def reset_observations(self) -> None:
        """Clear every member's views and counters (between experiments).

        Total over a churning fleet: a member discovered unreachable during
        the reset is excluded exactly like a mid-batch failure (and its
        local mirrors still cleared) instead of failing the fleet-wide
        reset — resets between workloads must not depend on every member
        being alive.
        """
        with self._batch_lock:
            self._reset_observations_locked()

    def _reset_observations_locked(self) -> None:
        for index, server in enumerate(self.servers):
            try:
                server.reset_observations()
            except CloudError as error:
                if index not in self.departed_members:
                    self.failed_members.add(index)
                    self._member_errors.setdefault(index, error)
                if getattr(server, "closed", False):
                    # the failed RPC marked the proxy closed; this pass is
                    # mirror-only and cannot raise again
                    server.reset_observations()

    def mark_recovered(self, index: int) -> None:
        """Forget one member's failed-member exclusion.

        Refuses members that *cannot* serve again no matter what the caller
        believes: departed slots (their data is gone with them) and
        process-backed members whose worker was abandoned — re-admitting
        either would hand queries to a member that answers wrongly or not at
        all.  Those slots are repaired with :meth:`replace_member` (which
        installs a fresh, markable member) instead.  A member that is merely
        *suspected* down is fine to re-admit: the next batch's
        retry/failover machinery re-detects (and re-excludes) it if the
        suspicion was right.
        """
        self._validate_slot(index)
        if index in self.departed_members:
            raise CloudError(
                f"member {index} has departed the fleet; departed slots are "
                "never re-admitted — join a fresh member with add_member or "
                "re-populate the slot with replace_member"
            )
        if getattr(self.servers[index], "closed", False):
            raise CloudError(
                f"member {index} was abandoned (its worker process is gone) "
                "and cannot serve again; swap in a fresh member with "
                "replace_member and restore its slices before re-admitting"
            )
        self.failed_members.discard(index)
        self._member_errors.pop(index, None)

    def mark_all_recovered(self) -> None:
        """Forget the exclusions of every *re-admittable* failed member.

        Call after the fleet has been repaired *and* re-outsourced — e.g. a
        re-binning rebuilds every member's slices from scratch, which is
        exactly a fleet redeployment.  Unlike the per-member
        :meth:`mark_recovered` this skips (rather than refuses) slots that
        can never serve again — departed members and abandoned workers —
        so a redeployment over a partially-elastic fleet still clears what
        it can; repair the skipped slots with :meth:`replace_member`.
        """
        for index in sorted(self.failed_members):
            if index in self.departed_members:
                continue
            if getattr(self.servers[index], "closed", False):
                continue
            self.mark_recovered(index)
