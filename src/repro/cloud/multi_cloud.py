"""Multiple non-colluding clouds.

Secret-sharing and DPF techniques assume ``k`` servers that do not collude.
:class:`MultiCloud` is a thin container of :class:`CloudServer` instances with
helpers to broadcast outsourcing and to fan a request out to every server;
each member server still records its own adversarial view, which lets tests
confirm that no *single* server learns the query value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.cloud.network import NetworkModel
from repro.cloud.server import CloudServer, QueryResponse
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.relation import Relation
from repro.exceptions import CloudError


class MultiCloud:
    """A fixed set of non-colluding cloud servers."""

    def __init__(self, count: int = 2, network_factory: Optional[Callable[[], NetworkModel]] = None):
        if count < 2:
            raise CloudError("a multi-cloud deployment needs at least 2 servers")
        factory = network_factory or NetworkModel
        self.servers: List[CloudServer] = [
            CloudServer(name=f"cloud-{index}", network=factory())
            for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> CloudServer:
        return self.servers[index]

    # -- outsourcing --------------------------------------------------------------
    def broadcast_non_sensitive(self, relation: Relation) -> None:
        """Store the cleartext relation on every server (it is public anyway)."""
        for server in self.servers:
            server.store_non_sensitive(relation)

    def distribute_sensitive(
        self,
        per_server_rows: Sequence[Sequence[EncryptedRow]],
        scheme: EncryptedSearchScheme,
    ) -> None:
        """Give each server its own shares/ciphertexts of the sensitive data."""
        if len(per_server_rows) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} row groups, got {len(per_server_rows)}"
            )
        for server, rows in zip(self.servers, per_server_rows):
            server.store_sensitive(rows, scheme)

    # -- querying --------------------------------------------------------------------
    def fan_out(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        per_server_tokens: Sequence[Sequence[SearchToken]],
    ) -> List[QueryResponse]:
        """Send (possibly different) token sets to each server.

        The cleartext half of the request is only sent to the first server to
        avoid double-charging communication for public data.
        """
        if len(per_server_tokens) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} token groups, got {len(per_server_tokens)}"
            )
        responses = []
        for position, (server, tokens) in enumerate(zip(self.servers, per_server_tokens)):
            values = cleartext_values if position == 0 else ()
            responses.append(server.process_request(attribute, values, tokens))
        return responses

    # -- adversarial analysis -----------------------------------------------------------
    def single_server_view_sizes(self) -> Dict[str, int]:
        """Number of views each individual server has accumulated."""
        return {server.name: len(server.view_log) for server in self.servers}

    def total_transfer_seconds(self) -> float:
        return sum(server.network.total_seconds() for server in self.servers)
