"""Sharded execution across multiple non-colluding clouds.

The paper's query-binning architecture assumes sensitive data can be spread
across clouds that do not collude.  This module provides the fleet-side half
of that architecture:

* :class:`MultiCloud` — a fixed set of :class:`CloudServer` members, each
  recording its *own* adversarial view, statistics, and network charges;
* :class:`ShardRouter` — the partition-aware placement function that assigns
  QB bins to members and routes request halves to them.

Placement policies
------------------
Sensitive bins are assigned to members by one of two deterministic policies
(see :data:`repro.data.partition.SHARD_POLICIES`):

``hash``
    ``crc32(bin) % count`` — placement of a bin is independent of every
    other bin, so layouts that grow (incremental re-binning) never move
    existing bins.
``range``
    contiguous near-even ranges of bin indexes — the classic choice when
    consecutive bins should stay co-resident (e.g. to serve range extensions
    from one member).

At outsourcing time every member receives the cleartext non-sensitive
relation (it is public) but only the encrypted rows of the sensitive bins the
router assigned to it, so a bin's whole slice — real and fake tuples alike —
lives on exactly one member and a bin retrieval never crosses servers.

The non-collusion model
-----------------------
A binned request has two halves: the opaque tokens for a sensitive bin and
the cleartext values of a non-sensitive bin.  Observing *both* halves of one
query is exactly what lets an adversary associate the two bins (the paper's
Table V leakage), so the router never co-locates them:

* the sensitive half goes to the member owning the sensitive bin;
* the cleartext half goes to a member guaranteed to be *different* — it is
  offset from the sensitive member by ``1 + policy(ns_bin) % (count - 1)``.

Each member therefore records views containing either tokens or cleartext
values, never both, and no single server can reconstruct a (sensitive bin,
non-sensitive bin) association.  The fleet as a whole observes exactly the
information a single server would have observed — the parity tests in
``tests/test_multicloud_parity.py`` pin this down field by field.

Concurrency
-----------
:meth:`MultiCloud.process_batch` splits a batch per member and serves the
per-member batches on a thread pool.  Each member's state is touched by only
one worker, and each member processes its requests in arrival order, so
per-server view logs, statistics, and network charges are deterministic
regardless of thread scheduling.  Members do share one
:class:`EncryptedSearchScheme` object (the keys are the owner's); schemes
whose cloud-side matching mutates internal counters declare
``concurrent_search_safe = False`` and are served one member at a time
rather than racing on ``+=``.  The optional ``response_consumer`` runs in
the *calling* thread as members complete, which is what lets the query engine
overlap owner-side decryption with the remaining members' searches.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.network import NetworkModel
from repro.cloud.server import BatchRequest, CloudServer, QueryResponse
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.partition import SHARD_POLICIES, stable_item_hash
from repro.data.relation import Relation, Row
from repro.exceptions import CloudError

#: (server index, position inside that server's batch) of one request half.
HalfPlacement = Optional[Tuple[int, int]]


class ShardRouter:
    """Deterministic assignment of QB bins — and request halves — to members.

    Parameters
    ----------
    num_sensitive_bins / num_non_sensitive_bins:
        The bin counts of the layout being sharded.
    num_shards:
        Fleet size; at least 2, because the non-collusion guarantee needs a
        second member to take the cleartext half.
    policy:
        ``"hash"`` or ``"range"`` — see the module docstring.

    Bins outside the counts the router was built for (layouts can grow
    through incremental re-binning) fall back to hash placement, so routing
    stays total without rebuilding.
    """

    def __init__(
        self,
        num_sensitive_bins: int,
        num_non_sensitive_bins: int,
        num_shards: int,
        policy: str = "hash",
    ):
        if num_shards < 2:
            raise CloudError(
                "shard routing needs at least 2 servers so the cleartext half "
                f"never lands on the sensitive half's server (got {num_shards})"
            )
        try:
            assign = SHARD_POLICIES[policy]
        except KeyError:
            raise CloudError(
                f"unknown shard policy {policy!r}; choose from "
                f"{sorted(SHARD_POLICIES)}"
            ) from None
        self.num_sensitive_bins = num_sensitive_bins
        self.num_non_sensitive_bins = num_non_sensitive_bins
        self.num_shards = num_shards
        self.policy = policy
        self._sensitive_assignment: Dict[object, int] = assign(
            range(num_sensitive_bins), num_shards
        )
        # The cleartext half is placed by a non-zero *offset* from the
        # sensitive member, never by an absolute shard, so it cannot collide
        # with the sensitive half no matter which member owns the bin.
        self._non_sensitive_offset: Dict[object, int] = {
            bin_index: 1 + shard % (num_shards - 1)
            for bin_index, shard in assign(
                range(num_non_sensitive_bins), num_shards
            ).items()
        }

    # -- bin-level placement -------------------------------------------------
    def shard_of_sensitive(self, bin_index: int) -> int:
        """The member storing (and serving) sensitive bin ``bin_index``."""
        shard = self._sensitive_assignment.get(bin_index)
        if shard is None:  # bin created after the router was built
            shard = stable_item_hash(bin_index) % self.num_shards
        return shard

    def shard_of_non_sensitive(self, bin_index: Optional[int], sensitive_shard: int) -> int:
        """The member serving a cleartext half, guaranteed ≠ ``sensitive_shard``."""
        if bin_index is None:
            offset = 1
        else:
            offset = self._non_sensitive_offset.get(bin_index)
            if offset is None:
                offset = 1 + stable_item_hash(bin_index) % (self.num_shards - 1)
        return (sensitive_shard + offset) % self.num_shards

    def route(self, request: BatchRequest) -> Tuple[Optional[int], Optional[int]]:
        """(sensitive member, cleartext member) for one request's halves.

        A half the request does not carry routes to ``None``.  Requests
        without a sensitive bin annotation (un-binned engines) anchor their
        sensitive half on member 0 so routing stays total.
        """
        sensitive_shard: Optional[int] = None
        anchor = 0
        if request.sensitive_bin_index is not None:
            anchor = self.shard_of_sensitive(request.sensitive_bin_index)
        if request.has_sensitive_half:
            sensitive_shard = anchor
        non_sensitive_shard: Optional[int] = None
        if request.has_non_sensitive_half:
            non_sensitive_shard = self.shard_of_non_sensitive(
                request.non_sensitive_bin_index, anchor
            )
        return sensitive_shard, non_sensitive_shard

    def rebalanced(self, num_shards: int) -> "ShardRouter":
        """The router for the same layout on a different fleet size.

        Pure function of (bin counts, policy, count): rebalancing to ``k``
        servers and back reproduces the original assignment exactly.
        """
        return ShardRouter(
            self.num_sensitive_bins,
            self.num_non_sensitive_bins,
            num_shards,
            policy=self.policy,
        )

    def sensitive_assignment(self) -> Dict[int, int]:
        """A copy of the bin → member map (introspection / tests)."""
        return dict(self._sensitive_assignment)


class MultiCloud:
    """A fixed set of non-colluding cloud servers.

    ``use_indexes`` / ``use_encrypted_indexes`` are forwarded to every member
    so a fleet can be configured exactly like the single reference server it
    is compared against.
    """

    def __init__(
        self,
        count: int = 2,
        network_factory: Optional[Callable[[], NetworkModel]] = None,
        use_indexes: bool = True,
        use_encrypted_indexes: bool = True,
    ):
        if count < 2:
            raise CloudError("a multi-cloud deployment needs at least 2 servers")
        factory = network_factory or NetworkModel
        self.servers: List[CloudServer] = [
            CloudServer(
                name=f"cloud-{index}",
                network=factory(),
                use_indexes=use_indexes,
                use_encrypted_indexes=use_encrypted_indexes,
            )
            for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> CloudServer:
        return self.servers[index]

    # -- outsourcing --------------------------------------------------------------
    def broadcast_non_sensitive(self, relation: Relation) -> None:
        """Store the cleartext relation on every server (it is public anyway)."""
        for server in self.servers:
            server.store_non_sensitive(relation)

    def distribute_sensitive(
        self,
        per_server_rows: Sequence[Sequence[EncryptedRow]],
        scheme: EncryptedSearchScheme,
    ) -> None:
        """Give each server its own shares/ciphertexts of the sensitive data."""
        if len(per_server_rows) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} row groups, got {len(per_server_rows)}"
            )
        for server, rows in zip(self.servers, per_server_rows):
            server.store_sensitive(rows, scheme)

    def outsource_sharded(
        self,
        attribute: str,
        non_sensitive: Relation,
        encrypted_rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Mapping[int, int],
        router: ShardRouter,
    ) -> None:
        """Shard the encrypted relation across members by sensitive bin.

        Every member receives the public cleartext relation (with a hash
        index over ``attribute``) and exactly the ciphertexts of the bins the
        router assigned to it; ``bin_assignment`` maps rid → sensitive bin
        index for every row, fakes included.  Rows the owner did not place
        (no bin) land on member 0 so no ciphertext is ever dropped.
        """
        if router.num_shards != len(self.servers):
            raise CloudError(
                f"router was built for {router.num_shards} shards, fleet has "
                f"{len(self.servers)}"
            )
        per_server_rows: List[List[EncryptedRow]] = [[] for _ in self.servers]
        per_server_bins: List[Dict[int, int]] = [{} for _ in self.servers]
        for row in encrypted_rows:
            bin_index = bin_assignment.get(row.rid)
            if bin_index is None:
                per_server_rows[0].append(row)
                continue
            shard = router.shard_of_sensitive(bin_index)
            per_server_rows[shard].append(row)
            per_server_bins[shard][row.rid] = bin_index
        for server, rows, bins in zip(self.servers, per_server_rows, per_server_bins):
            server.store_non_sensitive(non_sensitive)
            server.store_sensitive(rows, scheme, bin_assignment=bins or None)
            server.build_index(attribute)

    def append_sensitive_sharded(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Mapping[int, int],
        router: ShardRouter,
    ) -> None:
        """Route freshly inserted ciphertexts to the members owning their bins."""
        per_server_rows: List[List[EncryptedRow]] = [[] for _ in self.servers]
        per_server_bins: List[Dict[int, int]] = [{} for _ in self.servers]
        for row in encrypted_rows:
            bin_index = bin_assignment.get(row.rid)
            shard = 0 if bin_index is None else router.shard_of_sensitive(bin_index)
            per_server_rows[shard].append(row)
            if bin_index is not None:
                per_server_bins[shard][row.rid] = bin_index
        for server, rows, bins in zip(self.servers, per_server_rows, per_server_bins):
            if rows:
                server.append_sensitive(rows, bin_assignment=bins)

    def register_non_sensitive_row(self, row: Row) -> None:
        """Account for a cleartext row inserted into the shared relation."""
        for server in self.servers:
            server.register_non_sensitive_row(row)

    # -- querying --------------------------------------------------------------------
    def fan_out(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        per_server_tokens: Sequence[Sequence[SearchToken]],
        sensitive_bin_index: Optional[int] = None,
        non_sensitive_bin_index: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Send (possibly different) token sets to each server.

        The cleartext half of the request is only sent to the first server to
        avoid double-charging communication for public data.  Each server's
        slice is served through :meth:`CloudServer.process_batch` — the same
        code path as batched and sharded execution — so network and
        statistics charging can never diverge between the fan-out and batch
        APIs.
        """
        if len(per_server_tokens) != len(self.servers):
            raise CloudError(
                f"expected {len(self.servers)} token groups, got {len(per_server_tokens)}"
            )
        responses = []
        for position, (server, tokens) in enumerate(zip(self.servers, per_server_tokens)):
            request = BatchRequest(
                attribute=attribute,
                cleartext_values=tuple(cleartext_values) if position == 0 else (),
                tokens=tuple(tokens),
                sensitive_bin_index=sensitive_bin_index,
                non_sensitive_bin_index=(
                    non_sensitive_bin_index if position == 0 else None
                ),
            )
            responses.append(server.process_batch([request])[0])
        return responses

    def split_requests(
        self, requests: Sequence[BatchRequest], router: ShardRouter
    ) -> Tuple[List[List[BatchRequest]], List[Tuple[HalfPlacement, HalfPlacement]]]:
        """Split a batch into per-member batches of request halves.

        Returns the per-member request lists plus, per input request, the
        placement of its two halves: ``((server, position), (server,
        position))`` with ``None`` for a half the request does not carry.
        Placements are what lets the merge step — and the parity tests — map
        per-member responses and views back onto the original request order.
        """
        if router.num_shards != len(self.servers):
            raise CloudError(
                f"router was built for {router.num_shards} shards, fleet has "
                f"{len(self.servers)}; resize with router.rebalanced() and "
                "re-outsource (bin slices do not migrate on their own)"
            )
        per_server: List[List[BatchRequest]] = [[] for _ in self.servers]
        placements: List[Tuple[HalfPlacement, HalfPlacement]] = []
        for request in requests:
            sensitive_shard, non_sensitive_shard = router.route(request)
            sensitive_placement: HalfPlacement = None
            if sensitive_shard is not None:
                batch = per_server[sensitive_shard]
                sensitive_placement = (sensitive_shard, len(batch))
                batch.append(request.sensitive_half())
            non_sensitive_placement: HalfPlacement = None
            if non_sensitive_shard is not None:
                batch = per_server[non_sensitive_shard]
                non_sensitive_placement = (non_sensitive_shard, len(batch))
                batch.append(request.non_sensitive_half())
            placements.append((sensitive_placement, non_sensitive_placement))
        return per_server, placements

    def process_batch(
        self,
        requests: Sequence[BatchRequest],
        router: ShardRouter,
        max_workers: Optional[int] = None,
        response_consumer: Optional[
            Callable[[BatchRequest, QueryResponse], None]
        ] = None,
    ) -> List[QueryResponse]:
        """Serve a batch across the fleet concurrently; responses in input order.

        Each request is split into its sensitive and cleartext halves, the
        halves are routed by ``router``, and every member serves its slice
        through its own :meth:`CloudServer.process_batch` (keeping the
        per-member dedup, view, and accounting semantics) on a worker thread.
        ``response_consumer`` — when given — is invoked in the calling thread
        with each (half request, response) pair as soon as its member
        finishes, so the owner can decrypt one member's results while the
        others are still searching.

        The merged response for a request stitches its halves back together;
        the encrypted row list of the sensitive half is passed through *by
        identity*, so deduplicated retrievals stay shared and the owner can
        key decryption caches on it exactly as in the single-server batch
        path.
        """
        per_server, placements = self.split_requests(requests, router)
        per_server_responses: List[List[QueryResponse]] = [[] for _ in self.servers]
        workers = max_workers or len(self.servers)
        # Members share one scheme object; schemes whose search() mutates
        # internal work counters declare themselves concurrency-unsafe and
        # get served one member at a time (correct counters over overlap).
        if any(
            server.scheme is not None and not server.scheme.concurrent_search_safe
            for server in self.servers
        ):
            workers = 1
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(self.servers[index].process_batch, batch): index
                for index, batch in enumerate(per_server)
                if batch
            }
            for future in as_completed(futures):
                index = futures[future]
                responses = future.result()
                per_server_responses[index] = responses
                if response_consumer is not None:
                    for request, response in zip(per_server[index], responses):
                        response_consumer(request, response)

        merged: List[QueryResponse] = []
        for sensitive_placement, non_sensitive_placement in placements:
            sensitive_response: Optional[QueryResponse] = None
            if sensitive_placement is not None:
                server_index, position = sensitive_placement
                sensitive_response = per_server_responses[server_index][position]
            non_sensitive_response: Optional[QueryResponse] = None
            if non_sensitive_placement is not None:
                server_index, position = non_sensitive_placement
                non_sensitive_response = per_server_responses[server_index][position]
            merged.append(
                QueryResponse(
                    non_sensitive_rows=(
                        non_sensitive_response.non_sensitive_rows
                        if non_sensitive_response is not None
                        else []
                    ),
                    encrypted_rows=(
                        sensitive_response.encrypted_rows
                        if sensitive_response is not None
                        else []
                    ),
                    non_sensitive_scanned=(
                        non_sensitive_response.non_sensitive_scanned
                        if non_sensitive_response is not None
                        else 0
                    ),
                    sensitive_scanned=(
                        sensitive_response.sensitive_scanned
                        if sensitive_response is not None
                        else 0
                    ),
                    transfer_seconds=(
                        (sensitive_response.transfer_seconds if sensitive_response else 0.0)
                        + (
                            non_sensitive_response.transfer_seconds
                            if non_sensitive_response
                            else 0.0
                        )
                    ),
                )
            )
        return merged

    # -- adversarial analysis -----------------------------------------------------------
    def single_server_view_sizes(self) -> Dict[str, int]:
        """Number of views each individual server has accumulated."""
        return {server.name: len(server.view_log) for server in self.servers}

    def total_transfer_seconds(self) -> float:
        return sum(server.network.total_seconds() for server in self.servers)

    def total_transfer_tuples(self, direction: Optional[str] = None) -> int:
        """Tuples moved fleet-wide (parity comparisons vs. a single server)."""
        return sum(
            server.network.total_tuples(direction) for server in self.servers
        )

    def aggregate_stat(self, field_name: str) -> int:
        """Sum one :class:`CloudStatistics` counter across the fleet."""
        return sum(getattr(server.stats, field_name) for server in self.servers)

    def reset_observations(self) -> None:
        """Clear every member's views and counters (between experiments)."""
        for server in self.servers:
            server.reset_observations()
