"""Elastic fleet lifecycle: health probes, membership churn, re-replication.

The multi-cloud's wave-based failover (:mod:`repro.cloud.multi_cloud`) keeps
a *batch* alive through member crashes, but it leaves the fleet degraded:
lost replicas stay lost, a dead member's slots stay dead, and redundancy
erodes with every loss until some bin's whole chain is gone.  This module
owns the *fleet* across those events.  A :class:`FleetLifecycleManager`
pairs every membership transition with the slice migration that makes the
new routing true, and re-proves the placement invariants over every
intermediate state:

* **Failure detection.**  :meth:`FleetLifecycleManager.probe` pings every
  member under a deadline; a wedged or dead member is excluded from routing
  (and a wedged process worker abandoned) before it can stall a batch.

* **Re-replication.**  After confirmed losses,
  :meth:`FleetLifecycleManager.restore_redundancy` rebuilds every bin's
  ``replication_factor``-way redundancy by copying the lost replicas' bin
  slices from surviving chain members onto the slices' new homes.

* **Runtime join / leave / replace.**
  :meth:`FleetLifecycleManager.add_member`,
  :meth:`FleetLifecycleManager.remove_member`, and
  :meth:`FleetLifecycleManager.replace_member` grow, shrink, and repair the
  fleet under load, migrating exactly the bin slices whose ownership moved —
  never a full re-outsource, never a re-bin.

Migration moves ciphertext slices between members byte-for-byte (storage
order within a bin is identical on every replica), so a degraded or
post-churn run stays *bit-identical* to a healthy one — results, adversary
views, and statistics alike.  Every transition is validated before the new
router is installed: storage non-collusion (no member stores a bin slice
outside the chains the router assigns it) and k-way redundancy per bin; a
violation raises instead of silently installing an unsafe ring.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cloud.multi_cloud import MultiCloud, ShardRouter
from repro.exceptions import (
    CloudError,
    FleetDegradedError,
    SecurityViolation,
)


def _bin_order(bin_index: Optional[int]) -> Tuple[int, int]:
    """Sort key placing the unassigned pseudo-bin (``None``) first."""
    return (0, 0) if bin_index is None else (1, bin_index)


@dataclass(frozen=True)
class MigrationReport:
    """What one membership transition actually moved.

    ``copies`` holds one ``(source, target, bins)`` entry per executed slice
    transfer; ``drops`` one ``(member, bins)`` entry per slice removal.
    ``bins_copied`` counts (bin, target) pairs — the same bin landing on two
    new homes counts twice, mirroring the storage it creates.
    """

    copies: Tuple[Tuple[int, int, Tuple[Optional[int], ...]], ...]
    drops: Tuple[Tuple[int, Tuple[Optional[int], ...]], ...]
    rows_copied: int
    rows_dropped: int

    @property
    def bins_copied(self) -> int:
        return sum(len(bins) for _source, _target, bins in self.copies)

    @property
    def bins_dropped(self) -> int:
        return sum(len(bins) for _member, bins in self.drops)


class FleetLifecycleManager:
    """Drives one fleet's membership through failures, joins, and repairs.

    Parameters
    ----------
    fleet:
        The :class:`~repro.cloud.multi_cloud.MultiCloud` being managed.
    router:
        The fleet's current :class:`~repro.cloud.multi_cloud.ShardRouter`.
        Every transition replaces it (see ``on_router_change``); read the
        current one back from :attr:`router`.
    probe_timeout:
        Deadline in seconds for health probes; ``None`` uses each member's
        own RPC timeout.  Only process-backed members can enforce it —
        thread-backed members are alive by construction (Python threads
        cannot be killed, so a thread backend cannot wedge independently of
        the coordinator).
    validate_transitions:
        When true (the default), every transition re-proves storage
        non-collusion and k-way redundancy over the post-migration fleet
        before the new router is installed, and raises on violation.
    on_router_change:
        Callback invoked with each newly installed router — the hook the
        query engine uses to start routing through the new membership.
    """

    def __init__(
        self,
        fleet: MultiCloud,
        router: ShardRouter,
        probe_timeout: Optional[float] = None,
        validate_transitions: bool = True,
        on_router_change: Optional[Callable[[ShardRouter], None]] = None,
    ):
        if router.num_shards != len(fleet):
            raise CloudError(
                f"router was built for {router.num_shards} slots, fleet has "
                f"{len(fleet)}"
            )
        self.fleet = fleet
        self.router = router
        self.probe_timeout = probe_timeout
        self.validate_transitions = validate_transitions
        self._on_router_change = on_router_change
        #: migration reports in transition order (operational audit trail)
        self.history: List[MigrationReport] = []
        #: one membership transition (or probe sweep) at a time: health
        #: checks and migrations read-modify-write the fleet's exclusion
        #: sets and the installed router, which must change atomically.
        self._lock = threading.RLock()

    # -- health ---------------------------------------------------------------------
    def _is_open(self, index: int) -> bool:
        return not getattr(self.fleet.servers[index], "closed", False)

    def probe(self) -> Dict[int, bool]:
        """Ping every non-departed member; exclude the ones that fail.

        Returns slot → healthy.  A member that misses the deadline (its
        worker is then abandoned), is already closed, or errors out of the
        probe is added to the fleet's ``failed_members`` with the probe
        error recorded, so the next batch routes around it immediately
        instead of discovering the loss mid-wave.  A healthy reply does
        *not* re-admit an excluded member — recovery is an explicit
        decision (:meth:`~repro.cloud.multi_cloud.MultiCloud.mark_recovered`
        or :meth:`replace_member`).
        """
        with self._lock:
            health: Dict[int, bool] = {}
            for index in sorted(self.fleet.live_members):
                try:
                    self.fleet.servers[index].ping(timeout=self.probe_timeout)
                except CloudError as error:
                    health[index] = False
                    self.fleet.failed_members.add(index)
                    self.fleet._member_errors.setdefault(index, error)
                else:
                    health[index] = True
            return health

    def confirm_loss(self, index: int) -> None:
        """Declare member ``index`` permanently lost (no data movement yet).

        The slot is tombstoned — its member leaves the fleet for good and
        routing membership shrinks accordingly on the next transition.
        Follow with :meth:`restore_redundancy` to rebuild the redundancy the
        loss cost; or repair the slot with :meth:`replace_member` instead.
        """
        with self._lock:
            self.fleet.remove_member(index)

    # -- invariants -----------------------------------------------------------------
    def _participants(self) -> List[int]:
        """Members whose storage exists and is reachable: open, not departed.

        Suspected-failed members stay in — their storage is real and must be
        accounted for (a transient exclusion must not cause duplicate
        copies); members actually gone (closed workers, tombstoned slots)
        cannot hold anything reachable.
        """
        return [
            index
            for index in sorted(self.fleet.live_members)
            if self._is_open(index)
        ]

    def replication_health(self) -> Dict[Optional[int], int]:
        """Stored-replica count per sensitive bin across reachable members.

        A fully healthy fleet reports ``replication_factor`` for every bin;
        lower counts measure eroded redundancy, higher counts indicate a
        migration that has not dropped moved-away slices yet.
        """
        with self._lock:
            counts: Dict[Optional[int], int] = {}
            for index in self._participants():
                if index in self.fleet.failed_members:
                    continue
                for bin_index in self.fleet.servers[index].stored_sensitive_bins():
                    counts[bin_index] = counts.get(bin_index, 0) + 1
            return counts

    def prove_non_collusion(self, router: Optional[ShardRouter] = None) -> int:
        """Prove the routing non-collusion invariant over every bin pair.

        For every sensitive bin (the unassigned pseudo-bin included) and
        every non-sensitive bin, the cleartext candidate set must be
        non-empty and disjoint from the sensitive bin's token chain — no
        member may ever see both halves of a bin pair, under the healthy
        placement *or any failover choice*.  Returns the number of pairs
        proved; raises :class:`~repro.exceptions.SecurityViolation` on the
        first violating pair.
        """
        router = router or self.router
        sensitive_bins: List[Optional[int]] = [None]
        sensitive_bins.extend(range(router.num_sensitive_bins))
        non_sensitive_bins: List[Optional[int]] = [None]
        non_sensitive_bins.extend(range(router.num_non_sensitive_bins))
        proved = 0
        for sensitive_bin in sensitive_bins:
            chain = set(router.replicas_of_sensitive(sensitive_bin))
            anchor = (
                0
                if sensitive_bin is None
                else router.shard_of_sensitive(sensitive_bin)
            )
            for non_sensitive_bin in non_sensitive_bins:
                candidates = router.cleartext_candidates(non_sensitive_bin, anchor)
                if not candidates:
                    raise SecurityViolation(
                        f"bin pair ({sensitive_bin!r}, {non_sensitive_bin!r}) "
                        "has no eligible cleartext member — the membership "
                        "cannot host the pair without collusion"
                    )
                overlap = chain.intersection(candidates)
                if overlap:
                    raise SecurityViolation(
                        f"members {sorted(overlap)} are cleartext candidates "
                        f"for non-sensitive bin {non_sensitive_bin!r} while "
                        f"holding sensitive bin {sensitive_bin!r}'s token "
                        "slice — token and cleartext halves would co-locate"
                    )
                proved += 1
        return proved

    def _validate_transition(self, router: ShardRouter) -> None:
        """Prove storage matches ``router`` before installing it.

        Storage non-collusion: every reachable member stores only bin slices
        the router's chains assign it (a stray slice could meet the bin's
        cleartext traffic on the same member).  Redundancy: every stored bin
        is held by exactly ``replication_factor`` members.
        """
        participants = self._participants()
        holders: Dict[Optional[int], Set[int]] = {}
        for index in participants:
            stored = self.fleet.servers[index].stored_sensitive_bins()
            stray = [
                bin_index
                for bin_index in stored
                if index not in router.replicas_of_sensitive(bin_index)
            ]
            if stray:
                raise SecurityViolation(
                    f"member {index} stores bin slices "
                    f"{sorted(stray, key=_bin_order)} outside its token "
                    "chains — migration left a slice behind"
                )
            for bin_index in stored:
                holders.setdefault(bin_index, set()).add(index)
        expected = router.replication_factor
        for bin_index, members in sorted(holders.items(), key=lambda kv: _bin_order(kv[0])):
            if len(members) != expected:
                raise FleetDegradedError(
                    f"bin {bin_index!r} is stored on {len(members)} members "
                    f"{sorted(members)}, expected {expected}-way redundancy"
                )
        self.prove_non_collusion(router)

    # -- slice migration ------------------------------------------------------------
    def _initialise_member(self, index: int) -> None:
        """Bring a fresh, empty member up to deployment state (no slices)."""
        deployment = self.fleet.last_deployment
        if deployment is None:
            raise CloudError(
                "the fleet has no recorded deployment; outsource before "
                "performing membership changes"
            )
        server = self.fleet.servers[index]
        server.store_non_sensitive(deployment.non_sensitive)
        # the empty (not absent) bin assignment matters: it opts the member
        # into the bin-addressed store, so schemes without a tag index keep
        # scanning one slice per retrieval once slices are migrated in
        server.store_sensitive([], deployment.scheme, bin_assignment={})
        server.build_index(deployment.attribute)

    def _migrate_to(
        self,
        router: ShardRouter,
        populating: FrozenSet[int] = frozenset(),
        departing: FrozenSet[int] = frozenset(),
    ) -> MigrationReport:
        """Move bin slices until storage matches ``router``'s chains exactly.

        For every stored bin: members the new chain adds receive the slice
        (copied once from a surviving holder — preferring a chain member,
        then any healthy holder, then a suspected-failed one as last
        resort), and holders the chain no longer includes drop theirs.
        ``populating`` members are copy targets being brought up (never
        sources); ``departing`` members are sources only (no point dropping
        from a member about to leave).  All reads happen before any drop, so
        a member may simultaneously lose one bin and source another.
        """
        fleet = self.fleet
        participants = self._participants()
        stored = {
            index: set(fleet.servers[index].stored_sensitive_bins())
            for index in participants
        }
        all_bins = sorted(set().union(*stored.values()) if stored else (), key=_bin_order)
        # source → target → bins, and member → bins to drop
        copy_plan: Dict[int, Dict[int, List[Optional[int]]]] = {}
        drop_plan: Dict[int, List[Optional[int]]] = {}
        for bin_index in all_bins:
            chain = router.replicas_of_sensitive(bin_index)
            desired = set(chain)
            bin_holders = {index for index in participants if bin_index in stored[index]}
            missing = sorted(desired - bin_holders)
            if missing:
                unreachable = [
                    target
                    for target in missing
                    if target in fleet.departed_members or not self._is_open(target)
                ]
                if unreachable:
                    raise CloudError(
                        f"bin {bin_index!r} must be re-replicated onto "
                        f"{unreachable}, but those members are gone — confirm "
                        "their loss (restore_redundancy) or replace them first"
                    )
                healthy = [
                    index
                    for index in bin_holders - populating
                    if index not in fleet.failed_members
                ]
                in_chain = [member for member in chain if member in healthy]
                suspected = sorted(bin_holders - populating - set(healthy))
                source_order = in_chain + sorted(set(healthy) - set(in_chain)) + suspected
                if not source_order:
                    raise FleetDegradedError(
                        f"bin {bin_index!r} has no surviving replica to copy "
                        "from; its slice is lost — raise replication_factor "
                        "or restore the members holding it"
                    )
                source = source_order[0]
                for target in missing:
                    copy_plan.setdefault(source, {}).setdefault(target, []).append(
                        bin_index
                    )
            for member in sorted(bin_holders - desired - departing):
                drop_plan.setdefault(member, []).append(bin_index)

        copies: List[Tuple[int, int, Tuple[Optional[int], ...]]] = []
        rows_copied = 0
        # all slice reads happen up front: a source may also be dropping
        # bins, and a departing member may be released right after
        fetched: Dict[int, Tuple[list, Dict[int, int]]] = {}
        for source in sorted(copy_plan):
            union_bins = sorted(
                {b for bins in copy_plan[source].values() for b in bins},
                key=_bin_order,
            )
            fetched[source] = fleet.servers[source].sensitive_slice(union_bins)
        for source in sorted(copy_plan):
            rows, assignment = fetched[source]
            for target in sorted(copy_plan[source]):
                wanted = set(copy_plan[source][target])
                slice_rows = [
                    row for row in rows if assignment.get(row.rid) in wanted
                ]
                slice_assignment = {
                    rid: bin_index
                    for rid, bin_index in assignment.items()
                    if bin_index in wanted
                }
                fleet.servers[target].receive_migrated_slice(
                    slice_rows, bin_assignment=slice_assignment or None
                )
                copies.append(
                    (source, target, tuple(sorted(wanted, key=_bin_order)))
                )
                rows_copied += len(slice_rows)

        drops: List[Tuple[int, Tuple[Optional[int], ...]]] = []
        rows_dropped = 0
        for member in sorted(drop_plan):
            bins = sorted(set(drop_plan[member]), key=_bin_order)
            rows_dropped += fleet.servers[member].drop_sensitive_bins(bins)
            drops.append((member, tuple(bins)))

        report = MigrationReport(
            copies=tuple(copies),
            drops=tuple(drops),
            rows_copied=rows_copied,
            rows_dropped=rows_dropped,
        )
        self.history.append(report)
        return report

    def _install(self, router: ShardRouter) -> None:
        if self.validate_transitions:
            self._validate_transition(router)
        self.router = router
        if self._on_router_change is not None:
            self._on_router_change(router)

    # -- transitions ----------------------------------------------------------------
    def restore_redundancy(self) -> MigrationReport:
        """Confirm every excluded member lost and rebuild k-way redundancy.

        Members currently excluded (``failed_members``) or whose workers are
        gone are tombstoned; every bin slice they held is re-replicated onto
        the next live chain members, copied from surviving holders.  The
        routing membership shrinks to the survivors, and the new router is
        installed once storage (and the non-collusion proof) matches it.
        """
        with self._lock:
            fleet = self.fleet
            losses = [
                index
                for index in sorted(fleet.live_members)
                if index in fleet.failed_members or not self._is_open(index)
            ]
            for index in losses:
                fleet.remove_member(index)
            router = self.router.with_membership(sorted(fleet.live_members))
            report = self._migrate_to(router)
            self._install(router)
            return report

    def add_member(self) -> Tuple[int, MigrationReport]:
        """Join a fresh member and rebalance bin slices onto it.

        The member is initialised from the recorded deployment, receives
        every slice the rebalanced routing assigns it (copied from current
        holders), members whose chains shrank drop the moved slices, and the
        grown router is installed.  Returns ``(new slot, migration)``.
        """
        with self._lock:
            fleet = self.fleet
            index = fleet.add_member()
            self._initialise_member(index)
            router = self.router.rebalanced(
                len(fleet), live_members=sorted(fleet.live_members)
            )
            report = self._migrate_to(router, populating=frozenset({index}))
            self._install(router)
            return index, report

    def remove_member(self, index: int) -> MigrationReport:
        """Gracefully retire member ``index``, migrating its slices away first.

        The member serves as a migration source until its slices have new
        homes, then leaves the fleet for good (its slot is tombstoned).
        Use :meth:`confirm_loss` + :meth:`restore_redundancy` for members
        that are already gone.
        """
        with self._lock:
            fleet = self.fleet
            if index in fleet.departed_members:
                raise CloudError(
                    f"member {index} has already departed the fleet"
                )
            router = self.router.with_membership(
                sorted(fleet.live_members - {index})
            )
            report = self._migrate_to(router, departing=frozenset({index}))
            fleet.remove_member(index)
            self._install(router)
            return report

    def replace_member(self, index: int) -> MigrationReport:
        """Swap a fresh member into slot ``index`` and restore its slices.

        Covers both repairing a lost member and rotating a healthy one out.
        The fresh member is initialised from the recorded deployment, every
        slice the slot's chains assign it is copied from surviving holders,
        and only then is the slot re-admitted to routing.
        """
        with self._lock:
            fleet = self.fleet
            fleet.replace_member(index)
            self._initialise_member(index)
            router = self.router.with_membership(sorted(fleet.live_members))
            report = self._migrate_to(router, populating=frozenset({index}))
            fleet.mark_recovered(index)
            self._install(router)
            return report
