"""Pluggable storage engines for the cloud server's encrypted stores.

A :class:`~repro.cloud.server.CloudServer` holds three sensitive-side stores:
the encrypted relation in storage order, the scheme's tag index (when
``supports_tag_index``), and the bin-addressed SSE store plus the rid → bin
assignment used by slice migration.  This module puts all of them behind one
:class:`StorageBackend` interface so a member can keep them either in process
memory (:class:`MemoryBackend`, the historical dict/list stores moved here
verbatim) or in a per-member SQLite file (:class:`SQLiteBackend`) whose size
is bounded by disk, not RAM.

Parity contract
---------------
Both backends must be *observably identical*: the rows a probe or a bin scan
returns, their order, and the work counters charged along the way are pinned
by the cross-backend parity suite (``tests/test_storage.py``).  The ordering
invariants that make this work:

* storage order is append order.  SQLite keeps a monotonically increasing
  ``position`` rowid; after a :meth:`StorageBackend.drop_bins` the surviving
  positions are sparse where the memory backend compacts, but the *relative*
  order — the only thing schemes observe — is identical.
* a tag-index bucket lists its ``(position, row)`` pairs in insertion order
  (``ORDER BY position``), matching the in-memory bucket lists.
* a bin scan serves the bin's slice in append order followed by the
  unassigned rows in append order, exactly as the dict-of-lists store does.

The tag index work counters (``probe_count`` / ``rows_examined``) always live
in Python attributes — :class:`SQLiteTagIndex` is a thin probe shim over the
``tags`` table — so observation snapshots stay O(1) integer captures and
crash rollback never touches the database.

Durability and transactions
---------------------------
The SQLite file runs in WAL mode with ``synchronous=NORMAL``.  The single
shared connection is serialized by a re-entrant mutex — concurrent tenant
sessions, fleet waves, and lifecycle migrations may all reach one member —
and a SAVEPOINT scope holds the mutex end to end, so a probe from another
thread can never interleave inside an open transaction.  Every
multi-statement mutation — outsourcing, appends, migration drops — runs
inside a ``SAVEPOINT`` and rolls back atomically on error, so a failed
migration can never leave a member with half a slice: the handoff is a keyed
``SELECT`` on the source and one transactional ``INSERT`` batch on the
destination instead of a Python row loop.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cloud.indexes import EncryptedTagIndex
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme
from repro.exceptions import CloudError

#: accepted ``storage_backend=`` specifications
STORAGE_BACKENDS: Tuple[str, ...] = ("memory", "sqlite")


class StorageBackend:
    """Interface between a :class:`CloudServer` and its sensitive stores.

    The server owns the *observable* behaviour — retrieval interning, view
    logs, network charging, invalidation — and delegates every touch of the
    encrypted relation, the tag index, the bin-addressed store, and the
    rid → bin assignment to one of these.
    """

    #: short name used in diagnostics and benchmark labels
    kind: str = "abstract"

    # -- outsourcing --------------------------------------------------------------
    def reset(
        self,
        rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Optional[Mapping[int, int]],
        *,
        build_tag_index: bool,
        build_bin_store: bool,
    ) -> None:
        """Replace all stored state with ``rows`` (a fresh outsourcing)."""
        raise NotImplementedError

    def append(
        self,
        rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]],
    ) -> None:
        """Append ``rows`` in storage order, extending derived structures."""
        raise NotImplementedError

    # -- reads --------------------------------------------------------------------
    def row_count(self) -> int:
        raise NotImplementedError

    def all_rows(self) -> Sequence[EncryptedRow]:
        """Every stored row in storage order (the linear-scan input)."""
        raise NotImplementedError

    def bin_counts(self) -> Dict[Optional[int], int]:
        """Stored row count per assigned bin (``None`` = unassigned)."""
        raise NotImplementedError

    def bin_candidates(self, bin_index: int) -> Sequence[EncryptedRow]:
        """The bin-addressed scan set: the bin's slice plus unassigned rows."""
        raise NotImplementedError

    # -- slice migration ----------------------------------------------------------
    def slice_bins(
        self, bins: Sequence[Optional[int]]
    ) -> Tuple[List[EncryptedRow], Dict[int, int]]:
        """The stored rows of ``bins`` (storage order) plus their bin map."""
        raise NotImplementedError

    def drop_bins(self, bins: Sequence[Optional[int]]) -> int:
        """Remove the slices of ``bins``; returns the number of rows dropped.

        Derived structures (tag index, bin store) are maintained over the
        survivors; tag-index work counters carry over so observation
        accounting never runs backwards.
        """
        raise NotImplementedError

    # -- derived structures -------------------------------------------------------
    @property
    def tag_index(self):
        """The live tag index (``None`` when the scheme has no stable tags)."""
        raise NotImplementedError

    @property
    def has_bin_store(self) -> bool:
        raise NotImplementedError

    def bin_store_view(self) -> Optional[Dict[int, List[EncryptedRow]]]:
        """The bin-addressed store as a dict (introspection/tests only)."""
        raise NotImplementedError

    def bin_assignment_view(self) -> Dict[int, int]:
        """The rid → bin assignment as a dict (introspection/tests only)."""
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group mutations atomically (a no-op for in-memory storage)."""
        yield

    def close(self) -> None:
        """Release storage resources (files, connections)."""


class MemoryBackend(StorageBackend):
    """The historical in-process stores: a row list, dict indexes, dict bins."""

    kind = "memory"

    def __init__(self) -> None:
        self._rows: List[EncryptedRow] = []
        self._scheme: Optional[EncryptedSearchScheme] = None
        self._tag_index: Optional[EncryptedTagIndex] = None
        self._bin_store: Optional[Dict[int, List[EncryptedRow]]] = None
        self._unassigned: List[EncryptedRow] = []
        self._bin_assignment: Dict[int, int] = {}
        # Memoised bin_candidates results (bin slice + unassigned concat):
        # the compute-bound benchmark regime re-serves the same hot bins per
        # pass, so the concatenation is built once per bin per mutation
        # epoch.  Cleared on every mutation.
        self._candidate_cache: Dict[int, Sequence[EncryptedRow]] = {}

    # -- outsourcing --------------------------------------------------------------
    def reset(
        self,
        rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Optional[Mapping[int, int]],
        *,
        build_tag_index: bool,
        build_bin_store: bool,
    ) -> None:
        self._rows = list(rows)
        self._scheme = scheme
        self._tag_index = None
        self._bin_store = None
        self._unassigned = []
        self._bin_assignment = dict(bin_assignment) if bin_assignment else {}
        self._candidate_cache.clear()
        if build_tag_index:
            self._tag_index = EncryptedTagIndex(scheme)
            self._tag_index.add_rows(self._rows, 0)
        elif build_bin_store:
            self._bin_store = {}
            self._place_in_bins(self._rows, bin_assignment or {})

    def append(
        self,
        rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]],
    ) -> None:
        start_position = len(self._rows)
        self._rows.extend(rows)
        self._candidate_cache.clear()
        if bin_assignment:
            self._bin_assignment.update(bin_assignment)
        if self._tag_index is not None:
            self._tag_index.add_rows(rows, start_position)
        if self._bin_store is not None:
            self._place_in_bins(rows, bin_assignment or {})

    def _place_in_bins(
        self,
        rows: Sequence[EncryptedRow],
        bin_assignment: Mapping[int, int],
    ) -> None:
        assert self._bin_store is not None
        for row in rows:
            bin_index = bin_assignment.get(row.rid)
            if bin_index is None:
                # Rows the owner did not place must stay visible to every bin
                # retrieval, otherwise the sliced scan could miss matches.
                self._unassigned.append(row)
            else:
                self._bin_store.setdefault(bin_index, []).append(row)

    # -- reads --------------------------------------------------------------------
    def row_count(self) -> int:
        return len(self._rows)

    def all_rows(self) -> Sequence[EncryptedRow]:
        return self._rows

    def bin_counts(self) -> Dict[Optional[int], int]:
        counts: Dict[Optional[int], int] = {}
        for row in self._rows:
            bin_index = self._bin_assignment.get(row.rid)
            counts[bin_index] = counts.get(bin_index, 0) + 1
        return counts

    def bin_candidates(self, bin_index: int) -> Sequence[EncryptedRow]:
        assert self._bin_store is not None
        candidates = self._candidate_cache.get(bin_index)
        if candidates is None:
            candidates = self._bin_store.get(bin_index, [])
            if self._unassigned:
                candidates = candidates + self._unassigned
            self._candidate_cache[bin_index] = candidates
        return candidates

    # -- slice migration ----------------------------------------------------------
    def slice_bins(
        self, bins: Sequence[Optional[int]]
    ) -> Tuple[List[EncryptedRow], Dict[int, int]]:
        wanted = set(bins)
        include_unassigned = None in wanted
        rows: List[EncryptedRow] = []
        assignment: Dict[int, int] = {}
        for row in self._rows:
            bin_index = self._bin_assignment.get(row.rid)
            if bin_index is None:
                if include_unassigned:
                    rows.append(row)
            elif bin_index in wanted:
                rows.append(row)
                assignment[row.rid] = bin_index
        return rows, assignment

    def drop_bins(self, bins: Sequence[Optional[int]]) -> int:
        wanted = set(bins)
        include_unassigned = None in wanted
        keep: List[EncryptedRow] = []
        dropped = 0
        for row in self._rows:
            bin_index = self._bin_assignment.get(row.rid)
            if (bin_index is None and include_unassigned) or (
                bin_index is not None and bin_index in wanted
            ):
                dropped += 1
                self._bin_assignment.pop(row.rid, None)
            else:
                keep.append(row)
        if not dropped:
            return 0
        self._rows = keep
        self._candidate_cache.clear()
        if self._tag_index is not None:
            assert self._scheme is not None
            rebuilt = EncryptedTagIndex(self._scheme)
            rebuilt.add_rows(self._rows, 0)
            rebuilt.probe_count = self._tag_index.probe_count
            rebuilt.rows_examined = self._tag_index.rows_examined
            self._tag_index = rebuilt
        if self._bin_store is not None:
            self._bin_store = {}
            self._unassigned = []
            self._place_in_bins(self._rows, self._bin_assignment)
        return dropped

    # -- derived structures -------------------------------------------------------
    @property
    def tag_index(self) -> Optional[EncryptedTagIndex]:
        return self._tag_index

    @property
    def has_bin_store(self) -> bool:
        return self._bin_store is not None

    def bin_store_view(self) -> Optional[Dict[int, List[EncryptedRow]]]:
        return self._bin_store

    def bin_assignment_view(self) -> Dict[int, int]:
        return self._bin_assignment


class SQLiteTagIndex:
    """Probe shim giving the SQLite ``tags`` table the tag-index surface.

    Buckets live in the database; the work counters live here, as plain
    Python integers, so :meth:`CloudServer.observation_snapshot` /
    ``restore_observations`` and the process-member observation deltas treat
    both backends identically.
    """

    _NO_ENTRIES: List[Tuple[int, EncryptedRow]] = []

    def __init__(self, backend: "SQLiteBackend") -> None:
        self._backend = backend
        self.probe_count = 0
        self.rows_examined = 0

    def probe(self, key: bytes) -> List[Tuple[int, EncryptedRow]]:
        """The (position, row) pairs stored under ``key`` (insertion order)."""
        self.probe_count += 1
        entries = self._backend._probe_tag(key)
        if not entries:
            return self._NO_ENTRIES
        self.rows_examined += len(entries)
        return entries

    def probe_many(
        self, keys: Sequence[bytes]
    ) -> List[List[Tuple[int, EncryptedRow]]]:
        """Batch :meth:`probe` (same per-key counter increments).

        Each key is still one keyed ``SELECT`` against the ``tags`` table;
        the batch surface exists so schemes can treat both tag-index
        implementations uniformly.
        """
        return [self.probe(key) for key in keys]

    def distinct_count(self) -> int:
        return self._backend._distinct_tag_count()

    def __len__(self) -> int:
        return self._backend._tag_entry_count()


def _cleanup_sqlite(connection: sqlite3.Connection, path: Optional[str]) -> None:
    """Finalizer: close the connection and unlink an owned temp database."""
    try:
        connection.close()
    except Exception:
        pass
    if path is not None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(path + suffix)
            except OSError:
                pass


class SQLiteBackend(StorageBackend):
    """Per-member SQLite storage: one table per store, bin-keyed indexes.

    Schema:

    ``rows(position, rid, ciphertext, search_tag, is_fake, placed_bin)``
        the encrypted relation in storage order.  ``placed_bin`` is the
        bin-addressed store: the bin each row was *placed* in at append time
        (``NULL`` = the unassigned overflow scanned by every bin retrieval),
        mirroring the dict-of-lists store exactly.
    ``bins(rid, bin)``
        the rid → bin assignment used by slice migration — kept for every
        scheme, exactly like the memory backend's ``_bin_assignment`` dict.
    ``tags(key, position)``
        the tag index's buckets; ``SQLiteTagIndex`` probes this table.
    """

    kind = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS rows (
            position   INTEGER PRIMARY KEY,
            rid        INTEGER NOT NULL,
            ciphertext BLOB NOT NULL,
            search_tag BLOB NOT NULL,
            is_fake    INTEGER NOT NULL,
            placed_bin INTEGER
        );
        CREATE INDEX IF NOT EXISTS rows_rid ON rows(rid);
        CREATE INDEX IF NOT EXISTS rows_placed_bin ON rows(placed_bin);
        CREATE TABLE IF NOT EXISTS bins (
            rid INTEGER PRIMARY KEY,
            bin INTEGER NOT NULL
        );
        CREATE INDEX IF NOT EXISTS bins_bin ON bins(bin);
        CREATE TABLE IF NOT EXISTS tags (
            key      BLOB NOT NULL,
            position INTEGER NOT NULL
        );
        CREATE INDEX IF NOT EXISTS tags_key ON tags(key);
        CREATE INDEX IF NOT EXISTS tags_position ON tags(position);
    """

    def __init__(
        self,
        path: Optional[str] = None,
        directory: Optional[str] = None,
        member_name: str = "member",
        synchronous: str = "NORMAL",
    ) -> None:
        if path is None:
            safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in member_name)
            handle, path = tempfile.mkstemp(
                prefix=f"repro-store-{safe}-", suffix=".sqlite3", dir=directory
            )
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        # The single connection is shared across whatever threads reach this
        # member (fleet waves, lifecycle migrations, concurrent tenant
        # sessions), so every statement runs under ``_mutex`` — re-entrant
        # because a SAVEPOINT scope holds it while the statements inside run.
        # Without it, a probe from a second thread can interleave inside
        # another thread's open SAVEPOINT and be swept up by its rollback.
        self._mutex = threading.RLock()
        self._connection = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(f"PRAGMA synchronous={synchronous}")
        self._connection.executescript(self._SCHEMA)
        self._scheme: Optional[EncryptedSearchScheme] = None
        self._tag_index: Optional[SQLiteTagIndex] = None
        self._has_bin_store = False
        self._row_count = 0
        self._next_position = 0
        self._savepoint_depth = 0
        self._closed = False
        self._finalizer = weakref.finalize(
            self,
            _cleanup_sqlite,
            self._connection,
            path if self._owns_file else None,
        )

    # -- transactions -------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[None]:
        """A SAVEPOINT-guarded scope: all statements commit or none do.

        The connection mutex is held for the *whole* scope, not per
        statement, so no other thread's read or write can land inside the
        SAVEPOINT (and be silently swept up by its rollback).
        """
        with self._mutex:
            name = f"sp_{self._savepoint_depth}"
            self._savepoint_depth += 1
            counters = (self._row_count, self._next_position)
            self._connection.execute(f"SAVEPOINT {name}")
            try:
                yield
            except BaseException:
                self._connection.execute(f"ROLLBACK TO {name}")
                self._connection.execute(f"RELEASE {name}")
                # the Python-side counters must roll back with the tables
                self._row_count, self._next_position = counters
                raise
            else:
                self._connection.execute(f"RELEASE {name}")
            finally:
                self._savepoint_depth -= 1

    # -- outsourcing --------------------------------------------------------------
    def reset(
        self,
        rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Optional[Mapping[int, int]],
        *,
        build_tag_index: bool,
        build_bin_store: bool,
    ) -> None:
        rows = list(rows)
        assignment = dict(bin_assignment) if bin_assignment else {}
        with self.transaction():
            self._connection.execute("DELETE FROM rows")
            self._connection.execute("DELETE FROM bins")
            self._connection.execute("DELETE FROM tags")
            self._scheme = scheme
            self._tag_index = SQLiteTagIndex(self) if build_tag_index else None
            self._has_bin_store = build_bin_store
            self._row_count = 0
            self._next_position = 0
            self._insert_rows(rows, bin_assignment or {})
            if assignment:
                self._connection.executemany(
                    "INSERT OR REPLACE INTO bins(rid, bin) VALUES (?, ?)",
                    assignment.items(),
                )

    def append(
        self,
        rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]],
    ) -> None:
        with self.transaction():
            self._insert_rows(rows, bin_assignment or {})
            if bin_assignment:
                self._connection.executemany(
                    "INSERT OR REPLACE INTO bins(rid, bin) VALUES (?, ?)",
                    bin_assignment.items(),
                )

    def _insert_rows(
        self,
        rows: Sequence[EncryptedRow],
        placement: Mapping[int, int],
    ) -> None:
        """Append ``rows`` at fresh positions, maintaining store and index."""
        start = self._next_position
        place = placement.get if self._has_bin_store else (lambda _rid: None)
        self._connection.executemany(
            "INSERT INTO rows(position, rid, ciphertext, search_tag, is_fake,"
            " placed_bin) VALUES (?, ?, ?, ?, ?, ?)",
            (
                (
                    start + offset,
                    row.rid,
                    row.ciphertext,
                    row.search_tag,
                    int(row.is_fake),
                    place(row.rid),
                )
                for offset, row in enumerate(rows)
            ),
        )
        if self._tag_index is not None:
            assert self._scheme is not None
            index_key = self._scheme.index_key
            self._connection.executemany(
                "INSERT INTO tags(key, position) VALUES (?, ?)",
                (
                    (key, start + offset)
                    for offset, row in enumerate(rows)
                    if (key := index_key(row)) is not None
                ),
            )
        added = len(rows)
        self._row_count += added
        self._next_position = start + added

    @staticmethod
    def _make_row(rid: int, ciphertext, search_tag, is_fake: int) -> EncryptedRow:
        return EncryptedRow(
            rid=rid,
            ciphertext=bytes(ciphertext),
            search_tag=bytes(search_tag),
            is_fake=bool(is_fake),
        )

    # -- reads --------------------------------------------------------------------
    def row_count(self) -> int:
        return self._row_count

    def all_rows(self) -> List[EncryptedRow]:
        make = self._make_row
        with self._mutex:
            return [
                make(*fields)
                for fields in self._connection.execute(
                    "SELECT rid, ciphertext, search_tag, is_fake FROM rows"
                    " ORDER BY position"
                )
            ]

    def bin_counts(self) -> Dict[Optional[int], int]:
        with self._mutex:
            return {
                bin_index: count
                for bin_index, count in self._connection.execute(
                    "SELECT b.bin, COUNT(*) FROM rows r"
                    " LEFT JOIN bins b ON b.rid = r.rid GROUP BY b.bin"
                )
            }

    def bin_candidates(self, bin_index: int) -> List[EncryptedRow]:
        make = self._make_row
        with self._mutex:
            candidates = [
                make(*fields)
                for fields in self._connection.execute(
                    "SELECT rid, ciphertext, search_tag, is_fake FROM rows"
                    " WHERE placed_bin = ? ORDER BY position",
                    (bin_index,),
                )
            ]
            candidates.extend(
                make(*fields)
                for fields in self._connection.execute(
                    "SELECT rid, ciphertext, search_tag, is_fake FROM rows"
                    " WHERE placed_bin IS NULL ORDER BY position"
                )
            )
        return candidates

    # -- slice migration ----------------------------------------------------------
    def _slice_condition(
        self, bins: Sequence[Optional[int]]
    ) -> Tuple[str, List[int]]:
        """WHERE clause (over ``rows r`` joined as ``b``) selecting the slices."""
        wanted = set(bins)
        include_unassigned = None in wanted
        real = sorted(b for b in wanted if b is not None)
        clauses = []
        if real:
            clauses.append(f"b.bin IN ({','.join('?' * len(real))})")
        if include_unassigned:
            clauses.append("b.rid IS NULL")
        if not clauses:
            clauses.append("0")
        return " OR ".join(clauses), real

    def slice_bins(
        self, bins: Sequence[Optional[int]]
    ) -> Tuple[List[EncryptedRow], Dict[int, int]]:
        condition, params = self._slice_condition(bins)
        rows: List[EncryptedRow] = []
        assignment: Dict[int, int] = {}
        make = self._make_row
        with self._mutex:
            for (
                rid,
                ciphertext,
                search_tag,
                is_fake,
                bin_index,
            ) in self._connection.execute(
                "SELECT r.rid, r.ciphertext, r.search_tag, r.is_fake, b.bin"
                " FROM rows r LEFT JOIN bins b ON b.rid = r.rid"
                f" WHERE {condition} ORDER BY r.position",
                params,
            ):
                rows.append(make(rid, ciphertext, search_tag, is_fake))
                if bin_index is not None:
                    assignment[rid] = bin_index
        return rows, assignment

    def drop_bins(self, bins: Sequence[Optional[int]]) -> int:
        condition, params = self._slice_condition(bins)
        with self.transaction():
            dropped_rows = self._connection.execute(
                "SELECT r.position, r.rid FROM rows r"
                f" LEFT JOIN bins b ON b.rid = r.rid WHERE {condition}",
                params,
            ).fetchall()
            if not dropped_rows:
                return 0
            self._connection.executemany(
                "DELETE FROM tags WHERE position = ?",
                ((position,) for position, _rid in dropped_rows),
            )
            self._connection.executemany(
                "DELETE FROM rows WHERE position = ?",
                ((position,) for position, _rid in dropped_rows),
            )
            self._connection.executemany(
                "DELETE FROM bins WHERE rid = ?",
                ((rid,) for _position, rid in dropped_rows),
            )
            if self._has_bin_store:
                # Match the memory backend's post-drop rebuild: surviving
                # rows are re-placed from the *assignment*, so a row whose
                # assignment arrived after its append moves out of the
                # unassigned overflow.
                self._connection.execute(
                    "UPDATE rows SET placed_bin ="
                    " (SELECT bin FROM bins WHERE bins.rid = rows.rid)"
                )
            self._row_count -= len(dropped_rows)
        return len(dropped_rows)

    # -- derived structures -------------------------------------------------------
    @property
    def tag_index(self) -> Optional[SQLiteTagIndex]:
        return self._tag_index

    @property
    def has_bin_store(self) -> bool:
        return self._has_bin_store

    def bin_store_view(self) -> Optional[Dict[int, List[EncryptedRow]]]:
        if not self._has_bin_store:
            return None
        view: Dict[int, List[EncryptedRow]] = {}
        make = self._make_row
        with self._mutex:
            for (
                bin_index,
                rid,
                ciphertext,
                search_tag,
                is_fake,
            ) in self._connection.execute(
                "SELECT placed_bin, rid, ciphertext, search_tag, is_fake FROM rows"
                " WHERE placed_bin IS NOT NULL ORDER BY position"
            ):
                view.setdefault(bin_index, []).append(
                    make(rid, ciphertext, search_tag, is_fake)
                )
        return view

    def bin_assignment_view(self) -> Dict[int, int]:
        with self._mutex:
            return dict(self._connection.execute("SELECT rid, bin FROM bins"))

    # -- tag-index plumbing -------------------------------------------------------
    def _probe_tag(self, key: bytes) -> List[Tuple[int, EncryptedRow]]:
        make = self._make_row
        with self._mutex:
            return [
                (position, make(rid, ciphertext, search_tag, is_fake))
                for position, rid, ciphertext, search_tag, is_fake in (
                    self._connection.execute(
                        "SELECT t.position, r.rid, r.ciphertext, r.search_tag,"
                        " r.is_fake FROM tags t JOIN rows r ON r.position = t.position"
                        " WHERE t.key = ? ORDER BY t.position",
                        (key,),
                    )
                )
            ]

    def _distinct_tag_count(self) -> int:
        with self._mutex:
            (count,) = self._connection.execute(
                "SELECT COUNT(DISTINCT key) FROM tags"
            ).fetchone()
            return count

    def _tag_entry_count(self) -> int:
        with self._mutex:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM tags"
            ).fetchone()
            return count

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Close the connection and remove an owned temporary database file."""
        with self._mutex:
            if not self._closed:
                self._closed = True
                self._finalizer()


def make_storage_backend(
    spec: Union[str, StorageBackend, None],
    member_name: str = "member",
    directory: Optional[str] = None,
) -> StorageBackend:
    """Resolve a ``storage_backend=`` argument into a backend instance.

    ``spec`` may be ``"memory"`` (or ``None``), ``"sqlite"``, or an already
    constructed :class:`StorageBackend` (tests injecting doubles).
    ``directory`` places a SQLite backend's database file (default: the
    system temp dir, removed with the backend).
    """
    if isinstance(spec, StorageBackend):
        return spec
    if spec is None or spec == "memory":
        return MemoryBackend()
    if spec == "sqlite":
        return SQLiteBackend(directory=directory, member_name=member_name)
    raise CloudError(
        f"unknown storage_backend {spec!r}; choose from {list(STORAGE_BACKENDS)}"
    )
