"""Network transfer cost model between the DB owner and the cloud.

The paper's testbed used a ~30 Mbps downlink; the analytical model only needs
the per-tuple transfer cost ``Ccom`` (≈ 4 µs for a 200-byte TPC-H Customer
row at that bandwidth).  :class:`NetworkModel` converts tuple and byte counts
into simulated seconds and keeps a transfer log so experiments can report the
communication component of QB's trade-off separately from computation.

Concurrency
-----------
A model instance is shared by everything charging traffic on one member's
behalf: the member's serve path, fleet worker threads, proxy observation
mirrors, and (under the service layer) multiple tenant sessions.  Every
mutation — log appends, truncations, wire-byte bumps — therefore happens
under one internal lock, and the aggregate readers snapshot the log under
the same lock, so ``total_*`` and ``wire_bytes`` are exact even while other
threads are recording.  The lock is deliberately excluded from pickles (a
worker process reconstructs its own).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TransferLog:
    """One logical transfer between the owner and the cloud."""

    direction: str  # "upload" or "download"
    description: str
    tuples: int
    bytes_transferred: int
    seconds: float


@dataclass
class NetworkModel:
    """Deterministic latency/bandwidth model.

    Parameters
    ----------
    bandwidth_mbps:
        Link bandwidth in megabits per second (paper: 30 Mbps).
    latency_seconds:
        Per-request round-trip latency added to every transfer.
    bytes_per_tuple:
        Average serialised tuple size (paper: ≈200 bytes for TPC-H Customer).
    """

    bandwidth_mbps: float = 30.0
    latency_seconds: float = 0.0005
    bytes_per_tuple: int = 200
    log: List[TransferLog] = field(default_factory=list)
    #: Real (not simulated) transport bytes moved over a process-member
    #: pipe on this model's behalf — frame headers, pickled payloads, and
    #: out-of-band buffers, both directions.  Unlike the entries in ``log``
    #: (a deterministic *cost model* of owner↔cloud traffic), this counter
    #: measures what serialization actually shipped, so benchmarks can
    #: report wire cost next to wall-clock.  Zero for in-process servers.
    #: ``reset()`` clears it with the log; crash rollback
    #: (``restore_observations``) deliberately leaves it alone — the bytes
    #: crossed the pipe whether or not the batch survived.
    wire_bytes: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # Locks are process-local; a pickled model (shipped to a worker process
    # on non-fork platforms) rebuilds its own on arrival.
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def seconds_per_tuple(self) -> float:
        """``Ccom`` — the time to move one tuple over the link."""
        bits_per_tuple = self.bytes_per_tuple * 8
        return bits_per_tuple / (self.bandwidth_mbps * 1_000_000)

    def transfer_seconds(self, tuples: int, extra_bytes: int = 0) -> float:
        """Simulated seconds to transfer ``tuples`` rows plus ``extra_bytes``."""
        payload_bits = (tuples * self.bytes_per_tuple + extra_bytes) * 8
        return self.latency_seconds + payload_bits / (self.bandwidth_mbps * 1_000_000)

    def record(
        self,
        direction: str,
        description: str,
        tuples: int,
        extra_bytes: int = 0,
    ) -> float:
        """Log a transfer and return its simulated duration in seconds."""
        seconds = self.transfer_seconds(tuples, extra_bytes)
        entry = TransferLog(
            direction=direction,
            description=description,
            tuples=tuples,
            bytes_transferred=tuples * self.bytes_per_tuple + extra_bytes,
            seconds=seconds,
        )
        with self._lock:
            self.log.append(entry)
        return seconds

    # -- synchronized log/counter maintenance -------------------------------------
    #
    # Proxies and crash rollback manipulate the log structurally (bulk
    # extends from observation deltas, truncations back to a snapshot).
    # Routing those through the model keeps every mutation under the one
    # lock instead of scattering ``model.log`` surgery across callers.

    def extend_log(self, entries: List[TransferLog]) -> None:
        """Append many entries atomically (proxy observation deltas)."""
        with self._lock:
            self.log.extend(entries)

    def truncate_log(self, length: int) -> None:
        """Drop every entry past ``length`` (crash/snapshot rollback)."""
        with self._lock:
            del self.log[length:]

    def add_wire_bytes(self, count: int) -> None:
        """Bump the transport-byte counter atomically."""
        with self._lock:
            self.wire_bytes += count

    def set_wire_bytes(self, count: int) -> None:
        """Overwrite the transport-byte counter (proxy epoch mirroring)."""
        with self._lock:
            self.wire_bytes = count

    # -- aggregate accounting ----------------------------------------------------
    def _entries(self) -> List[TransferLog]:
        """A point-in-time copy of the log (exact under concurrent writers)."""
        with self._lock:
            return list(self.log)

    def total_seconds(self, direction: Optional[str] = None) -> float:
        return sum(
            entry.seconds
            for entry in self._entries()
            if direction is None or entry.direction == direction
        )

    def total_tuples(self, direction: Optional[str] = None) -> int:
        return sum(
            entry.tuples
            for entry in self._entries()
            if direction is None or entry.direction == direction
        )

    def total_bytes(self, direction: Optional[str] = None) -> int:
        return sum(
            entry.bytes_transferred
            for entry in self._entries()
            if direction is None or entry.direction == direction
        )

    def reset(self) -> None:
        with self._lock:
            self.log.clear()
            self.wire_bytes = 0
