"""Network transfer cost model between the DB owner and the cloud.

The paper's testbed used a ~30 Mbps downlink; the analytical model only needs
the per-tuple transfer cost ``Ccom`` (≈ 4 µs for a 200-byte TPC-H Customer
row at that bandwidth).  :class:`NetworkModel` converts tuple and byte counts
into simulated seconds and keeps a transfer log so experiments can report the
communication component of QB's trade-off separately from computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TransferLog:
    """One logical transfer between the owner and the cloud."""

    direction: str  # "upload" or "download"
    description: str
    tuples: int
    bytes_transferred: int
    seconds: float


@dataclass
class NetworkModel:
    """Deterministic latency/bandwidth model.

    Parameters
    ----------
    bandwidth_mbps:
        Link bandwidth in megabits per second (paper: 30 Mbps).
    latency_seconds:
        Per-request round-trip latency added to every transfer.
    bytes_per_tuple:
        Average serialised tuple size (paper: ≈200 bytes for TPC-H Customer).
    """

    bandwidth_mbps: float = 30.0
    latency_seconds: float = 0.0005
    bytes_per_tuple: int = 200
    log: List[TransferLog] = field(default_factory=list)
    #: Real (not simulated) transport bytes moved over a process-member
    #: pipe on this model's behalf — frame headers, pickled payloads, and
    #: out-of-band buffers, both directions.  Unlike the entries in ``log``
    #: (a deterministic *cost model* of owner↔cloud traffic), this counter
    #: measures what serialization actually shipped, so benchmarks can
    #: report wire cost next to wall-clock.  Zero for in-process servers.
    #: ``reset()`` clears it with the log; crash rollback
    #: (``restore_observations``) deliberately leaves it alone — the bytes
    #: crossed the pipe whether or not the batch survived.
    wire_bytes: int = 0

    @property
    def seconds_per_tuple(self) -> float:
        """``Ccom`` — the time to move one tuple over the link."""
        bits_per_tuple = self.bytes_per_tuple * 8
        return bits_per_tuple / (self.bandwidth_mbps * 1_000_000)

    def transfer_seconds(self, tuples: int, extra_bytes: int = 0) -> float:
        """Simulated seconds to transfer ``tuples`` rows plus ``extra_bytes``."""
        payload_bits = (tuples * self.bytes_per_tuple + extra_bytes) * 8
        return self.latency_seconds + payload_bits / (self.bandwidth_mbps * 1_000_000)

    def record(
        self,
        direction: str,
        description: str,
        tuples: int,
        extra_bytes: int = 0,
    ) -> float:
        """Log a transfer and return its simulated duration in seconds."""
        seconds = self.transfer_seconds(tuples, extra_bytes)
        self.log.append(
            TransferLog(
                direction=direction,
                description=description,
                tuples=tuples,
                bytes_transferred=tuples * self.bytes_per_tuple + extra_bytes,
                seconds=seconds,
            )
        )
        return seconds

    # -- aggregate accounting ----------------------------------------------------
    def total_seconds(self, direction: Optional[str] = None) -> float:
        return sum(
            entry.seconds
            for entry in self.log
            if direction is None or entry.direction == direction
        )

    def total_tuples(self, direction: Optional[str] = None) -> int:
        return sum(
            entry.tuples
            for entry in self.log
            if direction is None or entry.direction == direction
        )

    def total_bytes(self, direction: Optional[str] = None) -> int:
        return sum(
            entry.bytes_transferred
            for entry in self.log
            if direction is None or entry.direction == direction
        )

    def reset(self) -> None:
        self.log.clear()
        self.wire_bytes = 0
