"""Process-backed multi-cloud members.

The thread-backed :class:`~repro.cloud.multi_cloud.MultiCloud` divides a
batch across members, but every member still computes under the coordinator
process's GIL — CPU-bound cloud work (SSE trial decryption above all) never
actually runs in parallel.  This module provides the escape hatch:
``MultiCloud(member_backend="process")`` places each member's
:class:`~repro.cloud.server.CloudServer` in its own worker process, connected
to the coordinator by a :class:`ProcessMemberProxy` that speaks a small
pickled RPC protocol over a pipe.

Design
------
* **State affinity.**  Each member's stored relations, ciphertexts, and
  indexes live in exactly one worker process for the fleet's lifetime (a
  pool that round-robins tasks would be useless — the state *is* the
  member).  The worker is a plain command loop around a real server object,
  so every server behaviour — including test subclasses such as the
  fault-injecting server — works unchanged behind the proxy.
* **Batched observation sync.**  The coordinator must keep seeing the exact
  single-server information split: per-member adversarial views, statistics,
  and network charges.  Every RPC reply therefore carries an
  :class:`ObservationDelta` — the compact view records, transfer-log
  entries, and counter values produced since the previous sync — which the
  proxy folds into local mirrors.  Observations are synced once per batch,
  not once per query, so the IPC cost amortises exactly like the compute.
* **Crash semantics for real.**  ``observation_snapshot`` /
  ``restore_observations`` are forwarded across the boundary, so the fleet's
  wave-based failover (and the fault-injection parity harness) works
  identically for process members.  A worker process that actually dies
  (EOF on the pipe) surfaces as :class:`~repro.exceptions.MemberFailure`
  from ``process_batch`` — a genuine process loss feeds the same failover
  path the simulated crashes exercise.
* **Isolated scheme copies.**  Each worker holds its own (pickled) copy of
  the search scheme, so schemes whose cloud-side matching mutates internal
  work counters (``concurrent_search_safe = False``) are race-free under
  this backend without serialising members; their counters then tally the
  per-worker work and are not synced back to the owner's scheme object.

* **RPC deadlines.**  Every RPC waits for its reply with
  ``connection.poll(rpc_timeout)`` instead of a blocking ``recv()``, so a
  wedged-but-alive worker can hang neither a batch nor ``close()``.  A
  missed deadline raises :class:`~repro.exceptions.MemberTimeout` (a
  :class:`~repro.exceptions.MemberFailure`), feeding the fleet's ordinary
  retry/failover path, and the proxy *abandons* the worker — kills it and
  marks itself closed — because a late reply could no longer be matched to
  its request without desynchronising the pipe protocol.
* **Framed wire format.**  Messages cross the pipe as length-prefixed
  frames (:class:`FrameChannel`) instead of ``Connection.send``'s implicit
  pickling: the payload is pickled once with protocol 5 and a
  ``buffer_callback``, so :class:`pickle.PickleBuffer`-backed values travel
  out-of-band without an extra copy, and the receiver reads into a reusable
  scratch buffer with ``recv_bytes_into`` instead of allocating a fresh
  ``bytes`` per reply.  Large frames are chunked (``WIRE_CHUNK_BYTES``) so
  a single huge pipe message never has to materialise on either side.  The
  channel counts the real bytes it moves in both directions; the proxy
  mirrors that total into ``network.wire_bytes`` so benchmarks can report
  serialisation cost next to the simulated transfer model.
* **Version handshake.**  The first thing a worker writes is a fixed-size
  hello frame carrying the wire magic, wire-format version, and pickle
  protocol.  The proxy validates it before the first RPC and fails loudly
  (:class:`~repro.exceptions.ProcessMemberError`) on any mismatch, so a
  mixed-version coordinator/worker pair can never exchange frames it would
  silently misparse.

The proxy raises :class:`~repro.exceptions.ProcessMemberError` when the
worker protocol itself breaks outside a batch (a dead worker during
outsourcing is a deployment error, not a servable fault).
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.adversary.view import ViewLog, ViewTemplate
from repro.cloud.network import NetworkModel, TransferLog
from repro.cloud.server import (
    BatchRequest,
    CloudServer,
    CloudStatistics,
    ObservationSnapshot,
    QueryResponse,
)
from repro.crypto.base import EncryptedSearchScheme
from repro.data.relation import Row
from repro.exceptions import (
    FrameTooLargeError,
    MemberFailure,
    MemberTimeout,
    ProcessMemberError,
)

_SHUTDOWN = None  # sentinel message ending the worker loop

# -- wire format ------------------------------------------------------------------
#: Magic bytes opening the handshake frame ("Repro QB Wire").
WIRE_MAGIC = b"RQBW"
#: Version of the frame layout below.  Bump on any incompatible change.
WIRE_VERSION = 1
#: Pickle protocol frames are encoded with.  Protocol 5 adds out-of-band
#: buffer support (:class:`pickle.PickleBuffer`), which is what lets large
#: binary payloads skip the in-band copy.
WIRE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
#: Maximum bytes per pipe message.  Frames larger than this are split so
#: neither side ever has to stage one huge OS-level write/read.
WIRE_CHUNK_BYTES = 1 << 20
#: How long the proxy waits for the worker's hello frame.  Deliberately
#: independent of ``rpc_timeout`` — tests pin tiny RPC deadlines to provoke
#: :class:`~repro.exceptions.MemberTimeout`, and process startup (fork +
#: server construction) must not race those.
HANDSHAKE_TIMEOUT = 10.0

#: Frame header: total pickled-payload length, out-of-band buffer count.
_FRAME_HEADER = struct.Struct("<QI")
#: One per out-of-band buffer, appended to the frame header: buffer length.
_BUFFER_LENGTH = struct.Struct("<Q")
#: Handshake frame: magic, wire version, pickle protocol.
_HELLO = struct.Struct("<4sHH")


def _hello_blob() -> bytes:
    return _HELLO.pack(WIRE_MAGIC, WIRE_VERSION, WIRE_PICKLE_PROTOCOL)


def _check_hello(blob: bytes, peer: str) -> None:
    """Validate a peer's hello frame; raise loudly on any mismatch."""
    if len(blob) != _HELLO.size:
        raise ProcessMemberError(
            f"{peer}: malformed wire handshake ({len(blob)} bytes, "
            f"expected {_HELLO.size})"
        )
    magic, version, protocol = _HELLO.unpack(blob)
    if magic != WIRE_MAGIC:
        raise ProcessMemberError(
            f"{peer}: wire handshake magic mismatch "
            f"(got {magic!r}, expected {WIRE_MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise ProcessMemberError(
            f"{peer}: wire format version mismatch (peer speaks v{version}, "
            f"this coordinator speaks v{WIRE_VERSION}); refusing to exchange "
            "frames with a mixed-version pair"
        )
    if protocol != WIRE_PICKLE_PROTOCOL:
        raise ProcessMemberError(
            f"{peer}: pickle protocol mismatch (peer uses protocol "
            f"{protocol}, this coordinator uses {WIRE_PICKLE_PROTOCOL})"
        )


class FrameChannel:
    """Length-prefixed, chunked pickle-5 framing over a multiprocessing pipe.

    ``Connection.send`` pickles with the default protocol and always ships
    one monolithic in-band blob.  This channel instead pickles once with
    protocol 5 and a ``buffer_callback`` — values wrapped in
    :class:`pickle.PickleBuffer` travel as separate out-of-band buffers with
    no intermediate copy — and moves everything as explicit byte frames:

    ``header | payload chunks | buffer chunks``

    where the header packs the payload length, the out-of-band buffer count,
    and each buffer's length.  Chunks are at most :data:`WIRE_CHUNK_BYTES`
    each.  On receive, the payload lands in a reusable scratch
    ``bytearray`` via ``recv_bytes_into`` (grown geometrically, never
    shrunk), so steady-state RPC traffic allocates no per-reply payload
    buffer; ``pickle.loads`` copies what it keeps, which is what makes
    reusing the scratch safe.

    ``bytes_sent`` / ``bytes_received`` count every transported byte
    (headers included) and only ever grow — proxies baseline them to expose
    per-epoch deltas as ``network.wire_bytes``.

    ``max_frame_bytes`` (``None`` = unlimited, the right default for the
    trusted in-process pipe) caps what one frame may carry, *enforced
    before allocation on receive and before the first byte on send* — an
    adversarial or corrupted header announcing a huge payload raises
    :class:`~repro.exceptions.FrameTooLargeError` instead of committing
    the receiver to the allocation; an oversized outbound message fails
    cleanly with no partial frame on the wire.  The service wire sets it.
    """

    def __init__(self, connection, max_frame_bytes: Optional[int] = None):
        self._connection = connection
        self._scratch = bytearray(WIRE_CHUNK_BYTES)
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- handshake ----------------------------------------------------------------
    def send_hello(self) -> None:
        blob = _hello_blob()
        self._connection.send_bytes(blob)
        self.bytes_sent += len(blob)

    def recv_hello(self, peer: str) -> None:
        blob = self._connection.recv_bytes()
        self.bytes_received += len(blob)
        _check_hello(blob, peer)

    # -- frames -------------------------------------------------------------------
    def send_message(self, obj) -> None:
        buffers: List[pickle.PickleBuffer] = []
        payload = pickle.dumps(
            obj, protocol=WIRE_PICKLE_PROTOCOL, buffer_callback=buffers.append
        )
        raws = [buffer.raw() for buffer in buffers]
        if self.max_frame_bytes is not None:
            total = len(payload) + sum(raw.nbytes for raw in raws)
            if total > self.max_frame_bytes:
                for raw in raws:
                    raw.release()
                raise FrameTooLargeError(
                    f"outbound frame of {total} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte cap; nothing was sent"
                )
        header = bytearray(_FRAME_HEADER.pack(len(payload), len(raws)))
        for raw in raws:
            header += _BUFFER_LENGTH.pack(raw.nbytes)
        send_bytes = self._connection.send_bytes
        send_bytes(header)
        sent = len(header)
        with memoryview(payload) as view:
            for offset in range(0, len(payload), WIRE_CHUNK_BYTES):
                send_bytes(view[offset : offset + WIRE_CHUNK_BYTES])
        sent += len(payload)
        for raw in raws:
            for offset in range(0, raw.nbytes, WIRE_CHUNK_BYTES):
                send_bytes(raw[offset : offset + WIRE_CHUNK_BYTES])
            sent += raw.nbytes
            raw.release()
        self.bytes_sent += sent

    def _recv_exactly(self, buffer: bytearray, length: int) -> None:
        recv_into = self._connection.recv_bytes_into
        offset = 0
        while offset < length:
            offset += recv_into(buffer, offset)

    def recv_message(self):
        header = self._connection.recv_bytes()
        if len(header) < _FRAME_HEADER.size:
            raise ProcessMemberError(
                f"malformed wire frame header ({len(header)} bytes)"
            )
        payload_length, buffer_count = _FRAME_HEADER.unpack_from(header, 0)
        expected = _FRAME_HEADER.size + buffer_count * _BUFFER_LENGTH.size
        if len(header) != expected:
            raise ProcessMemberError(
                f"malformed wire frame header ({len(header)} bytes for "
                f"{buffer_count} buffers, expected {expected})"
            )
        if self.max_frame_bytes is not None:
            announced = payload_length + sum(
                _BUFFER_LENGTH.unpack_from(
                    header, _FRAME_HEADER.size + position * _BUFFER_LENGTH.size
                )[0]
                for position in range(buffer_count)
            )
            if announced > self.max_frame_bytes:
                # refuse BEFORE the allocation: a hostile length prefix
                # must cost the peer its connection, not the host an OOM
                raise FrameTooLargeError(
                    f"inbound frame announces {announced} bytes, above the "
                    f"{self.max_frame_bytes}-byte cap; refusing to allocate"
                )
        scratch = self._scratch
        if len(scratch) < payload_length:
            self._scratch = scratch = bytearray(
                max(payload_length, 2 * len(scratch))
            )
        self._recv_exactly(scratch, payload_length)
        received = len(header) + payload_length
        oob: List[bytearray] = []
        for position in range(buffer_count):
            (length,) = _BUFFER_LENGTH.unpack_from(
                header, _FRAME_HEADER.size + position * _BUFFER_LENGTH.size
            )
            buffer = bytearray(length)
            self._recv_exactly(buffer, length)
            oob.append(buffer)
            received += length
        self.bytes_received += received
        with memoryview(scratch) as view:
            return pickle.loads(view[:payload_length], buffers=oob)

    # -- plumbing -----------------------------------------------------------------
    def poll(self, timeout: Optional[float] = None) -> bool:
        return self._connection.poll(timeout)

    def close(self) -> None:
        self._connection.close()

    @property
    def closed(self) -> bool:
        return self._connection.closed


@dataclass
class ObservationDelta:
    """Observable side effects a worker produced since the last sync.

    Carries everything :class:`ObservationSnapshot` covers, so the proxy can
    take snapshots *locally* — a dead worker can still be snapshotted, which
    is exactly what the fleet needs to fail a real process loss over.
    """

    records: List[Tuple[int, ViewTemplate]]
    network_entries: List[TransferLog]
    stats: Tuple[int, ...]
    queries_issued: int
    index_probe_counts: Tuple[Tuple[str, int], ...]
    tag_probe_count: int
    tag_rows_examined: int


def _worker_main(connection, server_factory, server_kwargs) -> None:
    """The member process: a command loop around one real server object."""
    channel = FrameChannel(connection)
    try:
        # Hello goes out before the server is even constructed, so a
        # mixed-version pair fails during proxy startup, not mid-workload.
        channel.send_hello()
    except Exception:
        connection.close()
        return
    server = (server_factory or CloudServer)(**server_kwargs)
    synced_views = 0
    synced_network = 0
    while True:
        try:
            message = channel.recv_message()
        except (EOFError, OSError):
            break
        except Exception:
            # Undecodable frame: the stream can no longer be trusted to be
            # aligned on frame boundaries, so stop serving.
            break
        if message is _SHUTDOWN or message is None:
            break
        method, args, kwargs = message
        try:
            if method == "register_non_sensitive_row":
                result = _register_row(server, args[0])
            else:
                result = getattr(server, method)(*args, **kwargs)
        except BaseException as error:  # ship the failure, keep serving
            try:
                channel.send_message(("error", error))
            except Exception:
                break
            continue
        # Batched observation sync: everything recorded since the last reply.
        # Restores/resets may have truncated below the synced watermark, in
        # which case the proxy performed the matching truncation itself.
        synced_views = min(synced_views, len(server.view_log))
        synced_network = min(synced_network, len(server.network.log))
        tag_index = server._tag_index
        delta = ObservationDelta(
            records=server.view_log.records_since(synced_views),
            network_entries=server.network.log[synced_network:],
            stats=server.stats.as_tuple(),
            queries_issued=server._queries_issued,
            index_probe_counts=tuple(
                (attribute, index.probe_count)
                for attribute, index in server._indexes.items()
            ),
            tag_probe_count=tag_index.probe_count if tag_index is not None else 0,
            tag_rows_examined=(
                tag_index.rows_examined if tag_index is not None else 0
            ),
        )
        synced_views = len(server.view_log)
        synced_network = len(server.network.log)
        try:
            channel.send_message(("ok", result, delta))
        except Exception:
            break
    try:
        server.close()  # releases a disk-backed store's database file
    except Exception:
        pass
    connection.close()


def _register_row(server: CloudServer, row: Row) -> None:
    """Worker-side shim for owner inserts into the shared cleartext relation.

    In-process members share the owner's relation object, so the row is
    already stored when ``register_non_sensitive_row`` runs.  A worker holds
    its own copy, so the insert must be replayed first.
    """
    relation = server._non_sensitive
    if relation is not None and row.rid not in relation:
        relation.insert(
            dict(row.values), sensitive=row.sensitive, rid=row.rid, validate=False
        )
    return server.register_non_sensitive_row(row)


def _spawn_context():
    """Prefer ``fork`` (cheap, inherits imported modules — required for
    factories defined in non-importable test modules); fall back to the
    platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def process_backend_available() -> bool:
    """Whether this platform supports process-backed members (fork start)."""
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessMemberProxy:
    """Coordinator-side stand-in for a :class:`CloudServer` in a worker process.

    Duck-types the server surface the fleet, the engine, and the harnesses
    touch.  Storage commands and queries are forwarded over the pipe; the
    observable side effects stream back in per-RPC deltas and accumulate in
    local mirrors (``view_log``, ``stats``, ``network``), so adversary,
    auditor, and parity code read member observations exactly as they would
    off an in-process server.  Unknown method calls are forwarded
    generically, which is what lets test-only members (e.g.
    ``schedule_failure`` on the fault-injecting server) be driven through
    the proxy without special cases.
    """

    #: default RPC deadline in seconds — generous on purpose: it exists to
    #: catch wedged workers, not to police slow-but-progressing batches.
    DEFAULT_RPC_TIMEOUT = 60.0

    def __init__(
        self,
        name: str,
        network_factory: Optional[Callable[[], NetworkModel]] = None,
        server_factory: Optional[Callable[..., CloudServer]] = None,
        rpc_timeout: Optional[float] = None,
        **server_kwargs,
    ):
        factory = network_factory or NetworkModel
        self.name = name
        #: per-RPC reply deadline (seconds); ``None`` restores the blocking
        #: pre-deadline behaviour (not recommended outside debugging).
        self.rpc_timeout = (
            self.DEFAULT_RPC_TIMEOUT if rpc_timeout is None else rpc_timeout
        )
        self.network = factory()  # mirror: params match the worker's model
        self.view_log = ViewLog()
        self.stats = CloudStatistics()
        self._queries_issued = 0
        self._index_probe_counts: Tuple[Tuple[str, int], ...] = ()
        self._tag_probe_count = 0
        self._tag_rows_examined = 0
        self._scheme: Optional[EncryptedSearchScheme] = None
        self._encrypted_row_count = 0
        self._closed = False
        #: serializes the request/reply exchange *and* the mirror updates it
        #: carries: the pipe is one conversation, so two threads calling into
        #: the proxy concurrently would interleave frames and read each
        #: other's replies.  Re-entrant so locked wrappers can nest ``_call``.
        self._rpc_lock = threading.RLock()

        context = _spawn_context()
        self._connection, worker_connection = context.Pipe()
        self._process = context.Process(
            target=_worker_main,
            args=(
                worker_connection,
                server_factory,
                dict(server_kwargs, name=name, network=factory()),
            ),
            daemon=True,
            name=f"repro-member-{name}",
        )
        self._process.start()
        worker_connection.close()
        self._channel = FrameChannel(self._connection)
        #: wire-byte total (both directions) at the last observation epoch;
        #: ``network.wire_bytes`` mirrors the delta past this baseline.
        self._wire_baseline = 0
        self._finalizer = weakref.finalize(
            self, _shutdown_worker, self._channel, self._process
        )
        self._await_handshake()

    def _await_handshake(self) -> None:
        """Validate the worker's hello frame before the first RPC.

        Any mismatch (or a worker that dies / stays silent) kills the worker
        and raises :class:`~repro.exceptions.ProcessMemberError` — a
        mixed-version coordinator/worker pair must fail at startup, never by
        silently misparsing frames mid-workload.
        """
        try:
            if not self._connection.poll(HANDSHAKE_TIMEOUT):
                raise ProcessMemberError(
                    f"{self.name}: no wire handshake from worker within "
                    f"{HANDSHAKE_TIMEOUT:.0f}s"
                )
            self._channel.recv_hello(self.name)
        except ProcessMemberError:
            self._abandon_worker()
            raise
        except (EOFError, OSError) as error:
            self._abandon_worker()
            raise ProcessMemberError(
                f"{self.name}: worker died before completing the wire "
                f"handshake ({error!r})"
            ) from error
        self._wire_baseline = (
            self._channel.bytes_sent + self._channel.bytes_received
        )

    # -- RPC plumbing -------------------------------------------------------------
    def _call(self, method: str, *args, **kwargs):
        return self._deadline_call(self.rpc_timeout, method, args, kwargs)

    def _deadline_call(
        self, deadline: Optional[float], method: str, args, kwargs
    ):
        with self._rpc_lock:
            return self._deadline_call_locked(deadline, method, args, kwargs)

    def _deadline_call_locked(
        self, deadline: Optional[float], method: str, args, kwargs
    ):
        if self._closed:
            if method == "process_batch":
                # the member is gone; let the fleet's failover machinery
                # route its work to replicas instead of failing the batch
                raise MemberFailure(f"{self.name}: member process is down")
            raise ProcessMemberError(f"{self.name}: member process is closed")
        try:
            self._channel.send_message((method, args, kwargs))
            if deadline is not None and not self._connection.poll(deadline):
                # Wedged (or hopelessly slow) worker.  The pipe still holds
                # our request, so any late reply could never be matched to a
                # future call — the only safe move is to abandon the worker
                # entirely and let failover re-place its work.
                self._abandon_worker()
                raise MemberTimeout(
                    f"{self.name}: no reply to {method!r} within {deadline:.1f}s; "
                    "worker abandoned"
                )
            reply = self._channel.recv_message()
        except (EOFError, OSError, BrokenPipeError) as error:
            self._closed = True
            if method == "process_batch":
                # a member process that died mid-batch is exactly the crash
                # the fleet's failover machinery exists for
                raise MemberFailure(
                    f"{self.name}: member process died while serving a batch"
                ) from error
            raise ProcessMemberError(
                f"{self.name}: member process is unreachable ({error!r})"
            ) from error
        # Bytes crossed the pipe whether the call succeeded or not.
        self._sync_wire_bytes()
        if reply[0] == "error":
            raise reply[1]
        _status, result, delta = reply
        self._apply_delta(delta)
        return result

    def _sync_wire_bytes(self) -> None:
        """Mirror the channel's transported bytes into ``network.wire_bytes``.

        The channel counters are monotonic; the mirror shows the delta since
        the last observation epoch (``reset_observations`` re-baselines, and
        crash rollback deliberately leaves the mirror alone — see
        :class:`~repro.cloud.network.NetworkModel`).
        """
        self.network.set_wire_bytes(
            (self._channel.bytes_sent + self._channel.bytes_received)
            - self._wire_baseline
        )

    def _abandon_worker(self) -> None:
        """Kill a wedged worker immediately (no graceful shutdown attempt)."""
        self._closed = True
        self._finalizer.detach()
        _shutdown_worker(self._channel, self._process, graceful=False)

    def ping(self, timeout: Optional[float] = None) -> str:
        """Liveness probe: round-trip a no-op RPC under ``timeout`` seconds.

        Returns the worker-side server's name.  Raises
        :class:`~repro.exceptions.MemberTimeout` when the worker misses the
        deadline (it is then abandoned) and
        :class:`~repro.exceptions.ProcessMemberError` when it is already
        closed or unreachable.
        """
        deadline = self.rpc_timeout if timeout is None else timeout
        return self._deadline_call(deadline, "ping", (), {})

    def _apply_delta(self, delta: ObservationDelta) -> None:
        if delta.records:
            self.view_log.extend_records(delta.records)
        if delta.network_entries:
            self.network.extend_log(delta.network_entries)
        self.stats = CloudStatistics.from_tuple(delta.stats)
        self._queries_issued = delta.queries_issued
        self._index_probe_counts = delta.index_probe_counts
        self._tag_probe_count = delta.tag_probe_count
        self._tag_rows_examined = delta.tag_rows_examined

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def remote_method(*args, **kwargs):
            return self._call(name, *args, **kwargs)

        remote_method.__name__ = name
        return remote_method

    # -- server surface -----------------------------------------------------------
    @property
    def scheme(self) -> Optional[EncryptedSearchScheme]:
        """The owner-side handle of the outsourced scheme.

        The worker holds its *own* copy (see the module docstring); this
        handle is what the fleet consults for capability flags such as
        ``concurrent_search_safe``.
        """
        return self._scheme

    @property
    def encrypted_row_count(self) -> int:
        return self._encrypted_row_count

    def store_non_sensitive(self, relation) -> None:
        self._call("store_non_sensitive", relation)

    def store_sensitive(self, encrypted_rows, scheme, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("store_sensitive", encrypted_rows, scheme, bin_assignment)
        # mirrors update only after the worker actually stored the rows
        self._scheme = scheme
        self._encrypted_row_count = len(encrypted_rows)

    def append_sensitive(self, encrypted_rows, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("append_sensitive", encrypted_rows, bin_assignment)
        self._encrypted_row_count += len(encrypted_rows)

    def receive_migrated_slice(self, encrypted_rows, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("receive_migrated_slice", encrypted_rows, bin_assignment)
        self._encrypted_row_count += len(encrypted_rows)

    def drop_sensitive_bins(self, bins) -> int:
        dropped = self._call("drop_sensitive_bins", list(bins))
        self._encrypted_row_count -= dropped
        return dropped

    def build_index(self, attribute: str) -> None:
        self._call("build_index", attribute)

    def register_non_sensitive_row(self, row: Row) -> None:
        self._call("register_non_sensitive_row", row)

    def process_batch(self, requests) -> List[QueryResponse]:
        return self._call("process_batch", list(requests))

    def process_request(self, *args, **kwargs) -> QueryResponse:
        return self._call("process_request", *args, **kwargs)

    def reset_observations(self) -> None:
        # The delta already restores the counters (the worker does not reset
        # its query-id counter or index probe counts — neither does a real
        # server); only the mirrored logs need the matching truncation.  A
        # closed member (dead or departed) has no worker to reset; clearing
        # the mirrors keeps fleet-wide resets total over tombstones.
        with self._rpc_lock:
            if not self._closed:
                self._call("reset_observations")
            else:
                # no worker left to reset and no delta coming: zero the
                # mirrored counters directly so fleet-wide aggregates stop
                # counting a gone member's past work after a reset
                self.stats = CloudStatistics()
            self.view_log.clear()
            self.network.reset()
            # New observation epoch: wire bytes mirrored from here on are
            # the bytes moved *after* this reset.
            self._wire_baseline = (
                self._channel.bytes_sent + self._channel.bytes_received
            )

    def observation_snapshot(self) -> ObservationSnapshot:
        """Snapshot the member's observations from the local mirrors.

        No RPC: the mirrors are exactly in sync with the worker at every
        wave boundary (deltas carry the index/tag counters too), and a local
        snapshot is the only kind a *dead* worker can still provide — which
        is what lets the fleet fail a real process loss over.
        """
        with self._rpc_lock:
            return ObservationSnapshot(
                view_count=len(self.view_log),
                stats=self.stats.as_tuple(),
                network_log_length=len(self.network.log),
                queries_issued=self._queries_issued,
                index_probe_counts=self._index_probe_counts,
                tag_probe_count=self._tag_probe_count,
                tag_rows_examined=self._tag_rows_examined,
            )

    def restore_observations(self, snapshot: ObservationSnapshot) -> None:
        with self._rpc_lock:
            if not self._closed:
                try:
                    self._call("restore_observations", snapshot)
                except (MemberFailure, ProcessMemberError):
                    # The worker died with its un-synced in-flight
                    # observations — the crash *is* the restore; only the
                    # mirrors need rolling back (and they never saw the lost
                    # work to begin with).
                    pass
            # The delta can only extend the mirrors; the rollback truncation
            # is replayed locally (same copy-on-write semantics as the
            # server's).
            self.view_log._truncate(snapshot.view_count)
            self.network.truncate_log(snapshot.network_log_length)
            self.stats = CloudStatistics.from_tuple(snapshot.stats)
            self._queries_issued = snapshot.queries_issued
            self._index_probe_counts = snapshot.index_probe_counts
            self._tag_probe_count = snapshot.tag_probe_count
            self._tag_rows_examined = snapshot.tag_rows_examined

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker down; the proxy keeps its mirrors readable."""
        with self._rpc_lock:
            if not self._closed:
                self._closed = True
                self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"ProcessMemberProxy({self.name!r}, {state})"


def _shutdown_worker(channel, process, graceful: bool = True) -> None:
    """Finalizer: ask the worker to exit, then make sure it did.

    Escalates SIGTERM → SIGKILL: a worker wedged in uninterruptible compute
    (or shielding itself from SIGTERM) must never outlive its proxy, so when
    the post-terminate join times out the process is killed outright.
    ``graceful=False`` skips the cooperative shutdown request — used when
    abandoning a worker already known to be wedged.
    """
    if graceful:
        try:
            channel.send_message(_SHUTDOWN)
        except Exception:
            pass
        process.join(timeout=2.0)
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - needs a SIGTERM-immune worker
        kill = getattr(process, "kill", None)
        if kill is not None:
            kill()
        process.join(timeout=2.0)
    try:
        channel.close()
    except Exception:
        pass
