"""Process-backed multi-cloud members.

The thread-backed :class:`~repro.cloud.multi_cloud.MultiCloud` divides a
batch across members, but every member still computes under the coordinator
process's GIL — CPU-bound cloud work (SSE trial decryption above all) never
actually runs in parallel.  This module provides the escape hatch:
``MultiCloud(member_backend="process")`` places each member's
:class:`~repro.cloud.server.CloudServer` in its own worker process, connected
to the coordinator by a :class:`ProcessMemberProxy` that speaks a small
pickled RPC protocol over a pipe.

Design
------
* **State affinity.**  Each member's stored relations, ciphertexts, and
  indexes live in exactly one worker process for the fleet's lifetime (a
  pool that round-robins tasks would be useless — the state *is* the
  member).  The worker is a plain command loop around a real server object,
  so every server behaviour — including test subclasses such as the
  fault-injecting server — works unchanged behind the proxy.
* **Batched observation sync.**  The coordinator must keep seeing the exact
  single-server information split: per-member adversarial views, statistics,
  and network charges.  Every RPC reply therefore carries an
  :class:`ObservationDelta` — the compact view records, transfer-log
  entries, and counter values produced since the previous sync — which the
  proxy folds into local mirrors.  Observations are synced once per batch,
  not once per query, so the IPC cost amortises exactly like the compute.
* **Crash semantics for real.**  ``observation_snapshot`` /
  ``restore_observations`` are forwarded across the boundary, so the fleet's
  wave-based failover (and the fault-injection parity harness) works
  identically for process members.  A worker process that actually dies
  (EOF on the pipe) surfaces as :class:`~repro.exceptions.MemberFailure`
  from ``process_batch`` — a genuine process loss feeds the same failover
  path the simulated crashes exercise.
* **Isolated scheme copies.**  Each worker holds its own (pickled) copy of
  the search scheme, so schemes whose cloud-side matching mutates internal
  work counters (``concurrent_search_safe = False``) are race-free under
  this backend without serialising members; their counters then tally the
  per-worker work and are not synced back to the owner's scheme object.

* **RPC deadlines.**  Every RPC waits for its reply with
  ``connection.poll(rpc_timeout)`` instead of a blocking ``recv()``, so a
  wedged-but-alive worker can hang neither a batch nor ``close()``.  A
  missed deadline raises :class:`~repro.exceptions.MemberTimeout` (a
  :class:`~repro.exceptions.MemberFailure`), feeding the fleet's ordinary
  retry/failover path, and the proxy *abandons* the worker — kills it and
  marks itself closed — because a late reply could no longer be matched to
  its request without desynchronising the pipe protocol.

The proxy raises :class:`~repro.exceptions.ProcessMemberError` when the
worker protocol itself breaks outside a batch (a dead worker during
outsourcing is a deployment error, not a servable fault).
"""

from __future__ import annotations

import multiprocessing
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.adversary.view import ViewLog, ViewTemplate
from repro.cloud.network import NetworkModel, TransferLog
from repro.cloud.server import (
    BatchRequest,
    CloudServer,
    CloudStatistics,
    ObservationSnapshot,
    QueryResponse,
)
from repro.crypto.base import EncryptedSearchScheme
from repro.data.relation import Row
from repro.exceptions import MemberFailure, MemberTimeout, ProcessMemberError

_SHUTDOWN = None  # sentinel message ending the worker loop


@dataclass
class ObservationDelta:
    """Observable side effects a worker produced since the last sync.

    Carries everything :class:`ObservationSnapshot` covers, so the proxy can
    take snapshots *locally* — a dead worker can still be snapshotted, which
    is exactly what the fleet needs to fail a real process loss over.
    """

    records: List[Tuple[int, ViewTemplate]]
    network_entries: List[TransferLog]
    stats: Tuple[int, ...]
    queries_issued: int
    index_probe_counts: Tuple[Tuple[str, int], ...]
    tag_probe_count: int
    tag_rows_examined: int


def _worker_main(connection, server_factory, server_kwargs) -> None:
    """The member process: a command loop around one real server object."""
    server = (server_factory or CloudServer)(**server_kwargs)
    synced_views = 0
    synced_network = 0
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is _SHUTDOWN or message is None:
            break
        method, args, kwargs = message
        try:
            if method == "register_non_sensitive_row":
                result = _register_row(server, args[0])
            else:
                result = getattr(server, method)(*args, **kwargs)
        except BaseException as error:  # ship the failure, keep serving
            try:
                connection.send(("error", error))
            except Exception:
                break
            continue
        # Batched observation sync: everything recorded since the last reply.
        # Restores/resets may have truncated below the synced watermark, in
        # which case the proxy performed the matching truncation itself.
        synced_views = min(synced_views, len(server.view_log))
        synced_network = min(synced_network, len(server.network.log))
        tag_index = server._tag_index
        delta = ObservationDelta(
            records=server.view_log.records_since(synced_views),
            network_entries=server.network.log[synced_network:],
            stats=server.stats.as_tuple(),
            queries_issued=server._queries_issued,
            index_probe_counts=tuple(
                (attribute, index.probe_count)
                for attribute, index in server._indexes.items()
            ),
            tag_probe_count=tag_index.probe_count if tag_index is not None else 0,
            tag_rows_examined=(
                tag_index.rows_examined if tag_index is not None else 0
            ),
        )
        synced_views = len(server.view_log)
        synced_network = len(server.network.log)
        try:
            connection.send(("ok", result, delta))
        except Exception:
            break
    try:
        server.close()  # releases a disk-backed store's database file
    except Exception:
        pass
    connection.close()


def _register_row(server: CloudServer, row: Row) -> None:
    """Worker-side shim for owner inserts into the shared cleartext relation.

    In-process members share the owner's relation object, so the row is
    already stored when ``register_non_sensitive_row`` runs.  A worker holds
    its own copy, so the insert must be replayed first.
    """
    relation = server._non_sensitive
    if relation is not None and row.rid not in relation:
        relation.insert(
            dict(row.values), sensitive=row.sensitive, rid=row.rid, validate=False
        )
    return server.register_non_sensitive_row(row)


def _spawn_context():
    """Prefer ``fork`` (cheap, inherits imported modules — required for
    factories defined in non-importable test modules); fall back to the
    platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def process_backend_available() -> bool:
    """Whether this platform supports process-backed members (fork start)."""
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessMemberProxy:
    """Coordinator-side stand-in for a :class:`CloudServer` in a worker process.

    Duck-types the server surface the fleet, the engine, and the harnesses
    touch.  Storage commands and queries are forwarded over the pipe; the
    observable side effects stream back in per-RPC deltas and accumulate in
    local mirrors (``view_log``, ``stats``, ``network``), so adversary,
    auditor, and parity code read member observations exactly as they would
    off an in-process server.  Unknown method calls are forwarded
    generically, which is what lets test-only members (e.g.
    ``schedule_failure`` on the fault-injecting server) be driven through
    the proxy without special cases.
    """

    #: default RPC deadline in seconds — generous on purpose: it exists to
    #: catch wedged workers, not to police slow-but-progressing batches.
    DEFAULT_RPC_TIMEOUT = 60.0

    def __init__(
        self,
        name: str,
        network_factory: Optional[Callable[[], NetworkModel]] = None,
        server_factory: Optional[Callable[..., CloudServer]] = None,
        rpc_timeout: Optional[float] = None,
        **server_kwargs,
    ):
        factory = network_factory or NetworkModel
        self.name = name
        #: per-RPC reply deadline (seconds); ``None`` restores the blocking
        #: pre-deadline behaviour (not recommended outside debugging).
        self.rpc_timeout = (
            self.DEFAULT_RPC_TIMEOUT if rpc_timeout is None else rpc_timeout
        )
        self.network = factory()  # mirror: params match the worker's model
        self.view_log = ViewLog()
        self.stats = CloudStatistics()
        self._queries_issued = 0
        self._index_probe_counts: Tuple[Tuple[str, int], ...] = ()
        self._tag_probe_count = 0
        self._tag_rows_examined = 0
        self._scheme: Optional[EncryptedSearchScheme] = None
        self._encrypted_row_count = 0
        self._closed = False

        context = _spawn_context()
        self._connection, worker_connection = context.Pipe()
        self._process = context.Process(
            target=_worker_main,
            args=(
                worker_connection,
                server_factory,
                dict(server_kwargs, name=name, network=factory()),
            ),
            daemon=True,
            name=f"repro-member-{name}",
        )
        self._process.start()
        worker_connection.close()
        self._finalizer = weakref.finalize(
            self, _shutdown_worker, self._connection, self._process
        )

    # -- RPC plumbing -------------------------------------------------------------
    def _call(self, method: str, *args, **kwargs):
        return self._deadline_call(self.rpc_timeout, method, args, kwargs)

    def _deadline_call(
        self, deadline: Optional[float], method: str, args, kwargs
    ):
        if self._closed:
            if method == "process_batch":
                # the member is gone; let the fleet's failover machinery
                # route its work to replicas instead of failing the batch
                raise MemberFailure(f"{self.name}: member process is down")
            raise ProcessMemberError(f"{self.name}: member process is closed")
        try:
            self._connection.send((method, args, kwargs))
            if deadline is not None and not self._connection.poll(deadline):
                # Wedged (or hopelessly slow) worker.  The pipe still holds
                # our request, so any late reply could never be matched to a
                # future call — the only safe move is to abandon the worker
                # entirely and let failover re-place its work.
                self._abandon_worker()
                raise MemberTimeout(
                    f"{self.name}: no reply to {method!r} within {deadline:.1f}s; "
                    "worker abandoned"
                )
            reply = self._connection.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            self._closed = True
            if method == "process_batch":
                # a member process that died mid-batch is exactly the crash
                # the fleet's failover machinery exists for
                raise MemberFailure(
                    f"{self.name}: member process died while serving a batch"
                ) from error
            raise ProcessMemberError(
                f"{self.name}: member process is unreachable ({error!r})"
            ) from error
        if reply[0] == "error":
            raise reply[1]
        _status, result, delta = reply
        self._apply_delta(delta)
        return result

    def _abandon_worker(self) -> None:
        """Kill a wedged worker immediately (no graceful shutdown attempt)."""
        self._closed = True
        self._finalizer.detach()
        _shutdown_worker(self._connection, self._process, graceful=False)

    def ping(self, timeout: Optional[float] = None) -> str:
        """Liveness probe: round-trip a no-op RPC under ``timeout`` seconds.

        Returns the worker-side server's name.  Raises
        :class:`~repro.exceptions.MemberTimeout` when the worker misses the
        deadline (it is then abandoned) and
        :class:`~repro.exceptions.ProcessMemberError` when it is already
        closed or unreachable.
        """
        deadline = self.rpc_timeout if timeout is None else timeout
        return self._deadline_call(deadline, "ping", (), {})

    def _apply_delta(self, delta: ObservationDelta) -> None:
        if delta.records:
            self.view_log.extend_records(delta.records)
        if delta.network_entries:
            self.network.log.extend(delta.network_entries)
        self.stats = CloudStatistics.from_tuple(delta.stats)
        self._queries_issued = delta.queries_issued
        self._index_probe_counts = delta.index_probe_counts
        self._tag_probe_count = delta.tag_probe_count
        self._tag_rows_examined = delta.tag_rows_examined

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def remote_method(*args, **kwargs):
            return self._call(name, *args, **kwargs)

        remote_method.__name__ = name
        return remote_method

    # -- server surface -----------------------------------------------------------
    @property
    def scheme(self) -> Optional[EncryptedSearchScheme]:
        """The owner-side handle of the outsourced scheme.

        The worker holds its *own* copy (see the module docstring); this
        handle is what the fleet consults for capability flags such as
        ``concurrent_search_safe``.
        """
        return self._scheme

    @property
    def encrypted_row_count(self) -> int:
        return self._encrypted_row_count

    def store_non_sensitive(self, relation) -> None:
        self._call("store_non_sensitive", relation)

    def store_sensitive(self, encrypted_rows, scheme, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("store_sensitive", encrypted_rows, scheme, bin_assignment)
        # mirrors update only after the worker actually stored the rows
        self._scheme = scheme
        self._encrypted_row_count = len(encrypted_rows)

    def append_sensitive(self, encrypted_rows, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("append_sensitive", encrypted_rows, bin_assignment)
        self._encrypted_row_count += len(encrypted_rows)

    def receive_migrated_slice(self, encrypted_rows, bin_assignment=None) -> None:
        encrypted_rows = list(encrypted_rows)
        self._call("receive_migrated_slice", encrypted_rows, bin_assignment)
        self._encrypted_row_count += len(encrypted_rows)

    def drop_sensitive_bins(self, bins) -> int:
        dropped = self._call("drop_sensitive_bins", list(bins))
        self._encrypted_row_count -= dropped
        return dropped

    def build_index(self, attribute: str) -> None:
        self._call("build_index", attribute)

    def register_non_sensitive_row(self, row: Row) -> None:
        self._call("register_non_sensitive_row", row)

    def process_batch(self, requests) -> List[QueryResponse]:
        return self._call("process_batch", list(requests))

    def process_request(self, *args, **kwargs) -> QueryResponse:
        return self._call("process_request", *args, **kwargs)

    def reset_observations(self) -> None:
        # The delta already restores the counters (the worker does not reset
        # its query-id counter or index probe counts — neither does a real
        # server); only the mirrored logs need the matching truncation.  A
        # closed member (dead or departed) has no worker to reset; clearing
        # the mirrors keeps fleet-wide resets total over tombstones.
        if not self._closed:
            self._call("reset_observations")
        else:
            # no worker left to reset and no delta coming: zero the mirrored
            # counters directly so fleet-wide aggregates stop counting a
            # gone member's past work after a reset
            self.stats = CloudStatistics()
        self.view_log.clear()
        self.network.reset()

    def observation_snapshot(self) -> ObservationSnapshot:
        """Snapshot the member's observations from the local mirrors.

        No RPC: the mirrors are exactly in sync with the worker at every
        wave boundary (deltas carry the index/tag counters too), and a local
        snapshot is the only kind a *dead* worker can still provide — which
        is what lets the fleet fail a real process loss over.
        """
        return ObservationSnapshot(
            view_count=len(self.view_log),
            stats=self.stats.as_tuple(),
            network_log_length=len(self.network.log),
            queries_issued=self._queries_issued,
            index_probe_counts=self._index_probe_counts,
            tag_probe_count=self._tag_probe_count,
            tag_rows_examined=self._tag_rows_examined,
        )

    def restore_observations(self, snapshot: ObservationSnapshot) -> None:
        if not self._closed:
            try:
                self._call("restore_observations", snapshot)
            except (MemberFailure, ProcessMemberError):
                # The worker died with its un-synced in-flight observations —
                # the crash *is* the restore; only the mirrors need rolling
                # back (and they never saw the lost work to begin with).
                pass
        # The delta can only extend the mirrors; the rollback truncation is
        # replayed locally (same copy-on-write semantics as the server's).
        self.view_log._truncate(snapshot.view_count)
        del self.network.log[snapshot.network_log_length:]
        self.stats = CloudStatistics.from_tuple(snapshot.stats)
        self._queries_issued = snapshot.queries_issued
        self._index_probe_counts = snapshot.index_probe_counts
        self._tag_probe_count = snapshot.tag_probe_count
        self._tag_rows_examined = snapshot.tag_rows_examined

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker down; the proxy keeps its mirrors readable."""
        if not self._closed:
            self._closed = True
            self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"ProcessMemberProxy({self.name!r}, {state})"


def _shutdown_worker(connection, process, graceful: bool = True) -> None:
    """Finalizer: ask the worker to exit, then make sure it did.

    Escalates SIGTERM → SIGKILL: a worker wedged in uninterruptible compute
    (or shielding itself from SIGTERM) must never outlive its proxy, so when
    the post-terminate join times out the process is killed outright.
    ``graceful=False`` skips the cooperative shutdown request — used when
    abandoning a worker already known to be wedged.
    """
    if graceful:
        try:
            connection.send(_SHUTDOWN)
        except Exception:
            pass
        process.join(timeout=2.0)
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - needs a SIGTERM-immune worker
        kill = getattr(process, "kill", None)
        if kill is not None:
            kill()
        process.join(timeout=2.0)
    try:
        connection.close()
    except Exception:
        pass
