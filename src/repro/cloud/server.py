"""The untrusted public cloud server.

A :class:`CloudServer` stores the cleartext non-sensitive relation (with
hash indexes over its searchable attributes) and the encrypted sensitive
relation (whatever the chosen :class:`~repro.crypto.base.EncryptedSearchScheme`
produced).  It answers the two halves of a partitioned query and, being
honest-but-curious, faithfully records an :class:`AdversarialView` for every
request it serves.

The server also keeps simple operation counters (rows scanned, index probes,
tuples shipped) which the benchmark harness converts into simulated times via
the cost model, so experiments do not depend on wall-clock noise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.view import AdversarialView, ViewLog
from repro.cloud.indexes import HashIndex
from repro.cloud.network import NetworkModel
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.relation import Relation, Row
from repro.exceptions import CloudError


@dataclass
class QueryResponse:
    """What the cloud ships back to the DB owner for one binned query."""

    non_sensitive_rows: List[Row]
    encrypted_rows: List[EncryptedRow]
    non_sensitive_scanned: int
    sensitive_scanned: int
    transfer_seconds: float = 0.0

    @property
    def total_returned(self) -> int:
        return len(self.non_sensitive_rows) + len(self.encrypted_rows)


@dataclass
class CloudStatistics:
    """Cumulative work counters for the cloud (feeds the cost model)."""

    queries_served: int = 0
    non_sensitive_rows_returned: int = 0
    sensitive_rows_returned: int = 0
    non_sensitive_probes: int = 0
    sensitive_tokens_processed: int = 0


class CloudServer:
    """An honest-but-curious cloud hosting one partitioned relation."""

    def __init__(
        self,
        name: str = "public-cloud",
        network: Optional[NetworkModel] = None,
        use_indexes: bool = True,
    ):
        self.name = name
        self.network = network or NetworkModel()
        self.use_indexes = use_indexes
        self._non_sensitive: Optional[Relation] = None
        self._indexes: Dict[str, HashIndex] = {}
        self._encrypted_rows: List[EncryptedRow] = []
        self._scheme: Optional[EncryptedSearchScheme] = None
        self.view_log = ViewLog()
        self.stats = CloudStatistics()
        self._query_counter = itertools.count()

    # -- outsourcing -------------------------------------------------------------
    def store_non_sensitive(self, relation: Relation) -> None:
        """Receive the cleartext non-sensitive relation from the owner."""
        self._non_sensitive = relation
        self._indexes.clear()
        self.network.record(
            "upload", f"outsource {relation.name} (cleartext)", len(relation)
        )

    def store_sensitive(
        self, encrypted_rows: Sequence[EncryptedRow], scheme: EncryptedSearchScheme
    ) -> None:
        """Receive the encrypted sensitive rows and the scheme's cloud logic.

        Only the scheme's *cloud-side* behaviour (``search``) is exercised by
        the server; the owner keeps the keys.
        """
        self._encrypted_rows = list(encrypted_rows)
        self._scheme = scheme
        self.network.record(
            "upload", "outsource sensitive relation (encrypted)", len(encrypted_rows)
        )

    def append_sensitive(self, encrypted_rows: Sequence[EncryptedRow]) -> None:
        """Receive additional encrypted rows (inserts, fake-tuple padding)."""
        self._encrypted_rows.extend(encrypted_rows)
        self.network.record("upload", "append sensitive rows", len(encrypted_rows))

    def append_non_sensitive(self, rows: Iterable[Dict[str, object]]) -> int:
        """Receive additional cleartext rows (inserts); returns count added."""
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        added = 0
        for values in rows:
            row = self._non_sensitive.insert(values, sensitive=False, validate=False)
            for index in self._indexes.values():
                index.add_row(row)
            added += 1
        self.network.record("upload", "append non-sensitive rows", added)
        return added

    def register_non_sensitive_row(self, row: Row) -> None:
        """Account for a cleartext row already present in the stored relation.

        Used when the owner inserts directly into the (shared) relation object
        and the cloud only needs to refresh its indexes and transfer log.
        """
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        if row.rid not in self._non_sensitive:
            raise CloudError(f"row {row.rid} is not part of the stored relation")
        for index in self._indexes.values():
            index.add_row(row)
        self.network.record("upload", "append non-sensitive row", 1)

    def build_index(self, attribute: str) -> None:
        """Build a hash index over the cleartext relation for ``attribute``."""
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        self._indexes[attribute] = HashIndex(self._non_sensitive, attribute)

    # -- introspection --------------------------------------------------------------
    @property
    def non_sensitive_relation(self) -> Relation:
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        return self._non_sensitive

    @property
    def encrypted_row_count(self) -> int:
        return len(self._encrypted_rows)

    @property
    def stored_encrypted_rows(self) -> Tuple[EncryptedRow, ...]:
        return tuple(self._encrypted_rows)

    # -- query processing --------------------------------------------------------
    def _select_non_sensitive(self, attribute: str, values: Sequence[object]) -> List[Row]:
        relation = self.non_sensitive_relation
        if self.use_indexes:
            if attribute not in self._indexes:
                self.build_index(attribute)
            index = self._indexes[attribute]
            rows = index.lookup_many(values)
            self.stats.non_sensitive_probes += len(values)
            return rows
        self.stats.non_sensitive_probes += len(values)
        return relation.select_in(attribute, values)

    def process_request(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        tokens: Sequence[SearchToken],
        sensitive_bin_index: Optional[int] = None,
        non_sensitive_bin_index: Optional[int] = None,
    ) -> QueryResponse:
        """Serve one partitioned request (both halves) and log the view.

        Parameters mirror what actually travels over the wire: the cleartext
        values of the non-sensitive bin and the opaque tokens of the sensitive
        bin.  Bin indexes are accepted purely to annotate the recorded view
        for later analysis; the adversary could recover them by grouping
        identical requests.
        """
        query_id = next(self._query_counter)

        non_sensitive_rows = (
            self._select_non_sensitive(attribute, cleartext_values)
            if cleartext_values
            else []
        )

        encrypted_matches: List[EncryptedRow] = []
        if tokens:
            if self._scheme is None:
                raise CloudError("no sensitive relation outsourced yet")
            encrypted_matches = self._scheme.search(self._encrypted_rows, tokens)
            self.stats.sensitive_tokens_processed += len(tokens)

        transfer_seconds = self.network.record(
            "download",
            f"query {query_id} results",
            len(non_sensitive_rows) + len(encrypted_matches),
        )

        self.stats.queries_served += 1
        self.stats.non_sensitive_rows_returned += len(non_sensitive_rows)
        self.stats.sensitive_rows_returned += len(encrypted_matches)

        self.view_log.append(
            AdversarialView(
                query_id=query_id,
                attribute=attribute,
                non_sensitive_request=tuple(cleartext_values),
                sensitive_request_size=len(tokens),
                returned_non_sensitive=tuple(non_sensitive_rows),
                returned_sensitive_rids=tuple(row.rid for row in encrypted_matches),
                sensitive_bin_index=sensitive_bin_index,
                non_sensitive_bin_index=non_sensitive_bin_index,
            )
        )

        return QueryResponse(
            non_sensitive_rows=non_sensitive_rows,
            encrypted_rows=encrypted_matches,
            non_sensitive_scanned=len(cleartext_values),
            sensitive_scanned=len(self._encrypted_rows) if tokens else 0,
            transfer_seconds=transfer_seconds,
        )

    def reset_observations(self) -> None:
        """Clear adversarial views and counters (between experiments)."""
        self.view_log.clear()
        self.stats = CloudStatistics()
        self.network.reset()
