"""The untrusted public cloud server.

A :class:`CloudServer` stores the cleartext non-sensitive relation (with
hash indexes over its searchable attributes) and the encrypted sensitive
relation (whatever the chosen :class:`~repro.crypto.base.EncryptedSearchScheme`
produced).  It answers the two halves of a partitioned query and, being
honest-but-curious, faithfully records an :class:`AdversarialView` for every
request it serves.

The sensitive half is served through whichever of three paths applies, in
decreasing order of preference:

1. an :class:`~repro.cloud.indexes.EncryptedTagIndex` when the scheme's rows
   carry stable search keys (``supports_tag_index``) — index probes, no scan;
2. the *bin-addressed store*: when the owner supplies the sensitive bin
   assignment at outsourcing time, rows are grouped by bin so a bin retrieval
   scans exactly one bin's slice, never the whole relation;
3. the linear scan over all ciphertexts (``scheme.search``), the fallback and
   the reference semantics the other two paths must reproduce exactly.

Interned retrievals
-------------------
QB workloads are repetitive by construction: every value of a bin pair maps
to the *same* request.  The server therefore interns one
:class:`_Retrieval` — the computed result rows, the prebuilt
:class:`QueryResponse`, and the prebuilt
:class:`~repro.adversary.view.ViewTemplate` — per distinct request, keyed by
the request itself, and serves every repeat from it.  Serving a steady-state
cache-hit query then does near-zero allocation: one dict probe, a handful of
counter increments, one network-log entry, and one compact view-log record.
The cache is dropped whenever stored data changes (outsourcing, appends,
inserts), so cached retrievals can never go stale.

Interning never merges queries' observable effects: each request still
produces its own query id, adversarial view, ``CloudStatistics`` and
index-counter increments, and network transfer, exactly as if computed from
scratch — the cache-hit path re-applies the counters the skipped compute
would have produced.  Only scheme-internal work counters (e.g. Paillier's
``homomorphic_ops``) reflect the deduplicated compute: they count
cryptographic operations actually performed.

The server also keeps simple operation counters (rows scanned, index probes,
tuples shipped) which the benchmark harness converts into simulated times via
the cost model, so experiments do not depend on wall-clock noise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.view import AdversarialView, ViewLog, ViewTemplate
from repro.cloud.indexes import HashIndex
from repro.cloud.network import NetworkModel
from repro.cloud.storage import StorageBackend, make_storage_backend
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.relation import Relation, Row
from repro.exceptions import CloudError


@dataclass
class QueryResponse:
    """What the cloud ships back to the DB owner for one binned query."""

    non_sensitive_rows: List[Row]
    encrypted_rows: List[EncryptedRow]
    non_sensitive_scanned: int
    sensitive_scanned: int
    transfer_seconds: float = 0.0

    @property
    def total_returned(self) -> int:
        return len(self.non_sensitive_rows) + len(self.encrypted_rows)


@dataclass
class CloudStatistics:
    """Cumulative work counters for the cloud (feeds the cost model)."""

    queries_served: int = 0
    non_sensitive_rows_returned: int = 0
    sensitive_rows_returned: int = 0
    non_sensitive_probes: int = 0
    sensitive_tokens_processed: int = 0
    #: encrypted rows actually examined while answering sensitive sub-queries
    #: (= relation size per query under a linear scan; far less when the tag
    #: index or the bin-addressed store applies).
    sensitive_rows_scanned: int = 0

    def as_tuple(self) -> Tuple[int, ...]:
        """The counters as a plain tuple (cheap snapshotting)."""
        return (
            self.queries_served,
            self.non_sensitive_rows_returned,
            self.sensitive_rows_returned,
            self.non_sensitive_probes,
            self.sensitive_tokens_processed,
            self.sensitive_rows_scanned,
        )

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "CloudStatistics":
        return cls(*values)


@dataclass(frozen=True)
class ObservationSnapshot:
    """A point-in-time capture of a server's observable side effects.

    Taken at the start of a batch and restored when the member crashes
    mid-batch: a crashed server loses the volatile state of its in-flight
    work (views buffered, counters bumped, transfers half-logged), which is
    exactly what lets a failover re-serve the batch on a replica without
    double-counting the lost attempt.  Only *observations* are covered —
    stored relations and indexes are durable and survive the restore.

    The snapshot is copy-on-write: it stores plain integers only — log
    *lengths* rather than log copies, counter values rather than counter
    objects — so taking one is O(#indexes) regardless of how many views or
    transfers the server has accumulated.  The append-only logs themselves
    are the shared state; the only write a restore performs is truncating
    them back to the recorded lengths.  The fault-tolerance path takes one
    snapshot per member per wave, so this must stay cheap even when nothing
    fails.
    """

    view_count: int
    stats: Tuple[int, ...]
    network_log_length: int
    queries_issued: int
    index_probe_counts: Tuple[Tuple[str, int], ...]
    tag_probe_count: int
    tag_rows_examined: int


@dataclass(frozen=True)
class BatchRequest:
    """One partitioned request inside a :meth:`CloudServer.process_batch` call.

    Mirrors the parameters of :meth:`CloudServer.process_request`; values and
    tokens are tuples so the server can intern retrievals per distinct
    request.  Requests are picklable wire types: a multi-cloud fleet ships
    them to process-backed members, so they must carry no live references to
    server state.  Hashes and the two half-requests are cached on the
    instance (bins repeat, so the same request object is hashed and split
    many times) but excluded from pickles.
    """

    attribute: str
    cleartext_values: Tuple[object, ...] = ()
    tokens: Tuple[SearchToken, ...] = ()
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    # -- sharded execution protocol ------------------------------------------
    #
    # Multi-cloud placement never ships a whole request to one server: the
    # encrypted half and the cleartext half are served by *different*
    # members, so no single server's view associates a sensitive bin with a
    # non-sensitive bin.  Each half deliberately drops the other side's bin
    # annotation — a server that never receives the other half has no way to
    # reconstruct it, and the recorded views must reflect that.

    @property
    def has_sensitive_half(self) -> bool:
        return bool(self.tokens)

    @property
    def has_non_sensitive_half(self) -> bool:
        return bool(self.cleartext_values)

    def sensitive_half(self) -> "BatchRequest":
        """The token half as shipped to the server owning the sensitive bin."""
        half = self.__dict__.get("_sensitive_half")
        if half is None:
            if not self.cleartext_values and self.non_sensitive_bin_index is None:
                half = self  # already a pure token half
            else:
                half = BatchRequest(
                    attribute=self.attribute,
                    cleartext_values=(),
                    tokens=self.tokens,
                    sensitive_bin_index=self.sensitive_bin_index,
                    non_sensitive_bin_index=None,
                )
            object.__setattr__(self, "_sensitive_half", half)
        return half

    def non_sensitive_half(self) -> "BatchRequest":
        """The cleartext half as shipped to a non-colluding second server."""
        half = self.__dict__.get("_non_sensitive_half")
        if half is None:
            if not self.tokens and self.sensitive_bin_index is None:
                half = self  # already a pure cleartext half
            else:
                half = BatchRequest(
                    attribute=self.attribute,
                    cleartext_values=self.cleartext_values,
                    tokens=(),
                    sensitive_bin_index=None,
                    non_sensitive_bin_index=self.non_sensitive_bin_index,
                )
            object.__setattr__(self, "_non_sensitive_half", half)
        return half

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.attribute,
                    self.cleartext_values,
                    self.tokens,
                    self.sensitive_bin_index,
                    self.non_sensitive_bin_index,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_sensitive_half", None)
        state.pop("_non_sensitive_half", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass
class _Retrieval:
    """One distinct request's interned compute results and observables.

    ``response`` and ``view_template`` are shared by every query served from
    this retrieval; consumers treat responses as read-only (the engine keys
    its decryption cache on the *identity* of ``response.encrypted_rows``,
    which is exactly what makes the sharing useful).
    """

    response: QueryResponse
    view_template: ViewTemplate
    cleartext_value_count: int
    token_count: int
    sensitive_scanned: int


class CloudServer:
    """An honest-but-curious cloud hosting one partitioned relation."""

    def __init__(
        self,
        name: str = "public-cloud",
        network: Optional[NetworkModel] = None,
        use_indexes: bool = True,
        use_encrypted_indexes: bool = True,
        storage_backend: object = "memory",
        storage_dir: Optional[str] = None,
    ):
        """``storage_backend`` selects where the encrypted stores live:
        ``"memory"`` (the historical dict/list stores) or ``"sqlite"`` (a
        per-member WAL-mode database file, placed under ``storage_dir`` or
        the system temp dir, removed when the server is closed or
        collected).  An already built
        :class:`~repro.cloud.storage.StorageBackend` is also accepted."""
        self.name = name
        self.network = network or NetworkModel()
        self.use_indexes = use_indexes
        #: gates both the tag index and the bin-addressed store; turning it
        #: off forces the linear-scan reference path (benchmark baseline).
        self.use_encrypted_indexes = use_encrypted_indexes
        #: the encrypted stores — rows, tag index, bin store, and the
        #: rid → sensitive bin assignment slice migration reads — all live
        #: behind this backend.
        self.storage: StorageBackend = make_storage_backend(
            storage_backend, member_name=name, directory=storage_dir
        )
        self._non_sensitive: Optional[Relation] = None
        self._indexes: Dict[str, HashIndex] = {}
        self._encrypted_rows_snapshot: Optional[Tuple[EncryptedRow, ...]] = None
        self._scheme: Optional[EncryptedSearchScheme] = None
        self.view_log = ViewLog()
        self.stats = CloudStatistics()
        self._queries_issued = 0
        #: request → interned retrieval; dropped whenever stored data changes
        self._retrievals: Dict[BatchRequest, _Retrieval] = {}
        #: half-level interning under the pair-level cache above: distinct
        #: bin *pairs* share halves (one sensitive bin associates with many
        #: non-sensitive bins and vice versa), so a pair miss reuses any
        #: half already computed for another pair instead of re-probing /
        #: re-searching it.  Keyed by the request content (value tuple /
        #: (bin, tokens)) — pure memoization of deterministic lookups, with
        #: the skipped counters re-charged so accounting stays identical.
        self._ns_half_cache: Dict[Tuple, List[Row]] = {}
        self._s_half_cache: Dict[Tuple, Tuple[List[EncryptedRow], int]] = {}
        #: serializes every observable transition — serving, mutation, cache
        #: invalidation, snapshot/restore — so concurrent sessions (service
        #: tenants, fleet failover, lifecycle migration) see each request's
        #: side effects (query id, view record, counters, transfer entry)
        #: land atomically.  Re-entrant because batch serving and migration
        #: helpers nest locked calls.
        self._lock = threading.RLock()

    # -- storage introspection (tests and the process-member worker read these) ----
    @property
    def _tag_index(self):
        """The live tag index object (``None`` when the scheme has none)."""
        return self.storage.tag_index

    @property
    def _bin_store(self) -> Optional[Dict[int, List[EncryptedRow]]]:
        """The bin-addressed store as a dict view (``None`` when absent)."""
        return self.storage.bin_store_view()

    @property
    def _bin_assignment(self) -> Dict[int, int]:
        """The rid → sensitive-bin assignment as a dict view."""
        return self.storage.bin_assignment_view()

    def _invalidate_retrievals(self) -> None:
        """Drop interned retrievals after any stored-data mutation."""
        self._retrievals.clear()
        self._ns_half_cache.clear()
        self._s_half_cache.clear()

    def invalidate_retrievals(self) -> None:
        """Public cache flush (benchmarks restoring the cold-compute regime).

        Dropping the interned retrievals is always safe — the next serve of
        each request recomputes and re-interns it — and is how the
        throughput benchmarks measure the compute-bound regime (every
        distinct request re-scanned per measured pass) instead of the
        fixed-cost floor a warm cache settles into.
        """
        with self._lock:
            self._invalidate_retrievals()

    # -- outsourcing -------------------------------------------------------------
    def store_non_sensitive(self, relation: Relation) -> None:
        """Receive the cleartext non-sensitive relation from the owner."""
        with self._lock:
            self._non_sensitive = relation
            self._indexes.clear()
            self._invalidate_retrievals()
            self.network.record(
                "upload", f"outsource {relation.name} (cleartext)", len(relation)
            )

    def store_sensitive(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Receive the encrypted sensitive rows and the scheme's cloud logic.

        Only the scheme's *cloud-side* behaviour (``search``) is exercised by
        the server; the owner keeps the keys.

        ``bin_assignment`` (rid → sensitive bin index) is the optional hint a
        Query Binning owner sends along: it lets the cloud group ciphertexts
        by bin so each bin retrieval scans one slice instead of the whole
        relation.  The grouping reveals nothing new — bin membership is
        exactly what the adversary reconstructs from repeated retrievals.

        When a tag index is built, ingest derives every row's index key
        through the scheme's batch hook
        (:meth:`~repro.crypto.base.EncryptedSearchScheme.index_keys`), so
        outsourcing pays one amortised key pass rather than a per-row call.
        """
        encrypted_rows = list(encrypted_rows)
        with self._lock:
            self._encrypted_rows_snapshot = None
            self._scheme = scheme
            self._invalidate_retrievals()
            self.storage.reset(
                encrypted_rows,
                scheme,
                bin_assignment,
                build_tag_index=(
                    self.use_encrypted_indexes and scheme.supports_tag_index
                ),
                build_bin_store=(
                    self.use_encrypted_indexes
                    and not scheme.supports_tag_index
                    and bin_assignment is not None
                ),
            )
            self.network.record(
                "upload",
                "outsource sensitive relation (encrypted)",
                len(encrypted_rows),
            )

    def append_sensitive(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Receive additional encrypted rows (inserts, fake-tuple padding)."""
        with self._lock:
            self._append_rows(encrypted_rows, bin_assignment)
            self.network.record(
                "upload", "append sensitive rows", len(encrypted_rows)
            )

    def receive_migrated_slice(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Install bin slices copied over from another member.

        Storage semantics are exactly :meth:`append_sensitive`; the transfer
        is charged to the member-to-member ``"migration-in"`` direction so
        owner-upload accounting (and its parity comparisons) never absorbs
        re-replication traffic.
        """
        with self._lock:
            self._append_rows(encrypted_rows, bin_assignment)
            self.network.record(
                "migration-in", "install migrated bin slices", len(encrypted_rows)
            )

    def _append_rows(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]],
    ) -> None:
        self._encrypted_rows_snapshot = None
        self._invalidate_retrievals()
        self.storage.append(encrypted_rows, bin_assignment)

    def append_non_sensitive(self, rows: Iterable[Dict[str, object]]) -> int:
        """Receive additional cleartext rows (inserts); returns count added."""
        with self._lock:
            if self._non_sensitive is None:
                raise CloudError("no non-sensitive relation outsourced yet")
            added = 0
            for values in rows:
                row = self._non_sensitive.insert(
                    values, sensitive=False, validate=False
                )
                for index in self._indexes.values():
                    index.add_row(row)
                added += 1
            self._invalidate_retrievals()
            self.network.record("upload", "append non-sensitive rows", added)
            return added

    def register_non_sensitive_row(self, row: Row) -> None:
        """Account for a cleartext row already present in the stored relation.

        Used when the owner inserts directly into the (shared) relation object
        and the cloud only needs to refresh its indexes and transfer log.
        """
        with self._lock:
            if self._non_sensitive is None:
                raise CloudError("no non-sensitive relation outsourced yet")
            if row.rid not in self._non_sensitive:
                raise CloudError(
                    f"row {row.rid} is not part of the stored relation"
                )
            for index in self._indexes.values():
                index.add_row(row)
            self._invalidate_retrievals()
            self.network.record("upload", "append non-sensitive row", 1)

    def build_index(self, attribute: str) -> None:
        """Build a hash index over the cleartext relation for ``attribute``."""
        with self._lock:
            if self._non_sensitive is None:
                raise CloudError("no non-sensitive relation outsourced yet")
            self._indexes[attribute] = HashIndex(self._non_sensitive, attribute)

    # -- slice migration ------------------------------------------------------------
    #
    # Elastic-fleet support: membership changes move bin *slices* between
    # members instead of re-outsourcing the world.  The three methods below
    # are the per-member primitives the fleet lifecycle manager composes:
    # report what is stored, read a slice out, drop a slice that moved away.
    # ``None`` stands for the pseudo-bin of rows the owner never placed.

    def stored_sensitive_bins(self) -> Dict[Optional[int], int]:
        """Stored row count per sensitive bin (``None`` = unassigned rows)."""
        with self._lock:
            return self.storage.bin_counts()

    def sensitive_slice(
        self, bins: Sequence[Optional[int]]
    ) -> Tuple[List[EncryptedRow], Dict[int, int]]:
        """The stored rows of ``bins`` (storage order) plus their bin map.

        Storage order within each bin is identical on every replica (pinned
        by the replicated-storage tests), so a slice read from *any* chain
        member re-creates the bin bit-identically on its destination.  Over
        a SQLite backend this is one keyed ``SELECT`` against the bin index,
        not a Python row loop.
        """
        with self._lock:
            rows, assignment = self.storage.slice_bins(bins)
            self.network.record(
                "migration-out", f"read {len(set(bins))} bin slices", len(rows)
            )
            return rows, assignment

    def drop_sensitive_bins(self, bins: Sequence[Optional[int]]) -> int:
        """Remove the slices of ``bins`` this member no longer owns.

        The backend maintains its derived structures (tag index, bin store)
        over the surviving rows; index work counters carry over so
        observation accounting never runs backwards.  Returns the number of
        rows dropped.  Over a SQLite backend the whole drop is one keyed
        ``DELETE`` transaction.
        """
        with self._lock:
            dropped = self.storage.drop_bins(bins)
            if not dropped:
                return 0
            self._encrypted_rows_snapshot = None
            self._invalidate_retrievals()
            self.network.record(
                "migration-drop", f"drop {len(set(bins))} bin slices", dropped
            )
            return dropped

    def close(self) -> None:
        """Release storage resources (a SQLite backend's database file)."""
        self.storage.close()

    def ping(self, timeout: Optional[float] = None) -> str:
        """Liveness probe; an in-process server is alive by construction.

        ``timeout`` is accepted (and ignored) so fleet health probes can call
        every member uniformly — only the process-backed proxy can actually
        enforce a deadline.
        """
        return self.name

    # -- introspection --------------------------------------------------------------
    @property
    def non_sensitive_relation(self) -> Relation:
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        return self._non_sensitive

    @property
    def encrypted_row_count(self) -> int:
        return self.storage.row_count()

    @property
    def scheme(self) -> Optional[EncryptedSearchScheme]:
        """The outsourced scheme's cloud-side logic (``None`` before setup)."""
        return self._scheme

    @property
    def stored_encrypted_rows(self) -> Tuple[EncryptedRow, ...]:
        """The encrypted relation in storage order (cached between mutations)."""
        with self._lock:
            if self._encrypted_rows_snapshot is None:
                self._encrypted_rows_snapshot = tuple(self.storage.all_rows())
            return self._encrypted_rows_snapshot

    # -- query processing --------------------------------------------------------
    def _select_non_sensitive(self, attribute: str, values: Sequence[object]) -> List[Row]:
        relation = self.non_sensitive_relation
        if self.use_indexes:
            if attribute not in self._indexes:
                self.build_index(attribute)
            index = self._indexes[attribute]
            rows = index.lookup_many(values)
            self.stats.non_sensitive_probes += len(values)
            return rows
        self.stats.non_sensitive_probes += len(values)
        return relation.select_in(attribute, values)

    def _search_sensitive(
        self, tokens: Sequence[SearchToken], sensitive_bin_index: Optional[int]
    ) -> Tuple[List[EncryptedRow], int]:
        """Serve the sensitive half; returns (matches, rows examined).

        Prefers the tag index, then the bin-addressed store, then the linear
        scan.  All three paths run the scheme's *batched* hot loop when it
        has one (``supports_batch``): ``indexed_search`` probes the index
        once for the whole token list via ``probe_many``, and ``search``
        over a bin slice is one vectorized pass (e.g. SSE trial decryption
        with per-token HMAC templates) instead of a per-(row, token) scalar
        loop.  The batch paths are observably identical to the scalar ones —
        same matches, same probe/rows-examined counters — so none of this is
        visible to the adversary or the parity harnesses.

        All three paths return the same rows (parity is covered by tests);
        only the number of rows examined differs.
        """
        scheme = self._scheme
        if scheme is None:
            raise CloudError("no sensitive relation outsourced yet")
        storage = self.storage
        tag_index = storage.tag_index
        if tag_index is not None:
            examined_before = tag_index.rows_examined
            matches = scheme.indexed_search(tag_index, tokens)
            return matches, tag_index.rows_examined - examined_before
        if storage.has_bin_store and sensitive_bin_index is not None:
            candidates = storage.bin_candidates(sensitive_bin_index)
            return scheme.search(candidates, tokens), len(candidates)
        rows = storage.all_rows()
        return scheme.search(rows, tokens), len(rows)

    def _charge_cached_non_sensitive(self, attribute: str, count: int) -> None:
        """Replicate the counters a cache-served cleartext lookup skips."""
        self.stats.non_sensitive_probes += count
        if self.use_indexes and attribute in self._indexes:
            self._indexes[attribute].probe_count += count

    def _charge_cached_sensitive(self, token_count: int, rows_scanned: int) -> None:
        """Replicate the counters a cache-served encrypted search skips."""
        if self._tag_index is not None:
            self._tag_index.probe_count += token_count
            self._tag_index.rows_examined += rows_scanned

    def _compute_retrieval(self, request: BatchRequest) -> _Retrieval:
        """Run one distinct request's real compute and intern the results.

        Halves are interned one level below the pair-level cache: the
        cleartext selection is a deterministic function of (attribute,
        value tuple) and the encrypted search of (bin, token tuple), so a
        pair miss whose half was already computed for *another* pair reuses
        it.  The reuse charges the same probe/scan counters the fresh
        compute would have (via the ``_charge_cached_*`` helpers the
        pair-level cache already uses), so interning depth is invisible in
        the adversarial accounting; only scheme-internal crypto-op tallies
        reflect it, exactly as documented on :meth:`process_batch`.
        """
        non_sensitive_rows: List[Row] = []
        if request.cleartext_values:
            ns_key = (request.attribute, request.cleartext_values)
            cached_ns = self._ns_half_cache.get(ns_key)
            if cached_ns is None:
                non_sensitive_rows = self._select_non_sensitive(
                    request.attribute, request.cleartext_values
                )
                self._ns_half_cache[ns_key] = non_sensitive_rows
            else:
                non_sensitive_rows = cached_ns
                self._charge_cached_non_sensitive(
                    request.attribute, len(request.cleartext_values)
                )

        encrypted_matches: List[EncryptedRow] = []
        sensitive_scanned = 0
        if request.tokens:
            s_key = (request.sensitive_bin_index, request.tokens)
            cached_s = self._s_half_cache.get(s_key)
            if cached_s is None:
                encrypted_matches, sensitive_scanned = self._search_sensitive(
                    request.tokens, request.sensitive_bin_index
                )
                self._s_half_cache[s_key] = (encrypted_matches, sensitive_scanned)
            else:
                encrypted_matches, sensitive_scanned = cached_s
                self._charge_cached_sensitive(len(request.tokens), sensitive_scanned)

        total_returned = len(non_sensitive_rows) + len(encrypted_matches)
        response = QueryResponse(
            non_sensitive_rows=non_sensitive_rows,
            encrypted_rows=encrypted_matches,
            non_sensitive_scanned=len(request.cleartext_values),
            sensitive_scanned=sensitive_scanned,
            # deterministic: depends only on the (fixed) returned tuple count
            transfer_seconds=self.network.transfer_seconds(total_returned),
        )
        view_template = ViewTemplate(
            attribute=request.attribute,
            non_sensitive_request=request.cleartext_values,
            sensitive_request_size=len(request.tokens),
            returned_non_sensitive=tuple(non_sensitive_rows),
            returned_sensitive_rids=tuple([row.rid for row in encrypted_matches]),
            sensitive_bin_index=request.sensitive_bin_index,
            non_sensitive_bin_index=request.non_sensitive_bin_index,
        )
        return _Retrieval(
            response=response,
            view_template=view_template,
            cleartext_value_count=len(request.cleartext_values),
            token_count=len(request.tokens),
            sensitive_scanned=sensitive_scanned,
        )

    def _serve(self, request: BatchRequest) -> QueryResponse:
        """Serve one request through the interned-retrieval hot path.

        Every query — cache hit or miss — gets its own query id, view-log
        record, statistics increments, and network transfer entry; only the
        *compute* (index probes, scans, scheme matching, tuple building) is
        shared between repeats of the same request.

        The whole serve — id allocation, compute-or-intern, counter bumps,
        transfer entry, view record — happens under the server lock, so a
        concurrent mutation can never clear a cache this request is reading
        and every query's observables land as one atomic unit.
        """
        with self._lock:
            return self._serve_locked(request)

    def _serve_locked(self, request: BatchRequest) -> QueryResponse:
        query_id = self._queries_issued
        self._queries_issued += 1

        retrieval = self._retrievals.get(request)
        if retrieval is None:
            retrieval = self._compute_retrieval(request)
            self._retrievals[request] = retrieval
        else:
            # Charge the per-query counters the skipped compute would have
            # produced, so interning is invisible in the accounting.
            if retrieval.cleartext_value_count:
                self._charge_cached_non_sensitive(
                    request.attribute, retrieval.cleartext_value_count
                )
            if retrieval.token_count:
                self._charge_cached_sensitive(
                    retrieval.token_count, retrieval.sensitive_scanned
                )

        stats = self.stats
        if retrieval.token_count:
            stats.sensitive_rows_scanned += retrieval.sensitive_scanned
            stats.sensitive_tokens_processed += retrieval.token_count

        response = retrieval.response
        self.network.record(
            "download", "query results", response.total_returned
        )

        stats.queries_served += 1
        stats.non_sensitive_rows_returned += len(response.non_sensitive_rows)
        stats.sensitive_rows_returned += len(response.encrypted_rows)

        self.view_log.record(query_id, retrieval.view_template)
        return response

    def serve(self, request: BatchRequest) -> QueryResponse:
        """Serve one prebuilt request object (the no-rewrap single-query path).

        Equivalent to :meth:`process_request` but takes the engine's interned
        :class:`BatchRequest` directly, so a steady-state sequential query
        allocates no fresh tuples on its way to the interned retrieval.
        """
        return self._serve(request)

    def process_request(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        tokens: Sequence[SearchToken],
        sensitive_bin_index: Optional[int] = None,
        non_sensitive_bin_index: Optional[int] = None,
    ) -> QueryResponse:
        """Serve one partitioned request (both halves) and log the view.

        Parameters mirror what actually travels over the wire: the cleartext
        values of the non-sensitive bin and the opaque tokens of the sensitive
        bin.  Bin indexes serve two roles: they annotate the recorded view
        for later analysis (the adversary could recover them by grouping
        identical requests), and they address the bin-addressed store when
        the scheme has no indexable tags.
        """
        return self._serve(
            BatchRequest(
                attribute=attribute,
                cleartext_values=tuple(cleartext_values),
                tokens=tuple(tokens),
                sensitive_bin_index=sensitive_bin_index,
                non_sensitive_bin_index=non_sensitive_bin_index,
            )
        )

    def process_batch(self, requests: Sequence[BatchRequest]) -> List[QueryResponse]:
        """Serve many requests, computing each distinct retrieval only once.

        QB workloads are heavily repetitive — every value of a bin pair maps
        to the *same* request — so the interned-retrieval cache serves
        repeats (within this batch, across batches, and across the sequential
        path alike) without recomputing the lookup or the encrypted search.
        Deduplication never merges queries' observable effects: each request
        still produces its own query id, adversarial view,
        ``CloudStatistics`` and index-counter increments, and network
        transfer, exactly as if served from scratch.  Only the compute is
        shared, so counters *inside* a scheme that tally cryptographic
        operations actually performed will reflect the deduplication.

        The lock is taken once for the whole batch, so a batch's query ids
        (and its adversarial-view order) stay contiguous even when other
        sessions are serving concurrently.
        """
        with self._lock:
            serve = self._serve_locked
            return [serve(request) for request in requests]

    def reset_observations(self) -> None:
        """Clear adversarial views and counters (between experiments)."""
        with self._lock:
            self.view_log.clear()
            self.stats = CloudStatistics()
            self.network.reset()

    # -- crash semantics -----------------------------------------------------------
    def observation_snapshot(self) -> ObservationSnapshot:
        """Capture the server's observable side effects (see the snapshot doc)."""
        with self._lock:
            return ObservationSnapshot(
                view_count=len(self.view_log),
                stats=self.stats.as_tuple(),
                network_log_length=len(self.network.log),
                queries_issued=self._queries_issued,
                index_probe_counts=tuple(
                    (attribute, index.probe_count)
                    for attribute, index in self._indexes.items()
                ),
                tag_probe_count=(
                    self._tag_index.probe_count if self._tag_index is not None else 0
                ),
                tag_rows_examined=(
                    self._tag_index.rows_examined
                    if self._tag_index is not None
                    else 0
                ),
            )

    def restore_observations(self, snapshot: ObservationSnapshot) -> None:
        """Roll observable side effects back to ``snapshot``.

        Models a member crash: everything the member buffered for the
        in-flight batch — views, statistics, network log entries, index
        counters, the query-id counter — is lost with the process, leaving
        only the state that existed when the batch started.  Durable storage
        (relations, ciphertexts, indexes' contents) is untouched.
        """
        with self._lock:
            del self.view_log.views[snapshot.view_count:]
            self.stats = CloudStatistics.from_tuple(snapshot.stats)
            self.network.truncate_log(snapshot.network_log_length)
            self._queries_issued = snapshot.queries_issued
            for attribute, probe_count in snapshot.index_probe_counts:
                if attribute in self._indexes:
                    self._indexes[attribute].probe_count = probe_count
            if self._tag_index is not None:
                self._tag_index.probe_count = snapshot.tag_probe_count
                self._tag_index.rows_examined = snapshot.tag_rows_examined
