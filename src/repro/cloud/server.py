"""The untrusted public cloud server.

A :class:`CloudServer` stores the cleartext non-sensitive relation (with
hash indexes over its searchable attributes) and the encrypted sensitive
relation (whatever the chosen :class:`~repro.crypto.base.EncryptedSearchScheme`
produced).  It answers the two halves of a partitioned query and, being
honest-but-curious, faithfully records an :class:`AdversarialView` for every
request it serves.

The sensitive half is served through whichever of three paths applies, in
decreasing order of preference:

1. an :class:`~repro.cloud.indexes.EncryptedTagIndex` when the scheme's rows
   carry stable search keys (``supports_tag_index``) — index probes, no scan;
2. the *bin-addressed store*: when the owner supplies the sensitive bin
   assignment at outsourcing time, rows are grouped by bin so a bin retrieval
   scans exactly one bin's slice, never the whole relation;
3. the linear scan over all ciphertexts (``scheme.search``), the fallback and
   the reference semantics the other two paths must reproduce exactly.

:meth:`CloudServer.process_batch` serves many requests in one call, computing
each distinct retrieval once while still recording one adversarial view and
one set of statistics increments per query — batching changes *work*, never
the observable view or the cloud's per-query accounting (``CloudStatistics``,
index counters, network log).  Scheme-internal work counters (e.g. Paillier's
``homomorphic_ops``) intentionally reflect the deduplicated compute: they
count cryptographic operations actually performed.

The server also keeps simple operation counters (rows scanned, index probes,
tuples shipped) which the benchmark harness converts into simulated times via
the cost model, so experiments do not depend on wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.view import AdversarialView, ViewLog
from repro.cloud.indexes import EncryptedTagIndex, HashIndex
from repro.cloud.network import NetworkModel
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme, SearchToken
from repro.data.relation import Relation, Row
from repro.exceptions import CloudError


@dataclass
class QueryResponse:
    """What the cloud ships back to the DB owner for one binned query."""

    non_sensitive_rows: List[Row]
    encrypted_rows: List[EncryptedRow]
    non_sensitive_scanned: int
    sensitive_scanned: int
    transfer_seconds: float = 0.0

    @property
    def total_returned(self) -> int:
        return len(self.non_sensitive_rows) + len(self.encrypted_rows)


@dataclass
class CloudStatistics:
    """Cumulative work counters for the cloud (feeds the cost model)."""

    queries_served: int = 0
    non_sensitive_rows_returned: int = 0
    sensitive_rows_returned: int = 0
    non_sensitive_probes: int = 0
    sensitive_tokens_processed: int = 0
    #: encrypted rows actually examined while answering sensitive sub-queries
    #: (= relation size per query under a linear scan; far less when the tag
    #: index or the bin-addressed store applies).
    sensitive_rows_scanned: int = 0


@dataclass(frozen=True)
class ObservationSnapshot:
    """A point-in-time capture of a server's observable side effects.

    Taken at the start of a batch and restored when the member crashes
    mid-batch: a crashed server loses the volatile state of its in-flight
    work (views buffered, counters bumped, transfers half-logged), which is
    exactly what lets a failover re-serve the batch on a replica without
    double-counting the lost attempt.  Only *observations* are covered —
    stored relations and indexes are durable and survive the restore.
    """

    view_count: int
    stats: CloudStatistics
    network_log_length: int
    queries_issued: int
    index_probe_counts: Tuple[Tuple[str, int], ...]
    tag_probe_count: int
    tag_rows_examined: int


@dataclass(frozen=True)
class BatchRequest:
    """One partitioned request inside a :meth:`CloudServer.process_batch` call.

    Mirrors the parameters of :meth:`CloudServer.process_request`; values and
    tokens are tuples so a batch executor can hash requests to deduplicate
    repeated bin-pair retrievals.
    """

    attribute: str
    cleartext_values: Tuple[object, ...] = ()
    tokens: Tuple[SearchToken, ...] = ()
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    # -- sharded execution protocol ------------------------------------------
    #
    # Multi-cloud placement never ships a whole request to one server: the
    # encrypted half and the cleartext half are served by *different*
    # members, so no single server's view associates a sensitive bin with a
    # non-sensitive bin.  Each half deliberately drops the other side's bin
    # annotation — a server that never receives the other half has no way to
    # reconstruct it, and the recorded views must reflect that.

    @property
    def has_sensitive_half(self) -> bool:
        return bool(self.tokens)

    @property
    def has_non_sensitive_half(self) -> bool:
        return bool(self.cleartext_values)

    def sensitive_half(self) -> "BatchRequest":
        """The token half as shipped to the server owning the sensitive bin."""
        return BatchRequest(
            attribute=self.attribute,
            cleartext_values=(),
            tokens=self.tokens,
            sensitive_bin_index=self.sensitive_bin_index,
            non_sensitive_bin_index=None,
        )

    def non_sensitive_half(self) -> "BatchRequest":
        """The cleartext half as shipped to a non-colluding second server."""
        return BatchRequest(
            attribute=self.attribute,
            cleartext_values=self.cleartext_values,
            tokens=(),
            sensitive_bin_index=None,
            non_sensitive_bin_index=self.non_sensitive_bin_index,
        )


class CloudServer:
    """An honest-but-curious cloud hosting one partitioned relation."""

    def __init__(
        self,
        name: str = "public-cloud",
        network: Optional[NetworkModel] = None,
        use_indexes: bool = True,
        use_encrypted_indexes: bool = True,
    ):
        self.name = name
        self.network = network or NetworkModel()
        self.use_indexes = use_indexes
        #: gates both the tag index and the bin-addressed store; turning it
        #: off forces the linear-scan reference path (benchmark baseline).
        self.use_encrypted_indexes = use_encrypted_indexes
        self._non_sensitive: Optional[Relation] = None
        self._indexes: Dict[str, HashIndex] = {}
        self._encrypted_rows: List[EncryptedRow] = []
        self._encrypted_rows_snapshot: Optional[Tuple[EncryptedRow, ...]] = None
        self._scheme: Optional[EncryptedSearchScheme] = None
        self._tag_index: Optional[EncryptedTagIndex] = None
        self._bin_store: Optional[Dict[int, List[EncryptedRow]]] = None
        self._unassigned_sensitive: List[EncryptedRow] = []
        self.view_log = ViewLog()
        self.stats = CloudStatistics()
        self._queries_issued = 0

    # -- outsourcing -------------------------------------------------------------
    def store_non_sensitive(self, relation: Relation) -> None:
        """Receive the cleartext non-sensitive relation from the owner."""
        self._non_sensitive = relation
        self._indexes.clear()
        self.network.record(
            "upload", f"outsource {relation.name} (cleartext)", len(relation)
        )

    def store_sensitive(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        scheme: EncryptedSearchScheme,
        bin_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Receive the encrypted sensitive rows and the scheme's cloud logic.

        Only the scheme's *cloud-side* behaviour (``search``) is exercised by
        the server; the owner keeps the keys.

        ``bin_assignment`` (rid → sensitive bin index) is the optional hint a
        Query Binning owner sends along: it lets the cloud group ciphertexts
        by bin so each bin retrieval scans one slice instead of the whole
        relation.  The grouping reveals nothing new — bin membership is
        exactly what the adversary reconstructs from repeated retrievals.
        """
        self._encrypted_rows = list(encrypted_rows)
        self._encrypted_rows_snapshot = None
        self._scheme = scheme
        self._tag_index = None
        self._bin_store = None
        self._unassigned_sensitive = []
        if self.use_encrypted_indexes:
            if scheme.supports_tag_index:
                self._tag_index = EncryptedTagIndex(scheme)
                self._tag_index.add_rows(self._encrypted_rows, 0)
            elif bin_assignment is not None:
                self._bin_store = {}
                self._place_in_bins(self._encrypted_rows, bin_assignment)
        self.network.record(
            "upload", "outsource sensitive relation (encrypted)", len(encrypted_rows)
        )

    def append_sensitive(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Receive additional encrypted rows (inserts, fake-tuple padding)."""
        start_position = len(self._encrypted_rows)
        self._encrypted_rows.extend(encrypted_rows)
        self._encrypted_rows_snapshot = None
        if self._tag_index is not None:
            self._tag_index.add_rows(encrypted_rows, start_position)
        if self._bin_store is not None:
            self._place_in_bins(encrypted_rows, bin_assignment or {})
        self.network.record("upload", "append sensitive rows", len(encrypted_rows))

    def _place_in_bins(
        self,
        encrypted_rows: Sequence[EncryptedRow],
        bin_assignment: Mapping[int, int],
    ) -> None:
        assert self._bin_store is not None
        for row in encrypted_rows:
            bin_index = bin_assignment.get(row.rid)
            if bin_index is None:
                # Rows the owner did not place must stay visible to every bin
                # retrieval, otherwise the sliced scan could miss matches.
                self._unassigned_sensitive.append(row)
            else:
                self._bin_store.setdefault(bin_index, []).append(row)

    def append_non_sensitive(self, rows: Iterable[Dict[str, object]]) -> int:
        """Receive additional cleartext rows (inserts); returns count added."""
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        added = 0
        for values in rows:
            row = self._non_sensitive.insert(values, sensitive=False, validate=False)
            for index in self._indexes.values():
                index.add_row(row)
            added += 1
        self.network.record("upload", "append non-sensitive rows", added)
        return added

    def register_non_sensitive_row(self, row: Row) -> None:
        """Account for a cleartext row already present in the stored relation.

        Used when the owner inserts directly into the (shared) relation object
        and the cloud only needs to refresh its indexes and transfer log.
        """
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        if row.rid not in self._non_sensitive:
            raise CloudError(f"row {row.rid} is not part of the stored relation")
        for index in self._indexes.values():
            index.add_row(row)
        self.network.record("upload", "append non-sensitive row", 1)

    def build_index(self, attribute: str) -> None:
        """Build a hash index over the cleartext relation for ``attribute``."""
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        self._indexes[attribute] = HashIndex(self._non_sensitive, attribute)

    # -- introspection --------------------------------------------------------------
    @property
    def non_sensitive_relation(self) -> Relation:
        if self._non_sensitive is None:
            raise CloudError("no non-sensitive relation outsourced yet")
        return self._non_sensitive

    @property
    def encrypted_row_count(self) -> int:
        return len(self._encrypted_rows)

    @property
    def scheme(self) -> Optional[EncryptedSearchScheme]:
        """The outsourced scheme's cloud-side logic (``None`` before setup)."""
        return self._scheme

    @property
    def stored_encrypted_rows(self) -> Tuple[EncryptedRow, ...]:
        """The encrypted relation in storage order (cached between mutations)."""
        if self._encrypted_rows_snapshot is None:
            self._encrypted_rows_snapshot = tuple(self._encrypted_rows)
        return self._encrypted_rows_snapshot

    # -- query processing --------------------------------------------------------
    def _select_non_sensitive(self, attribute: str, values: Sequence[object]) -> List[Row]:
        relation = self.non_sensitive_relation
        if self.use_indexes:
            if attribute not in self._indexes:
                self.build_index(attribute)
            index = self._indexes[attribute]
            rows = index.lookup_many(values)
            self.stats.non_sensitive_probes += len(values)
            return rows
        self.stats.non_sensitive_probes += len(values)
        return relation.select_in(attribute, values)

    def _search_sensitive(
        self, tokens: Sequence[SearchToken], sensitive_bin_index: Optional[int]
    ) -> Tuple[List[EncryptedRow], int]:
        """Serve the sensitive half; returns (matches, rows examined).

        Prefers the tag index, then the bin-addressed store, then the linear
        scan.  All three return the same rows (parity is covered by tests);
        only the number of rows examined differs.
        """
        scheme = self._scheme
        if scheme is None:
            raise CloudError("no sensitive relation outsourced yet")
        if self._tag_index is not None:
            examined_before = self._tag_index.rows_examined
            matches = scheme.indexed_search(self._tag_index, tokens)
            return matches, self._tag_index.rows_examined - examined_before
        if self._bin_store is not None and sensitive_bin_index is not None:
            candidates = self._bin_store.get(sensitive_bin_index, [])
            if self._unassigned_sensitive:
                candidates = candidates + self._unassigned_sensitive
            return scheme.search(candidates, tokens), len(candidates)
        return scheme.search(self._encrypted_rows, tokens), len(self._encrypted_rows)

    def _charge_cached_non_sensitive(self, attribute: str, count: int) -> None:
        """Replicate the counters a cache-served cleartext lookup skips."""
        self.stats.non_sensitive_probes += count
        if self.use_indexes and attribute in self._indexes:
            self._indexes[attribute].probe_count += count

    def _charge_cached_sensitive(self, token_count: int, rows_scanned: int) -> None:
        """Replicate the counters a cache-served encrypted search skips."""
        if self._tag_index is not None:
            self._tag_index.probe_count += token_count
            self._tag_index.rows_examined += rows_scanned

    def _process_one(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        tokens: Sequence[SearchToken],
        sensitive_bin_index: Optional[int],
        non_sensitive_bin_index: Optional[int],
        non_sensitive_cache: Optional[Dict[Tuple, List[Row]]] = None,
        sensitive_cache: Optional[Dict[Tuple, Tuple[List[EncryptedRow], int]]] = None,
    ) -> QueryResponse:
        """Serve one request, optionally reusing batched retrieval results.

        The caches only skip *compute*: every query still gets its own view
        log entry, statistics increments, and network transfer, so batched
        and sequential execution are observationally identical.
        """
        query_id = self._queries_issued
        self._queries_issued += 1

        non_sensitive_rows: List[Row] = []
        if cleartext_values:
            ns_key = (attribute, tuple(cleartext_values))
            cached_rows = (
                non_sensitive_cache.get(ns_key)
                if non_sensitive_cache is not None
                else None
            )
            if cached_rows is not None:
                non_sensitive_rows = cached_rows
                self._charge_cached_non_sensitive(attribute, len(cleartext_values))
            else:
                non_sensitive_rows = self._select_non_sensitive(
                    attribute, cleartext_values
                )
                if non_sensitive_cache is not None:
                    non_sensitive_cache[ns_key] = non_sensitive_rows

        encrypted_matches: List[EncryptedRow] = []
        sensitive_scanned = 0
        if tokens:
            s_key = (tuple(tokens), sensitive_bin_index)
            cached_search = (
                sensitive_cache.get(s_key) if sensitive_cache is not None else None
            )
            if cached_search is not None:
                encrypted_matches, sensitive_scanned = cached_search
                self._charge_cached_sensitive(len(tokens), sensitive_scanned)
            else:
                encrypted_matches, sensitive_scanned = self._search_sensitive(
                    tokens, sensitive_bin_index
                )
                if sensitive_cache is not None:
                    sensitive_cache[s_key] = (encrypted_matches, sensitive_scanned)
            self.stats.sensitive_rows_scanned += sensitive_scanned
            self.stats.sensitive_tokens_processed += len(tokens)

        transfer_seconds = self.network.record(
            "download",
            f"query {query_id} results",
            len(non_sensitive_rows) + len(encrypted_matches),
        )

        self.stats.queries_served += 1
        self.stats.non_sensitive_rows_returned += len(non_sensitive_rows)
        self.stats.sensitive_rows_returned += len(encrypted_matches)

        self.view_log.append(
            AdversarialView(
                query_id=query_id,
                attribute=attribute,
                non_sensitive_request=tuple(cleartext_values),
                sensitive_request_size=len(tokens),
                returned_non_sensitive=tuple(non_sensitive_rows),
                returned_sensitive_rids=tuple([row.rid for row in encrypted_matches]),
                sensitive_bin_index=sensitive_bin_index,
                non_sensitive_bin_index=non_sensitive_bin_index,
            )
        )

        return QueryResponse(
            non_sensitive_rows=non_sensitive_rows,
            encrypted_rows=encrypted_matches,
            non_sensitive_scanned=len(cleartext_values),
            sensitive_scanned=sensitive_scanned,
            transfer_seconds=transfer_seconds,
        )

    def process_request(
        self,
        attribute: str,
        cleartext_values: Sequence[object],
        tokens: Sequence[SearchToken],
        sensitive_bin_index: Optional[int] = None,
        non_sensitive_bin_index: Optional[int] = None,
    ) -> QueryResponse:
        """Serve one partitioned request (both halves) and log the view.

        Parameters mirror what actually travels over the wire: the cleartext
        values of the non-sensitive bin and the opaque tokens of the sensitive
        bin.  Bin indexes serve two roles: they annotate the recorded view
        for later analysis (the adversary could recover them by grouping
        identical requests), and they address the bin-addressed store when
        the scheme has no indexable tags.
        """
        return self._process_one(
            attribute,
            cleartext_values,
            tokens,
            sensitive_bin_index,
            non_sensitive_bin_index,
        )

    def process_batch(self, requests: Sequence[BatchRequest]) -> List[QueryResponse]:
        """Serve many requests, computing each distinct retrieval only once.

        QB workloads are heavily repetitive — every value of a bin pair maps
        to the *same* request — so the batch executor memoises the cleartext
        lookup and the encrypted search per distinct request within the
        batch.  Deduplication never merges queries' observable effects: each
        request still produces its own query id, adversarial view,
        ``CloudStatistics`` and index-counter increments, and network
        transfer, exactly as if served sequentially.  Only the compute is
        shared, so counters *inside* a scheme that tally cryptographic
        operations actually performed will reflect the deduplication.
        """
        non_sensitive_cache: Dict[Tuple, List[Row]] = {}
        sensitive_cache: Dict[Tuple, Tuple[List[EncryptedRow], int]] = {}
        responses: List[QueryResponse] = []
        for request in requests:
            responses.append(
                self._process_one(
                    request.attribute,
                    request.cleartext_values,
                    request.tokens,
                    request.sensitive_bin_index,
                    request.non_sensitive_bin_index,
                    non_sensitive_cache=non_sensitive_cache,
                    sensitive_cache=sensitive_cache,
                )
            )
        return responses

    def reset_observations(self) -> None:
        """Clear adversarial views and counters (between experiments)."""
        self.view_log.clear()
        self.stats = CloudStatistics()
        self.network.reset()

    # -- crash semantics -----------------------------------------------------------
    def observation_snapshot(self) -> ObservationSnapshot:
        """Capture the server's observable side effects (see the snapshot doc)."""
        return ObservationSnapshot(
            view_count=len(self.view_log),
            stats=replace(self.stats),
            network_log_length=len(self.network.log),
            queries_issued=self._queries_issued,
            index_probe_counts=tuple(
                (attribute, index.probe_count)
                for attribute, index in self._indexes.items()
            ),
            tag_probe_count=(
                self._tag_index.probe_count if self._tag_index is not None else 0
            ),
            tag_rows_examined=(
                self._tag_index.rows_examined if self._tag_index is not None else 0
            ),
        )

    def restore_observations(self, snapshot: ObservationSnapshot) -> None:
        """Roll observable side effects back to ``snapshot``.

        Models a member crash: everything the member buffered for the
        in-flight batch — views, statistics, network log entries, index
        counters, the query-id counter — is lost with the process, leaving
        only the state that existed when the batch started.  Durable storage
        (relations, ciphertexts, indexes' contents) is untouched.
        """
        del self.view_log.views[snapshot.view_count:]
        self.stats = replace(snapshot.stats)
        del self.network.log[snapshot.network_log_length:]
        self._queries_issued = snapshot.queries_issued
        for attribute, probe_count in snapshot.index_probe_counts:
            if attribute in self._indexes:
                self._indexes[attribute].probe_count = probe_count
        if self._tag_index is not None:
            self._tag_index.probe_count = snapshot.tag_probe_count
            self._tag_index.rows_examined = snapshot.tag_rows_examined
