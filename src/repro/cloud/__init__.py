"""The untrusted public cloud substrate.

The cloud stores the cleartext non-sensitive relation and the encrypted
sensitive relation, answers selection requests on both, and — because it is
honest-but-curious — records everything it observes as adversarial views.
"""

from repro.cloud.indexes import HashIndex, SortedIndex
from repro.cloud.network import NetworkModel, TransferLog
from repro.cloud.server import BatchRequest, CloudServer, QueryResponse
from repro.cloud.multi_cloud import MultiCloud, ShardRouter

__all__ = [
    "HashIndex",
    "SortedIndex",
    "NetworkModel",
    "TransferLog",
    "BatchRequest",
    "CloudServer",
    "QueryResponse",
    "MultiCloud",
    "ShardRouter",
]
