"""Cloud-side indexes over cleartext relations.

The non-sensitive relation is stored in plaintext, so the cloud can maintain
ordinary database indexes on it.  Two flavours are provided:

* :class:`HashIndex` — exact-match lookups (the common case for QB's
  ``IN``-expanded selection queries);
* :class:`SortedIndex` — a sorted-array index supporting equality and range
  probes, standing in for a B+-tree.

Both indexes count the probes they serve so the experiment harness can report
index work alongside wall-clock time.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.data.relation import Relation, Row
from repro.exceptions import UnknownAttributeError


class HashIndex:
    """A hash index from attribute value to the rows holding it."""

    def __init__(self, relation: Relation, attribute: str):
        relation.schema[attribute]
        self.attribute = attribute
        self.relation_name = relation.name
        self._buckets: Dict[object, List[Row]] = defaultdict(list)
        for row in relation:
            self._buckets[row[attribute]].append(row)
        self.probe_count = 0

    def lookup(self, value: object) -> List[Row]:
        """Rows whose indexed attribute equals ``value``."""
        self.probe_count += 1
        return list(self._buckets.get(value, ()))

    def lookup_many(self, values: Iterable[object]) -> List[Row]:
        """Union of lookups for several values (bin-expanded queries)."""
        results: List[Row] = []
        for value in values:
            results.extend(self.lookup(value))
        return results

    def add_row(self, row: Row) -> None:
        """Maintain the index after an insert."""
        self._buckets[row[self.attribute]].append(row)

    def distinct_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """A sorted-array index supporting equality and range probes."""

    def __init__(self, relation: Relation, attribute: str):
        relation.schema[attribute]
        self.attribute = attribute
        self.relation_name = relation.name
        pairs = sorted(
            ((row[attribute], row) for row in relation), key=lambda pair: pair[0]
        )
        self._keys: List[object] = [key for key, _ in pairs]
        self._rows: List[Row] = [row for _, row in pairs]
        self.probe_count = 0

    def lookup(self, value: object) -> List[Row]:
        """Equality probe by binary search."""
        self.probe_count += 1
        lo = bisect_left(self._keys, value)
        hi = bisect_right(self._keys, value)
        return self._rows[lo:hi]

    def lookup_many(self, values: Iterable[object]) -> List[Row]:
        results: List[Row] = []
        for value in values:
            results.extend(self.lookup(value))
        return results

    def range(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Row]:
        """Rows whose indexed value lies in the requested interval."""
        self.probe_count += 1
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = bisect_left(self._keys, low) if include_low else bisect_right(self._keys, low)
        if high is not None:
            hi = bisect_right(self._keys, high) if include_high else bisect_left(self._keys, high)
        return self._rows[lo:hi]

    def add_row(self, row: Row) -> None:
        """Maintain the index after an insert (O(n) array insert)."""
        key = row[self.attribute]
        position = bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._rows.insert(position, row)

    def min_key(self) -> object:
        if not self._keys:
            raise UnknownAttributeError("index is empty")
        return self._keys[0]

    def max_key(self) -> object:
        if not self._keys:
            raise UnknownAttributeError("index is empty")
        return self._keys[-1]

    def __len__(self) -> int:
        return len(self._rows)
