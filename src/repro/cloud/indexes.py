"""Cloud-side indexes over the outsourced relations.

The non-sensitive relation is stored in plaintext, so the cloud can maintain
ordinary database indexes on it:

* :class:`HashIndex` — exact-match lookups (the common case for QB's
  ``IN``-expanded selection queries);
* :class:`SortedIndex` — a sorted-array index supporting equality and range
  probes, standing in for a B+-tree.

The *encrypted* relation gets the same treatment when its scheme opts in
(:attr:`~repro.crypto.base.EncryptedSearchScheme.supports_tag_index`):

* :class:`EncryptedTagIndex` — exact-match index from a scheme-stable search
  key (deterministic tag, Arx ``(value, i)`` tag, blinded tuple address) to
  the stored ciphertexts, so bin retrievals cost index probes instead of a
  scan of the whole relation.  The index holds only (key, rid, ciphertext)
  triples the honest-but-curious adversary already stores, so building it
  changes nothing in the adversarial view.

All indexes count the probes (and, for the encrypted index, the rows
examined) so the experiment harness can report index work alongside
wall-clock time.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.relation import Relation, Row
from repro.exceptions import UnknownAttributeError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.crypto.base import EncryptedRow, EncryptedSearchScheme

#: Shared sentinel for missing buckets: callers treat lookup results as
#: read-only, so all misses may alias one list without risk.
_NO_ROWS: List[Row] = []


class HashIndex:
    """A hash index from attribute value to the rows holding it."""

    def __init__(self, relation: Relation, attribute: str):
        relation.schema[attribute]
        self.attribute = attribute
        self.relation_name = relation.name
        self._buckets: Dict[object, List[Row]] = defaultdict(list)
        for row in relation:
            self._buckets[row[attribute]].append(row)
        self.probe_count = 0

    def lookup(self, value: object) -> List[Row]:
        """Rows whose indexed attribute equals ``value``.

        Returns the live bucket (no defensive copy — probes are on the hot
        path of every query); callers must treat the result as read-only.
        """
        self.probe_count += 1
        return self._buckets.get(value, _NO_ROWS)

    def lookup_many(self, values: Iterable[object]) -> List[Row]:
        """Union of lookups for several values (bin-expanded queries)."""
        buckets = self._buckets
        results: List[Row] = []
        for value in values:
            self.probe_count += 1
            bucket = buckets.get(value)
            if bucket:
                results.extend(bucket)
        return results

    def add_row(self, row: Row) -> None:
        """Maintain the index after an insert."""
        self._buckets[row[self.attribute]].append(row)

    def distinct_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """A sorted-array index supporting equality and range probes."""

    def __init__(self, relation: Relation, attribute: str):
        relation.schema[attribute]
        self.attribute = attribute
        self.relation_name = relation.name
        pairs = sorted(
            ((row[attribute], row) for row in relation), key=lambda pair: pair[0]
        )
        self._keys: List[object] = [key for key, _ in pairs]
        self._rows: List[Row] = [row for _, row in pairs]
        self.probe_count = 0

    def lookup(self, value: object) -> List[Row]:
        """Equality probe by binary search."""
        self.probe_count += 1
        lo = bisect_left(self._keys, value)
        hi = bisect_right(self._keys, value)
        return self._rows[lo:hi]

    def lookup_many(self, values: Iterable[object]) -> List[Row]:
        results: List[Row] = []
        for value in values:
            results.extend(self.lookup(value))
        return results

    def range(
        self,
        low: Optional[object] = None,
        high: Optional[object] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Row]:
        """Rows whose indexed value lies in the requested interval."""
        self.probe_count += 1
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = bisect_left(self._keys, low) if include_low else bisect_right(self._keys, low)
        if high is not None:
            hi = bisect_right(self._keys, high) if include_high else bisect_left(self._keys, high)
        return self._rows[lo:hi]

    def add_row(self, row: Row) -> None:
        """Maintain the index after an insert (O(n) array insert)."""
        key = row[self.attribute]
        position = bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._rows.insert(position, row)

    def min_key(self) -> object:
        if not self._keys:
            raise UnknownAttributeError("index is empty")
        return self._keys[0]

    def max_key(self) -> object:
        if not self._keys:
            raise UnknownAttributeError("index is empty")
        return self._keys[-1]

    def __len__(self) -> int:
        return len(self._rows)


class EncryptedTagIndex:
    """Exact-match index over the encrypted relation's stable search keys.

    Buckets map a scheme-defined key (see
    :meth:`~repro.crypto.base.EncryptedSearchScheme.index_key`) to the
    ``(storage position, row)`` pairs stored under it.  Positions let schemes
    reconstruct storage order, so the indexed search path returns exactly
    what the linear scan would have.

    ``probe_count`` counts key probes; ``rows_examined`` counts the rows the
    probes surfaced — the indexed analogue of "rows scanned", fed into
    :class:`~repro.cloud.server.QueryResponse.sensitive_scanned`.
    """

    _NO_ENTRIES: List[Tuple[int, "EncryptedRow"]] = []

    def __init__(self, scheme: "EncryptedSearchScheme"):
        self._scheme = scheme
        self._buckets: Dict[bytes, List[Tuple[int, "EncryptedRow"]]] = defaultdict(list)
        self._size = 0
        self.probe_count = 0
        self.rows_examined = 0

    def add_rows(self, rows: Sequence["EncryptedRow"], start_position: int) -> None:
        """Index ``rows`` stored at positions ``start_position, ...``.

        Keys come from the scheme's batch hook
        (:meth:`~repro.crypto.base.EncryptedSearchScheme.index_keys`), so
        outsource ingest pays one batched key derivation instead of a
        per-row call.
        """
        buckets = self._buckets
        keys = self._scheme.index_keys(rows)
        position = start_position
        size = 0
        for key, row in zip(keys, rows):
            if key is not None:
                buckets[key].append((position, row))
                size += 1
            position += 1
        self._size += size

    def probe(self, key: bytes) -> List[Tuple[int, "EncryptedRow"]]:
        """The (position, row) pairs stored under ``key`` (live, read-only)."""
        self.probe_count += 1
        bucket = self._buckets.get(key)
        if bucket is None:
            return self._NO_ENTRIES
        self.rows_examined += len(bucket)
        return bucket

    def probe_many(
        self, keys: Sequence[bytes]
    ) -> List[List[Tuple[int, "EncryptedRow"]]]:
        """Batch :meth:`probe`: one bucket list per key, in key order.

        Work-counter increments are exactly what the per-key loop would
        charge (``probe_count`` per key, ``rows_examined`` per surfaced
        row), so observation accounting cannot tell the paths apart.
        """
        buckets = self._buckets
        no_entries = self._NO_ENTRIES
        out: List[List[Tuple[int, "EncryptedRow"]]] = []
        append = out.append
        examined = 0
        for key in keys:
            bucket = buckets.get(key)
            if bucket is None:
                append(no_entries)
            else:
                examined += len(bucket)
                append(bucket)
        self.probe_count += len(keys)
        self.rows_examined += examined
        return out

    def distinct_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return self._size
