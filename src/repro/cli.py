"""Command-line interface for the reproduction.

Four subcommands cover the things a user typically wants to run without
writing code:

* ``repro-qb demo`` — the Employee walk-through (partition, bin, query, audit);
* ``repro-qb attacks`` — the attack battery against naive partitioning vs QB;
* ``repro-qb eta`` — the analytical η model for chosen α / γ / ρ / |NS|;
* ``repro-qb table6`` — the QB + Opaque / Jana cost table.

The module is import-safe (no work at import time) and every subcommand is a
plain function returning an exit code, so the test suite drives it directly.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro.adversary.attacks import run_all_attacks
from repro.baselines.jana_sim import JanaSimulator
from repro.baselines.opaque_sim import OpaqueSimulator
from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.model.cost import break_even_alpha, eta_simplified
from repro.model.parameters import CostParameters
from repro.owner.db_owner import DBOwner
from repro.workloads.employee import (
    build_employee_relation,
    employee_policy,
    paper_example_queries,
)
from repro.workloads.generator import generate_partitioned_dataset
from repro.workloads.queries import skewed_workload


def _print(message: str, quiet: bool = False) -> None:
    if not quiet:
        print(message)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def run_demo(seed: int = 7, quiet: bool = False) -> int:
    """The Employee walk-through (quickstart example, condensed)."""
    owner = DBOwner(build_employee_relation(), employee_policy(), permutation_seed=seed)
    engine = owner.outsource("EId")
    _print("Bin layout:", quiet)
    _print(engine.layout.describe(), quiet)
    for value in paper_example_queries():
        rows = owner.query("EId", value)
        _print(f"  EId={value}: {len(rows)} row(s)", quiet)
    domain = sorted(
        set(owner.partition.sensitive.distinct_values("EId"))
        | set(owner.partition.non_sensitive.distinct_values("EId"))
    )
    owner.execute_workload("EId", domain)
    report = owner.audit("EId", full_domain_queried=True)
    _print(f"partitioned data security: {'OK' if report.secure else 'VIOLATED'}", quiet)
    return 0 if report.secure else 1


def run_attacks(
    num_values: int = 60,
    num_queries: int = 200,
    seed: int = 17,
    quiet: bool = False,
) -> int:
    """Attack battery against naive partitioned execution and against QB."""
    dataset = generate_partitioned_dataset(
        num_values=num_values,
        sensitivity_fraction=0.5,
        association_fraction=0.5,
        tuples_per_value=4,
        skew_exponent=1.2,
        seed=seed,
    )
    workload = skewed_workload(dataset.all_values, num_queries=num_queries, seed=seed)

    def battery(engine) -> List:
        engine.execute_workload(workload)
        return run_all_attacks(
            engine.cloud.view_log,
            engine.cloud.stored_encrypted_rows,
            num_non_sensitive_values=len(dataset.non_sensitive_counts),
            true_counts=dataset.sensitive_counts,
        )

    naive = NaivePartitionedEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
    ).setup()
    qb = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(seed),
    ).setup()

    naive_outcomes = battery(naive)
    qb_outcomes = battery(qb)
    _print(f"{'attack':<18} {'without QB':<12} with QB", quiet)
    for naive_outcome, qb_outcome in zip(naive_outcomes, qb_outcomes):
        _print(
            f"{naive_outcome.name:<18} "
            f"{'succeeds' if naive_outcome.succeeded else 'fails':<12} "
            f"{'succeeds' if qb_outcome.succeeded else 'fails'}",
            quiet,
        )
    return 0 if not any(o.succeeded for o in qb_outcomes) else 1


def run_eta(
    alpha: float,
    gamma: float = 25_000.0,
    rho: float = 0.01,
    num_non_sensitive_values: int = 100_000,
    quiet: bool = False,
) -> int:
    """Evaluate the analytical model for one parameter point."""
    params = CostParameters.from_ratios(gamma=gamma, selectivity=rho)
    width = max(1, round(num_non_sensitive_values**0.5))
    eta = eta_simplified(alpha, width, width, params)
    breakeven = break_even_alpha(num_non_sensitive_values, params)
    _print(
        f"eta = {eta:.4f} (alpha={alpha}, gamma={gamma:.0f}, rho={rho}, "
        f"|SB|=|NSB|={width}); QB wins while alpha < {breakeven:.4f}",
        quiet,
    )
    return 0 if eta < 1.0 else 1


def run_table6(quiet: bool = False) -> int:
    """Print the Table VI simulation (QB + Opaque / Jana)."""
    sensitivities = (0.01, 0.05, 0.2, 0.4, 0.6)
    opaque = OpaqueSimulator().table6_row(sensitivities)
    jana = JanaSimulator().table6_row(sensitivities)
    header = "technique            " + "".join(f"{alpha:>8.0%}" for alpha in sensitivities)
    _print(header, quiet)
    _print(
        "Opaque + QB          " + "".join(f"{opaque[a]:>8.0f}" for a in sensitivities),
        quiet,
    )
    _print(
        "Jana + QB            " + "".join(f"{jana[a]:>8.0f}" for a in sensitivities),
        quiet,
    )
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qb",
        description="Query Binning (ICDE 2019) reproduction command-line interface",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress output")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="Employee example walk-through")
    demo.add_argument("--seed", type=int, default=7)

    attacks = subparsers.add_parser("attacks", help="attack battery, naive vs QB")
    attacks.add_argument("--values", type=int, default=60)
    attacks.add_argument("--queries", type=int, default=200)
    attacks.add_argument("--seed", type=int, default=17)

    eta = subparsers.add_parser("eta", help="analytical eta for one parameter point")
    eta.add_argument("--alpha", type=float, required=True)
    eta.add_argument("--gamma", type=float, default=25_000.0)
    eta.add_argument("--rho", type=float, default=0.01)
    eta.add_argument("--non-sensitive-values", type=int, default=100_000)

    subparsers.add_parser("table6", help="QB + Opaque / Jana cost table")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return run_demo(seed=args.seed, quiet=args.quiet)
    if args.command == "attacks":
        return run_attacks(
            num_values=args.values,
            num_queries=args.queries,
            seed=args.seed,
            quiet=args.quiet,
        )
    if args.command == "eta":
        return run_eta(
            alpha=args.alpha,
            gamma=args.gamma,
            rho=args.rho,
            num_non_sensitive_values=args.non_sensitive_values,
            quiet=args.quiet,
        )
    if args.command == "table6":
        return run_table6(quiet=args.quiet)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
