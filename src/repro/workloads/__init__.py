"""Workload substrate: datasets and query workloads used by the experiments.

* :mod:`repro.workloads.employee` — the paper's running Employee example
  (Figure 1 / Figure 2, Examples 1-4).
* :mod:`repro.workloads.generator` — synthetic value/frequency generators
  (uniform and Zipf-skewed multiplicities, controlled association fractions).
* :mod:`repro.workloads.tpch` — TPC-H-shaped LINEITEM / CUSTOMER relations at
  configurable scale (substituting for the official dbgen, which is not
  available offline).
* :mod:`repro.workloads.queries` — query workload generators (uniform and
  skewed) for the workload-skew experiments.
"""

from repro.workloads.employee import (
    EMPLOYEE_ATTRIBUTES,
    build_employee_relation,
    employee_partition,
)
from repro.workloads.generator import (
    SyntheticDataset,
    derive_stream_seed,
    generate_partitioned_dataset,
    generate_query_stream,
    interleave_operations,
    uniform_counts,
    zipf_counts,
)
from repro.workloads.tpch import generate_customer, generate_lineitem
from repro.workloads.queries import skewed_workload, uniform_workload

__all__ = [
    "EMPLOYEE_ATTRIBUTES",
    "build_employee_relation",
    "employee_partition",
    "SyntheticDataset",
    "derive_stream_seed",
    "generate_partitioned_dataset",
    "generate_query_stream",
    "interleave_operations",
    "uniform_counts",
    "zipf_counts",
    "generate_lineitem",
    "generate_customer",
    "uniform_workload",
    "skewed_workload",
]
