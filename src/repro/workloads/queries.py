"""Query workload generators.

The workload-skew attack (§I, §VI) relies on some values being queried far
more often than others; these helpers build uniform and Zipf-skewed query
streams over a value domain so the security experiments can measure what the
adversary learns from query repetition with and without QB.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError


def uniform_workload(values: Sequence[object], num_queries: int, seed: int = 11) -> List[object]:
    """``num_queries`` values drawn uniformly at random from ``values``."""
    if not values:
        raise ConfigurationError("cannot build a workload over an empty domain")
    if num_queries < 0:
        raise ConfigurationError("num_queries cannot be negative")
    rng = random.Random(seed)
    return [rng.choice(list(values)) for _ in range(num_queries)]


def skewed_workload(
    values: Sequence[object],
    num_queries: int,
    exponent: float = 1.2,
    seed: int = 13,
) -> List[object]:
    """A Zipf-skewed workload: low-rank values are queried much more often."""
    if not values:
        raise ConfigurationError("cannot build a workload over an empty domain")
    if num_queries < 0:
        raise ConfigurationError("num_queries cannot be negative")
    ordered = list(values)
    weights = [(rank + 1) ** -exponent for rank in range(len(ordered))]
    rng = random.Random(seed)
    return rng.choices(ordered, weights=weights, k=num_queries)


def workload_histogram(workload: Sequence[object]) -> Dict[object, int]:
    """Query-frequency histogram of a workload (ground truth for attacks)."""
    return dict(Counter(workload))


def exhaustive_workload(values: Sequence[object]) -> List[object]:
    """One query per domain value — used by the security auditor, which needs
    full domain coverage to check surviving-match completeness."""
    seen: Dict[object, None] = {}
    for value in values:
        seen.setdefault(value, None)
    return list(seen)
