"""Synthetic TPC-H-shaped relations.

The paper's experiments use the TPC-H benchmark (LINEITEM and Customer
tables) generated with the official ``dbgen`` tool, which is not available in
this offline environment.  These generators produce relations with the same
searchable-attribute structure — ``L_PARTKEY`` / ``L_SUPPKEY`` foreign keys
drawn from domains whose sizes follow the TPC-H scale rules — which is all QB
depends on: the binning and the cost model consume value domains and
frequencies, not the actual line-item payloads.

Scale factors are expressed as fractions of TPC-H SF1 (6 M LINEITEM rows,
200 k parts, 10 k suppliers, 150 k customers).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConfigurationError

# TPC-H scale-factor-1 cardinalities.
SF1_LINEITEM_ROWS = 6_000_000
SF1_PART_COUNT = 200_000
SF1_SUPPLIER_COUNT = 10_000
SF1_CUSTOMER_COUNT = 150_000


def lineitem_schema() -> Schema:
    return Schema(
        [
            Attribute("L_ORDERKEY", dtype=int),
            Attribute("L_PARTKEY", dtype=int),
            Attribute("L_SUPPKEY", dtype=int),
            Attribute("L_LINENUMBER", dtype=int, searchable=False),
            Attribute("L_QUANTITY", dtype=int, searchable=False),
            Attribute("L_EXTENDEDPRICE", dtype=float, searchable=False),
            Attribute("L_SHIPMODE", dtype=str, searchable=False),
        ]
    )


def customer_schema() -> Schema:
    return Schema(
        [
            Attribute("C_CUSTKEY", dtype=int),
            Attribute("C_NAME", dtype=str, searchable=False),
            Attribute("C_NATIONKEY", dtype=int),
            Attribute("C_MKTSEGMENT", dtype=str),
            Attribute("C_ACCTBAL", dtype=float, searchable=False),
        ]
    )


_SHIP_MODES = ("AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR")
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")


def generate_lineitem(
    num_rows: int,
    scale: Optional[float] = None,
    seed: int = 1,
    name: str = "LINEITEM",
) -> Relation:
    """Generate a LINEITEM-shaped relation with ``num_rows`` rows.

    ``scale`` controls the foreign-key domain sizes; when omitted it is
    derived from ``num_rows`` relative to SF1 so the value-to-row ratios match
    TPC-H (about 30 line items per part at SF1).
    """
    if num_rows <= 0:
        raise ConfigurationError("num_rows must be positive")
    if scale is None:
        scale = num_rows / SF1_LINEITEM_ROWS
    part_domain = max(1, int(SF1_PART_COUNT * scale))
    supplier_domain = max(1, int(SF1_SUPPLIER_COUNT * scale))
    rng = random.Random(seed)
    relation = Relation(name, lineitem_schema())
    for index in range(num_rows):
        relation.insert(
            {
                "L_ORDERKEY": index // 4 + 1,
                "L_PARTKEY": rng.randrange(1, part_domain + 1),
                "L_SUPPKEY": rng.randrange(1, supplier_domain + 1),
                "L_LINENUMBER": index % 4 + 1,
                "L_QUANTITY": rng.randrange(1, 51),
                "L_EXTENDEDPRICE": round(rng.uniform(900.0, 105_000.0), 2),
                "L_SHIPMODE": rng.choice(_SHIP_MODES),
            },
            validate=False,
        )
    return relation


def generate_customer(
    num_rows: int,
    seed: int = 2,
    name: str = "CUSTOMER",
) -> Relation:
    """Generate a Customer-shaped relation with ``num_rows`` rows."""
    if num_rows <= 0:
        raise ConfigurationError("num_rows must be positive")
    rng = random.Random(seed)
    relation = Relation(name, customer_schema())
    for index in range(1, num_rows + 1):
        relation.insert(
            {
                "C_CUSTKEY": index,
                "C_NAME": f"Customer#{index:09d}",
                "C_NATIONKEY": rng.randrange(0, 25),
                "C_MKTSEGMENT": rng.choice(_SEGMENTS),
                "C_ACCTBAL": round(rng.uniform(-999.99, 9999.99), 2),
            },
            validate=False,
        )
    return relation


def estimated_metadata_bytes(relation: Relation, attribute: str) -> int:
    """Rough owner-metadata footprint for ``attribute`` (value + count pairs).

    The paper reports 13.6 MB for ``L_PARTKEY`` and 0.65 MB for ``L_SUPPKEY``
    on the full LINEITEM table; this helper lets the benchmarks report the
    analogous quantity for the synthetic tables.
    """
    distinct = len(relation.distinct_values(attribute))
    bytes_per_entry = 32  # value + frequency + bin placement
    return distinct * bytes_per_entry
