"""The paper's running Employee example (Figure 1, Figure 2, Examples 1-4).

The relation has eight tuples; the ``SSN`` attribute is column-level
sensitive and every tuple of the ``Defense`` department is row-level
sensitive.  Partitioning it reproduces the paper's three relations:

* ``Employee1`` — the vertical split ``(EId, SSN)``, always encrypted;
* ``Employee2`` — the sensitive rows (Defense), encrypted;
* ``Employee3`` — the non-sensitive rows (Design), outsourced in cleartext.
"""

from __future__ import annotations

from typing import Tuple

from repro.data.partition import PartitionResult, SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema

EMPLOYEE_ATTRIBUTES = ("EId", "FirstName", "LastName", "SSN", "Office", "Dept")

_EMPLOYEE_ROWS = (
    {"EId": "E101", "FirstName": "Adam", "LastName": "Smith", "SSN": "111", "Office": "1", "Dept": "Defense"},
    {"EId": "E259", "FirstName": "John", "LastName": "Williams", "SSN": "222", "Office": "2", "Dept": "Design"},
    {"EId": "E199", "FirstName": "Eve", "LastName": "Smith", "SSN": "333", "Office": "2", "Dept": "Design"},
    {"EId": "E259", "FirstName": "John", "LastName": "Williams", "SSN": "222", "Office": "6", "Dept": "Defense"},
    {"EId": "E152", "FirstName": "Clark", "LastName": "Cook", "SSN": "444", "Office": "1", "Dept": "Defense"},
    {"EId": "E254", "FirstName": "David", "LastName": "Watts", "SSN": "555", "Office": "4", "Dept": "Design"},
    {"EId": "E159", "FirstName": "Lisa", "LastName": "Ross", "SSN": "666", "Office": "2", "Dept": "Defense"},
    {"EId": "E152", "FirstName": "Clark", "LastName": "Cook", "SSN": "444", "Office": "3", "Dept": "Design"},
)


def employee_schema() -> Schema:
    """The Employee schema with ``SSN`` flagged column-level sensitive."""
    return Schema(
        Attribute(name, dtype=str, sensitive=(name == "SSN"))
        for name in EMPLOYEE_ATTRIBUTES
    )


def build_employee_relation() -> Relation:
    """The eight-tuple Employee relation of Figure 1 (rids 0..7 ↔ t1..t8)."""
    return Relation.from_dicts("Employee", employee_schema(), _EMPLOYEE_ROWS)


def employee_policy() -> SensitivityPolicy:
    """Row-level sensitivity: ``Dept = Defense``; column-level: ``SSN``."""
    return SensitivityPolicy(
        sensitive_values={"Dept": {"Defense"}},
        sensitive_attributes=("SSN",),
        key_attribute="EId",
    )


def employee_partition() -> PartitionResult:
    """Partition the Employee relation exactly as Figure 2 does.

    The resulting :class:`PartitionResult` has ``.vertical`` = Employee1,
    ``.sensitive`` = Employee2 and ``.non_sensitive`` = Employee3.
    """
    relation = build_employee_relation()
    return partition_relation(
        relation,
        employee_policy(),
        sensitive_name="Employee2",
        non_sensitive_name="Employee3",
    )


def paper_example_queries() -> Tuple[str, ...]:
    """The three query values of Example 2 (Q1, Q2, Q3)."""
    return ("E259", "E101", "E199")
