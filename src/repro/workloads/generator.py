"""Synthetic dataset generators.

The experiments need datasets where four knobs can be turned independently:

* the number of distinct values and total tuples,
* the sensitivity fraction α (how many values / tuples are sensitive),
* the multiplicity distribution (uniform counts → the base case; Zipf-skewed
  counts → the general case that needs fake tuples),
* the association fraction (how many sensitive values also appear on the
  non-sensitive side).

:func:`generate_partitioned_dataset` builds a relation with those properties
and partitions it, returning a :class:`SyntheticDataset` ready to feed into a
:class:`~repro.core.engine.QueryBinningEngine`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.partition import PartitionResult, SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConfigurationError


def derive_stream_seed(seed: int, stream: str) -> int:
    """An independent RNG seed for one named stream of a generation run.

    Every optional knob of the generator (the insert stream today, future
    interleavings) draws from its *own* ``random.Random`` seeded by this
    derivation instead of sharing one generator.  Sharing is the classic
    determinism bug: with a single ``random.Random(seed)`` feeding every
    stream, merely *enabling* one knob shifts the shared generator's state
    and silently reshuffles every other stream — the "same seed" dataset is
    no longer the same.  Deriving per-stream seeds makes each stream a pure
    function of ``(seed, stream name)``, so knobs compose without
    perturbing each other.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class SyntheticDataset:
    """A generated relation, its partition, and the ground truth behind it."""

    relation: Relation
    partition: PartitionResult
    attribute: str
    sensitive_counts: Dict[object, int]
    non_sensitive_counts: Dict[object, int]
    #: optional insert workload rows (``insert_count`` knob): ``(values,
    #: sensitive)`` pairs of brand-new attribute values, ready to feed an
    #: :class:`~repro.extensions.inserts.IncrementalInserter`.  Generated
    #: from an independently derived stream seed, so requesting inserts
    #: never perturbs the base dataset for the same ``seed``.
    insert_stream: List[Tuple[Dict[str, str], bool]] = field(default_factory=list)

    @property
    def total_tuples(self) -> int:
        return len(self.relation)

    @property
    def alpha(self) -> float:
        sensitive = sum(self.sensitive_counts.values())
        total = sensitive + sum(self.non_sensitive_counts.values())
        return sensitive / total if total else 0.0

    @property
    def all_values(self) -> List[object]:
        seen: Dict[object, None] = {}
        for value in list(self.sensitive_counts) + list(self.non_sensitive_counts):
            seen.setdefault(value, None)
        return list(seen)


def uniform_counts(num_values: int, tuples_per_value: int = 1, prefix: str = "v") -> Dict[str, int]:
    """``num_values`` distinct values, each with the same multiplicity."""
    if num_values < 0 or tuples_per_value < 0:
        raise ConfigurationError("counts must be non-negative")
    return {f"{prefix}{index}": tuples_per_value for index in range(num_values)}


def zipf_counts(
    num_values: int,
    total_tuples: int,
    exponent: float = 1.0,
    prefix: str = "v",
) -> Dict[str, int]:
    """A Zipf-skewed multiplicity assignment over ``num_values`` values.

    Every value receives at least one tuple; the remainder is distributed
    proportionally to ``rank ** -exponent``.
    """
    if num_values <= 0:
        raise ConfigurationError("need at least one value")
    if total_tuples < num_values:
        raise ConfigurationError("total_tuples must be at least num_values")
    weights = [(rank + 1) ** -exponent for rank in range(num_values)]
    weight_sum = sum(weights)
    remaining = total_tuples - num_values
    counts = {}
    assigned = 0
    for index, weight in enumerate(weights):
        extra = int(remaining * weight / weight_sum)
        counts[f"{prefix}{index}"] = 1 + extra
        assigned += extra
    # distribute rounding leftovers to the heaviest values
    leftover = remaining - assigned
    for index in range(leftover):
        counts[f"{prefix}{index % num_values}"] += 1
    return counts


def generate_query_stream(
    values: Sequence[object],
    num_queries: int,
    mix: str = "uniform",
    zipf_exponent: float = 1.0,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    seed: int = 7,
) -> List[object]:
    """A deterministic stream of query values over ``values``.

    Mixes
    -----
    ``"uniform"``
        Every value equally likely — the base case the earlier benchmarks
        measured.
    ``"zipf"``
        Value at rank *r* (in the order given) drawn with probability
        ∝ ``(r + 1) ** -zipf_exponent`` — the skewed workload whose
        frequency signal QB is designed to hide.
    ``"hotkey"``
        The first ``hot_fraction`` of the values receive ``hot_weight`` of
        the probability mass collectively; the rest share the remainder.
        Models a cache-friendly "working set" workload.

    The stream is a pure function of ``(seed, mix)`` via
    :func:`derive_stream_seed`, so switching mixes (or generating an insert
    stream from the same seed) never reshuffles another stream.
    """
    if num_queries < 0:
        raise ConfigurationError("num_queries must be non-negative")
    if not values:
        raise ConfigurationError("need at least one value to query")
    if mix == "uniform":
        weights = [1.0] * len(values)
    elif mix == "zipf":
        weights = [(rank + 1) ** -zipf_exponent for rank in range(len(values))]
    elif mix == "hotkey":
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_weight <= 1.0:
            raise ConfigurationError("hot_weight must be in [0, 1]")
        hot_count = max(1, int(len(values) * hot_fraction))
        cold_count = len(values) - hot_count
        if cold_count == 0:
            weights = [1.0] * len(values)
        else:
            weights = [hot_weight / hot_count] * hot_count + [
                (1.0 - hot_weight) / cold_count
            ] * cold_count
    else:
        raise ConfigurationError(f"unknown query mix {mix!r}")
    rng = random.Random(derive_stream_seed(seed, f"queries|{mix}"))
    return rng.choices(list(values), weights=weights, k=num_queries)


def interleave_operations(
    queries: Sequence[object],
    inserts: Sequence[object],
    seed: int = 7,
) -> List[Tuple[str, object]]:
    """Merge a query stream and an insert stream into one operation stream.

    Returns ``("query", item)`` / ``("insert", item)`` pairs.  The merge is
    a weighted random shuffle that preserves each stream's internal order
    (each next operation is drawn from the remaining streams proportionally
    to how many operations they still hold), seeded independently via
    :func:`derive_stream_seed` so the same ``seed`` always yields the same
    interleaving regardless of how the two input streams were generated.
    """
    rng = random.Random(derive_stream_seed(seed, "interleave"))
    merged: List[Tuple[str, object]] = []
    query_index = 0
    insert_index = 0
    remaining_queries = len(queries)
    remaining_inserts = len(inserts)
    while remaining_queries or remaining_inserts:
        if rng.randrange(remaining_queries + remaining_inserts) < remaining_queries:
            merged.append(("query", queries[query_index]))
            query_index += 1
            remaining_queries -= 1
        else:
            merged.append(("insert", inserts[insert_index]))
            insert_index += 1
            remaining_inserts -= 1
    return merged


def generate_partitioned_dataset(
    num_values: int = 100,
    sensitivity_fraction: float = 0.2,
    association_fraction: float = 0.5,
    tuples_per_value: int = 1,
    skew_exponent: Optional[float] = None,
    seed: int = 7,
    attribute: str = "key",
    extra_attributes: Sequence[str] = ("payload",),
    insert_count: int = 0,
) -> SyntheticDataset:
    """Generate a partitioned synthetic dataset.

    Parameters
    ----------
    num_values:
        Number of distinct values of the searchable attribute.
    sensitivity_fraction:
        Fraction of distinct values whose tuples are sensitive (α over values).
    association_fraction:
        Fraction of *sensitive* values that also have non-sensitive tuples
        (the associated values of §IV).
    tuples_per_value:
        Multiplicity for the uniform (base) case; ignored when
        ``skew_exponent`` is given.
    skew_exponent:
        When set, multiplicities follow a Zipf distribution with this
        exponent and roughly ``num_values * tuples_per_value`` total tuples.
    seed:
        RNG seed; generation is fully deterministic for a given seed.
    insert_count:
        When positive, also generate that many brand-new values as an
        insert workload (``dataset.insert_stream``), each row flagged
        sensitive with probability ``sensitivity_fraction``.

    Each stream of randomness draws from its own generator seeded by
    :func:`derive_stream_seed`, so turning a knob on (e.g. ``insert_count``)
    never reshuffles the base dataset produced for the same ``seed``.  The
    value-shuffle stream keeps the historical direct ``Random(seed)``
    seeding, pinning every dataset (and the traces derived from it) that
    existing tests and committed benchmarks depend on.
    """
    if not 0.0 <= sensitivity_fraction <= 1.0:
        raise ConfigurationError("sensitivity_fraction must be in [0, 1]")
    if not 0.0 <= association_fraction <= 1.0:
        raise ConfigurationError("association_fraction must be in [0, 1]")
    if insert_count < 0:
        raise ConfigurationError("insert_count must be non-negative")
    rng = random.Random(seed)  # the legacy value-shuffle stream (pinned)

    values = [f"v{index:06d}" for index in range(num_values)]
    rng.shuffle(values)
    num_sensitive = int(round(num_values * sensitivity_fraction))
    sensitive_values = values[:num_sensitive]
    non_sensitive_only = values[num_sensitive:]
    num_associated = int(round(len(sensitive_values) * association_fraction))
    associated_values = sensitive_values[:num_associated]

    if skew_exponent is None:
        multiplicity = {value: max(1, tuples_per_value) for value in values}
    else:
        total = num_values * max(1, tuples_per_value)
        skewed = zipf_counts(num_values, total, exponent=skew_exponent)
        multiplicity = {value: count for value, count in zip(values, skewed.values())}

    schema = Schema(
        [Attribute(attribute, dtype=str)]
        + [Attribute(name, dtype=str) for name in extra_attributes]
    )
    relation = Relation("synthetic", schema)
    sensitive_counts: Dict[object, int] = {}
    non_sensitive_counts: Dict[object, int] = {}

    def make_row(value: str, marker: str, index: int) -> Dict[str, str]:
        row = {attribute: value}
        for name in extra_attributes:
            row[name] = f"{marker}-{name}-{value}-{index}"
        return row

    for value in sensitive_values:
        count = multiplicity[value]
        for index in range(count):
            relation.insert(make_row(value, "s", index), sensitive=True, validate=False)
        sensitive_counts[value] = count

    for value in associated_values:
        count = multiplicity[value]
        for index in range(count):
            relation.insert(make_row(value, "ns", index), sensitive=False, validate=False)
        non_sensitive_counts[value] = count

    for value in non_sensitive_only:
        count = multiplicity[value]
        for index in range(count):
            relation.insert(make_row(value, "ns", index), sensitive=False, validate=False)
        non_sensitive_counts[value] = count

    insert_stream: List[Tuple[Dict[str, str], bool]] = []
    if insert_count:
        insert_rng = random.Random(derive_stream_seed(seed, "inserts"))
        for index in range(insert_count):
            value = f"x{index:06d}"  # disjoint from the v* base values
            sensitive = insert_rng.random() < sensitivity_fraction
            insert_stream.append(
                (make_row(value, "s" if sensitive else "ns", 0), sensitive)
            )
        insert_rng.shuffle(insert_stream)

    policy = SensitivityPolicy(use_row_flags=True)
    partition = partition_relation(relation, policy)
    return SyntheticDataset(
        relation=relation,
        partition=partition,
        attribute=attribute,
        sensitive_counts=sensitive_counts,
        non_sensitive_counts=non_sensitive_counts,
        insert_stream=insert_stream,
    )
