"""Binning planner: choose the strategy and layout for an attribute.

The planner inspects the owner metadata and decides

* whether the base case applies (every value has at most one tuple per side)
  or the general case is needed (multi-tuple values → balanced packing plus
  fake tuples), and
* which feasible factorisation minimises the expected per-query retrieval
  cost (the "simple extension" comparison between the exact factorisation and
  the nearest-square layout).

The cost estimate mirrors the paper's Figure 6c finding: retrieval cost is
minimised when the two bin widths are balanced, i.e. |SB| ≈ |NSB| ≈ √|NS|.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.factors import factor_candidates
from repro.core.metadata import OwnerMetadata
from repro.exceptions import BinningError


@dataclass(frozen=True)
class BinningPlan:
    """The planner's decision for one attribute."""

    attribute: str
    strategy: str  # "base" or "general"
    num_sensitive_bins: int
    num_non_sensitive_bins: int
    expected_sensitive_width: int
    expected_non_sensitive_width: int
    expected_tuples_per_query: float

    @property
    def expected_values_per_query(self) -> int:
        """|SB| + |NSB| — the number of values a single query expands to."""
        return self.expected_sensitive_width + self.expected_non_sensitive_width


def estimate_query_cost(
    metadata: OwnerMetadata,
    num_sensitive_bins: int,
    num_non_sensitive_bins: int,
) -> Tuple[int, int, float]:
    """Estimate the retrieval footprint of a layout.

    Returns ``(sensitive bin width, non-sensitive bin width, expected tuples
    retrieved per query)``.  The tuple estimate assumes tuples are spread
    evenly over values — the same uniformity assumption the paper's analytical
    model makes for ρ.
    """
    num_sensitive_values = metadata.num_sensitive_values
    num_non_sensitive_values = metadata.num_non_sensitive_values

    sensitive_width = (
        math.ceil(num_sensitive_values / num_sensitive_bins)
        if num_sensitive_values
        else 0
    )
    non_sensitive_width = (
        math.ceil(num_non_sensitive_values / num_non_sensitive_bins)
        if num_non_sensitive_values
        else 0
    )

    tuples_per_sensitive_value = (
        metadata.sensitive_tuples / num_sensitive_values if num_sensitive_values else 0.0
    )
    tuples_per_non_sensitive_value = (
        metadata.non_sensitive_tuples / num_non_sensitive_values
        if num_non_sensitive_values
        else 0.0
    )
    expected_tuples = (
        sensitive_width * tuples_per_sensitive_value
        + non_sensitive_width * tuples_per_non_sensitive_value
    )
    return sensitive_width, non_sensitive_width, expected_tuples


def plan_binning(
    metadata: OwnerMetadata,
    force_strategy: Optional[str] = None,
    force_layout: Optional[Tuple[int, int]] = None,
) -> BinningPlan:
    """Choose strategy and layout for ``metadata``.

    Parameters
    ----------
    metadata:
        The owner's per-attribute metadata (value counts on both sides).
    force_strategy:
        Override the base/general decision ("base" or "general").
    force_layout:
        Override the factorisation with an explicit
        ``(num_sensitive_bins, num_non_sensitive_bins)`` pair — used by the
        Figure 6c experiment to sweep bin-size imbalance.
    """
    if metadata.num_non_sensitive_values == 0 and metadata.num_sensitive_values == 0:
        raise BinningError(f"attribute {metadata.attribute!r} has no values to bin")

    strategy = force_strategy or ("base" if metadata.is_base_case else "general")
    if strategy not in ("base", "general"):
        raise BinningError(f"unknown binning strategy {strategy!r}")

    if force_layout is not None:
        num_sensitive_bins, num_non_sensitive_bins = force_layout
        widths = estimate_query_cost(metadata, num_sensitive_bins, num_non_sensitive_bins)
        return BinningPlan(
            attribute=metadata.attribute,
            strategy=strategy,
            num_sensitive_bins=num_sensitive_bins,
            num_non_sensitive_bins=num_non_sensitive_bins,
            expected_sensitive_width=widths[0],
            expected_non_sensitive_width=widths[1],
            expected_tuples_per_query=widths[2],
        )

    candidates = factor_candidates(
        max(metadata.num_non_sensitive_values, 1), metadata.num_sensitive_values
    )
    best_plan: Optional[BinningPlan] = None
    for num_sensitive_bins, num_non_sensitive_bins in candidates:
        widths = estimate_query_cost(metadata, num_sensitive_bins, num_non_sensitive_bins)
        plan = BinningPlan(
            attribute=metadata.attribute,
            strategy=strategy,
            num_sensitive_bins=num_sensitive_bins,
            num_non_sensitive_bins=num_non_sensitive_bins,
            expected_sensitive_width=widths[0],
            expected_non_sensitive_width=widths[1],
            expected_tuples_per_query=widths[2],
        )
        if best_plan is None or plan.expected_tuples_per_query < best_plan.expected_tuples_per_query:
            best_plan = plan
    assert best_plan is not None
    return best_plan
