"""Query Binning (QB) — the paper's primary contribution.

The package is organised around the two steps of QB:

1. **Bin creation** (done once per searchable attribute, before any query):
   :mod:`repro.core.binning` implements Algorithm 1 (the base case and the
   nearest-square extension) and :mod:`repro.core.general_binning` implements
   the §IV-B general case where values have different tuple multiplicities and
   fake encrypted tuples equalise bin sizes.

2. **Bin retrieval** (per query): :mod:`repro.core.retrieval` implements
   Algorithm 2's rules R1/R2, and :mod:`repro.core.engine` ties the owner, the
   chosen cryptographic scheme, and the cloud together into an end-to-end
   query path (outsource → rewrite → execute → decrypt → merge).
"""

from repro.core.factors import approx_square_factors, factor_candidates, nearest_square
from repro.core.bins import Bin, BinLayout
from repro.core.binning import (
    create_bins,
    create_bins_with_layout_choice,
    layout_covers_all_bin_pairs,
)
from repro.core.general_binning import GeneralBinningResult, create_general_bins
from repro.core.retrieval import BinRetriever, RetrievalDecision
from repro.core.metadata import OwnerMetadata
from repro.core.planner import BinningPlan, plan_binning
from repro.core.engine import (
    ExecutionTrace,
    NaivePartitionedEngine,
    QueryBinningEngine,
)

__all__ = [
    "approx_square_factors",
    "factor_candidates",
    "nearest_square",
    "Bin",
    "BinLayout",
    "create_bins",
    "create_bins_with_layout_choice",
    "layout_covers_all_bin_pairs",
    "GeneralBinningResult",
    "create_general_bins",
    "BinRetriever",
    "RetrievalDecision",
    "OwnerMetadata",
    "BinningPlan",
    "plan_binning",
    "ExecutionTrace",
    "NaivePartitionedEngine",
    "QueryBinningEngine",
]
