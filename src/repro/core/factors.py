"""Approximately-square factorisation (Algorithm 1's first step).

QB sizes its bins from two *approximately square factors* ``x >= y`` of the
number of non-sensitive values ``|NS|``: ``x`` becomes the number of sensitive
bins (and the nominal size of each non-sensitive bin) and ``y`` the nominal
size of each sensitive bin.  When ``|NS|`` factors badly (e.g. a prime or
``2 × large-prime``), the paper's "simple extension" instead bins against the
nearest square number, so this module also exposes the candidate layouts the
planner compares.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.exceptions import BinningError


def approx_square_factors(n: int) -> Tuple[int, int]:
    """Return the pair of factors ``(x, y)`` of ``n`` with ``x >= y`` whose
    difference is minimal (the paper's *approximately square factors*).

    For example ``approx_square_factors(16) == (4, 4)``,
    ``approx_square_factors(10) == (5, 2)``, and for a prime ``p`` the only
    factorisation is ``(p, 1)``.
    """
    if n <= 0:
        raise BinningError(f"cannot factor a non-positive count: {n}")
    for y in range(int(math.isqrt(n)), 0, -1):
        if n % y == 0:
            return n // y, y
    raise BinningError(f"no factorisation found for {n}")  # pragma: no cover


def nearest_square(n: int) -> int:
    """The square number nearest to ``n`` (ties round down, as 81 is to 82)."""
    if n <= 0:
        raise BinningError(f"cannot take nearest square of non-positive {n}")
    root = math.isqrt(n)
    below, above = root * root, (root + 1) * (root + 1)
    if abs(n - below) <= abs(above - n):
        return below
    return above


def square_side(n: int) -> int:
    """Side length of the nearest square to ``n`` (≈ √n)."""
    return max(1, math.isqrt(nearest_square(n)))


def factor_candidates(num_non_sensitive: int, num_sensitive: int) -> List[Tuple[int, int]]:
    """Candidate ``(num_sensitive_bins, num_non_sensitive_bins)`` layouts.

    Two candidates are generated, mirroring §IV-A's "simple extension":

    * the exact approximately-square factorisation of ``|NS|``
      (``x`` sensitive bins, ``|NS| / x`` non-sensitive bins), and
    * the nearest-square layout (``⌈√|NS|⌉``-ish bins on both sides).

    The planner evaluates both with the retrieval-cost metric and keeps the
    cheaper one.  Layouts are constrained so that every bin index referenced
    by the retrieval rules exists: the number of non-sensitive bins is always
    at least the maximum sensitive-bin size and vice versa (guaranteed by
    construction because capacities cover ``max(|S|, |NS|)``).
    """
    if num_non_sensitive <= 0:
        raise BinningError("need at least one non-sensitive value to build bins")
    if num_sensitive < 0:
        raise BinningError("the number of sensitive values cannot be negative")

    candidates: List[Tuple[int, int]] = []

    x, y = approx_square_factors(num_non_sensitive)
    exact = (x, max(1, math.ceil(num_non_sensitive / x)))
    candidates.append(exact)

    side = square_side(num_non_sensitive)
    square_bins = max(1, math.ceil(num_non_sensitive / side))
    square_candidate = (side, square_bins)
    if square_candidate not in candidates:
        candidates.append(square_candidate)

    # Make sure every candidate can actually host all sensitive values with
    # bin sizes no larger than the number of bins on the opposite side.
    feasible = []
    for sensitive_bins, non_sensitive_bins in candidates:
        sensitive_bin_size = math.ceil(num_sensitive / sensitive_bins) if num_sensitive else 0
        non_sensitive_bin_size = math.ceil(num_non_sensitive / non_sensitive_bins)
        if sensitive_bin_size <= non_sensitive_bins and non_sensitive_bin_size <= sensitive_bins:
            feasible.append((sensitive_bins, non_sensitive_bins))
    if not feasible:
        # Fall back to a square-ish layout large enough for both sides.
        side = max(square_side(num_non_sensitive), square_side(max(num_sensitive, 1)))
        while side * side < max(num_non_sensitive, num_sensitive):
            side += 1
        feasible.append((side, side))
    return feasible
