"""Bin data structures shared by the base-case and general-case constructions.

A :class:`Bin` is an ordered sequence of *slots*; a slot holds a value or is
empty (``None``).  Positions matter: Algorithm 2's retrieval rules pair the
*position* of a value inside one side's bin with the *index* of the bin to be
retrieved on the other side, so the layout keeps explicit position maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import BinningError


@dataclass
class Bin:
    """A single bin: an index and its (possibly partially filled) slots."""

    index: int
    slots: List[Optional[object]] = field(default_factory=list)

    @property
    def values(self) -> Tuple[object, ...]:
        """The non-empty slot contents in position order."""
        return tuple(value for value in self.slots if value is not None)

    @property
    def size(self) -> int:
        """Number of values currently held (empty slots excluded)."""
        return len(self.values)

    def position_of(self, value: object) -> int:
        """Slot position of ``value``; raises if absent."""
        for position, slot in enumerate(self.slots):
            if slot == value:
                return position
        raise BinningError(f"value {value!r} not found in bin {self.index}")

    def place(self, position: int, value: object) -> None:
        """Put ``value`` at ``position``, growing the slot list as needed."""
        if position < 0:
            raise BinningError(f"negative slot position {position}")
        while len(self.slots) <= position:
            self.slots.append(None)
        if self.slots[position] is not None and self.slots[position] != value:
            raise BinningError(
                f"slot {position} of bin {self.index} already holds "
                f"{self.slots[position]!r}"
            )
        self.slots[position] = value

    def append(self, value: object) -> int:
        """Put ``value`` in the first empty slot (or a new one); returns it."""
        for position, slot in enumerate(self.slots):
            if slot is None:
                self.slots[position] = value
                return position
        self.slots.append(value)
        return len(self.slots) - 1

    def __contains__(self, value: object) -> bool:
        return any(slot == value for slot in self.slots if slot is not None)

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return self.size


class BinLayout:
    """The complete QB layout for one searchable attribute.

    The layout records, for the sensitive and the non-sensitive side, the list
    of bins and a value → (bin index, position) map, plus the number of fake
    tuples each sensitive bin needs (general case only; zero in the base
    case).
    """

    def __init__(
        self,
        sensitive_bins: Sequence[Bin],
        non_sensitive_bins: Sequence[Bin],
        fake_tuples: Optional[Dict[int, int]] = None,
        attribute: Optional[str] = None,
    ):
        self.sensitive_bins: List[Bin] = list(sensitive_bins)
        self.non_sensitive_bins: List[Bin] = list(non_sensitive_bins)
        self.fake_tuples: Dict[int, int] = dict(fake_tuples or {})
        self.attribute = attribute
        self._sensitive_location: Dict[object, Tuple[int, int]] = {}
        self._non_sensitive_location: Dict[object, Tuple[int, int]] = {}
        #: bumped on every (re)build of the location maps, so caches keyed on
        #: retrieval decisions (e.g. in BinRetriever) can detect mutation by
        #: the incremental inserter without holding references into the bins.
        self.version = 0
        self._rebuild_locations()

    # -- construction helpers --------------------------------------------------
    def _rebuild_locations(self) -> None:
        self.version += 1
        self._sensitive_location.clear()
        self._non_sensitive_location.clear()
        for bin_ in self.sensitive_bins:
            for position, value in enumerate(bin_.slots):
                if value is None:
                    continue
                if value in self._sensitive_location:
                    raise BinningError(
                        f"sensitive value {value!r} placed in more than one bin"
                    )
                self._sensitive_location[value] = (bin_.index, position)
        for bin_ in self.non_sensitive_bins:
            for position, value in enumerate(bin_.slots):
                if value is None:
                    continue
                if value in self._non_sensitive_location:
                    raise BinningError(
                        f"non-sensitive value {value!r} placed in more than one bin"
                    )
                self._non_sensitive_location[value] = (bin_.index, position)

    # -- basic accessors -----------------------------------------------------------
    @property
    def num_sensitive_bins(self) -> int:
        return len(self.sensitive_bins)

    @property
    def num_non_sensitive_bins(self) -> int:
        return len(self.non_sensitive_bins)

    @property
    def max_sensitive_bin_size(self) -> int:
        return max((b.size for b in self.sensitive_bins), default=0)

    @property
    def max_non_sensitive_bin_size(self) -> int:
        return max((b.size for b in self.non_sensitive_bins), default=0)

    @property
    def sensitive_values(self) -> Tuple[object, ...]:
        return tuple(self._sensitive_location)

    @property
    def non_sensitive_values(self) -> Tuple[object, ...]:
        return tuple(self._non_sensitive_location)

    def sensitive_bin(self, index: int) -> Bin:
        try:
            return self.sensitive_bins[index]
        except IndexError:
            raise BinningError(f"no sensitive bin with index {index}") from None

    def non_sensitive_bin(self, index: int) -> Bin:
        try:
            return self.non_sensitive_bins[index]
        except IndexError:
            raise BinningError(f"no non-sensitive bin with index {index}") from None

    def locate_sensitive(self, value: object) -> Optional[Tuple[int, int]]:
        """(bin index, position) of a sensitive value, or ``None``."""
        return self._sensitive_location.get(value)

    def locate_non_sensitive(self, value: object) -> Optional[Tuple[int, int]]:
        """(bin index, position) of a non-sensitive value, or ``None``."""
        return self._non_sensitive_location.get(value)

    def __contains__(self, value: object) -> bool:
        return (
            value in self._sensitive_location or value in self._non_sensitive_location
        )

    # -- invariants -------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants Algorithm 2 relies on.

        * every sensitive value sits at a position smaller than the number of
          non-sensitive bins (so rule R1 always points at an existing bin);
        * every non-sensitive value sits at a position smaller than the number
          of sensitive bins (rule R2 symmetric condition);
        * whenever a value appears on both sides (an *associated* value), the
          placement is transpose-consistent: if it is the ``j``-th value of
          sensitive bin ``i``, it must live in non-sensitive bin ``j`` — this
          is what guarantees that the two retrieved bins share the value.
        """
        for value, (bin_index, position) in self._sensitive_location.items():
            if position >= self.num_non_sensitive_bins:
                raise BinningError(
                    f"sensitive value {value!r} at position {position} of bin "
                    f"{bin_index} has no matching non-sensitive bin"
                )
        for value, (bin_index, position) in self._non_sensitive_location.items():
            if position >= self.num_sensitive_bins:
                raise BinningError(
                    f"non-sensitive value {value!r} at position {position} of bin "
                    f"{bin_index} has no matching sensitive bin"
                )
        for value, (s_bin, s_pos) in self._sensitive_location.items():
            ns_location = self._non_sensitive_location.get(value)
            if ns_location is None:
                continue
            ns_bin, ns_pos = ns_location
            if ns_bin != s_pos or ns_pos != s_bin:
                raise BinningError(
                    f"associated value {value!r}: sensitive placement "
                    f"(bin {s_bin}, pos {s_pos}) is not the transpose of the "
                    f"non-sensitive placement (bin {ns_bin}, pos {ns_pos})"
                )

    def describe(self) -> str:
        """A human-readable dump of the layout (used by examples)."""
        lines = [f"BinLayout(attribute={self.attribute!r})"]
        for bin_ in self.sensitive_bins:
            fake = self.fake_tuples.get(bin_.index, 0)
            suffix = f" (+{fake} fake tuples)" if fake else ""
            lines.append(f"  SB{bin_.index}: {list(bin_.values)}{suffix}")
        for bin_ in self.non_sensitive_bins:
            lines.append(f"  NSB{bin_.index}: {list(bin_.values)}")
        return "\n".join(lines)
