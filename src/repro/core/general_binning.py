"""General-case bin creation (§IV-B): multiple values with multiple tuples.

When different values have different numbers of tuples, the base-case layout
becomes vulnerable to size and frequency-count attacks: the adversary can tell
bins apart by how many tuples they return.  The paper's remedy is two-fold:

* pack sensitive values into bins so that tuple counts are as balanced as
  possible (sort by count, give each bin one heavy hitter, then repeatedly add
  the next value to the currently-lightest non-full bin — Figure 5b), and
* pad every sensitive bin with encrypted *fake tuples* up to the heaviest
  bin's count so all sensitive bins return identical numbers of tuples.

Non-sensitive values need no padding: their counts are public anyway, and the
adversary cannot tell which sensitive bin is associated with a non-sensitive
value as long as the sensitive counts are uniform.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bins import Bin, BinLayout
from repro.core.binning import place_non_sensitive_values
from repro.core.factors import approx_square_factors
from repro.crypto.primitives import SecretKey, keyed_permutation
from repro.exceptions import BinningError


@dataclass
class GeneralBinningResult:
    """The outcome of the general-case construction.

    Attributes
    ----------
    layout:
        The bin layout (value placement) — structurally identical to the base
        case, so Algorithm 2 retrieval applies unchanged.
    fake_tuples:
        Per-sensitive-bin number of fake encrypted tuples required to make
        every sensitive bin hold ``target_tuples_per_bin`` tuples.
    tuples_per_bin:
        Real tuple count of each sensitive bin before padding.
    target_tuples_per_bin:
        The padded size every sensitive bin reaches.
    """

    layout: BinLayout
    fake_tuples: Dict[int, int]
    tuples_per_bin: Dict[int, int]
    target_tuples_per_bin: int

    @property
    def total_fake_tuples(self) -> int:
        return sum(self.fake_tuples.values())


def create_general_bins(
    sensitive_counts: Mapping[object, int],
    non_sensitive_counts: Mapping[object, int],
    num_sensitive_bins: Optional[int] = None,
    num_non_sensitive_bins: Optional[int] = None,
    permutation_key: Optional[SecretKey] = None,
    rng: Optional[random.Random] = None,
    attribute: Optional[str] = None,
) -> GeneralBinningResult:
    """Build bins for values with arbitrary tuple multiplicities.

    Parameters
    ----------
    sensitive_counts:
        ``{value: number of sensitive tuples}`` for every distinct sensitive
        value of the searchable attribute.
    non_sensitive_counts:
        ``{value: number of non-sensitive tuples}``; only the keys influence
        the layout (non-sensitive counts are public), the counts are kept for
        the planner's cost estimates.
    num_sensitive_bins / num_non_sensitive_bins:
        Optional explicit layout, as in :func:`repro.core.binning.create_bins`.
    """
    sensitive_values = list(sensitive_counts)
    non_sensitive_values = list(non_sensitive_counts)
    if not sensitive_values and not non_sensitive_values:
        raise BinningError("cannot build bins with no values at all")
    for value, count in sensitive_counts.items():
        if count < 0:
            raise BinningError(f"negative tuple count for sensitive value {value!r}")

    x, z = _resolve_general_layout(
        len(sensitive_values),
        len(non_sensitive_values),
        num_sensitive_bins,
        num_non_sensitive_bins,
    )

    capacity = max(1, math.ceil(len(sensitive_values) / x)) if sensitive_values else 0
    if capacity > z and sensitive_values:
        z = capacity

    sensitive_bins, tuples_per_bin = _pack_sensitive_bins(
        sensitive_counts, x, capacity, permutation_key, rng
    )

    non_sensitive_bins = place_non_sensitive_values(
        sensitive_bins, non_sensitive_values, num_non_sensitive_bins=z, slot_limit=x
    )

    target = max(tuples_per_bin.values(), default=0)
    fake_tuples = {
        index: target - count for index, count in tuples_per_bin.items()
    }

    layout = BinLayout(
        sensitive_bins=sensitive_bins,
        non_sensitive_bins=non_sensitive_bins,
        fake_tuples=fake_tuples,
        attribute=attribute,
    )
    layout.validate()
    return GeneralBinningResult(
        layout=layout,
        fake_tuples=fake_tuples,
        tuples_per_bin=tuples_per_bin,
        target_tuples_per_bin=target,
    )


def _resolve_general_layout(
    num_sensitive: int,
    num_non_sensitive: int,
    num_sensitive_bins: Optional[int],
    num_non_sensitive_bins: Optional[int],
) -> Tuple[int, int]:
    """Layout resolution mirroring the base case (factor |NS|)."""
    if num_sensitive_bins is not None and num_non_sensitive_bins is not None:
        return num_sensitive_bins, num_non_sensitive_bins
    basis = max(num_non_sensitive, 1)
    x, _y = approx_square_factors(basis)
    if num_sensitive_bins is not None:
        x = num_sensitive_bins
    z = num_non_sensitive_bins or max(1, math.ceil(basis / x))
    return x, z


def _pack_sensitive_bins(
    sensitive_counts: Mapping[object, int],
    num_bins: int,
    capacity: int,
    permutation_key: Optional[SecretKey],
    rng: Optional[random.Random],
) -> Tuple[List[Bin], Dict[int, int]]:
    """Greedy balanced packing of weighted sensitive values into bins.

    Values are sorted by tuple count (descending); the ``num_bins`` heaviest
    seed one bin each; every further value goes to the currently lightest bin
    that still has a free slot.  Ties between equal counts are broken by a
    secret permutation so the adversary cannot reconstruct the packing from
    public value order.
    """
    bins = [Bin(index=i) for i in range(num_bins)]
    totals: Dict[int, int] = {i: 0 for i in range(num_bins)}
    if not sensitive_counts:
        return bins, totals

    values = list(sensitive_counts)
    if rng is not None:
        rng.shuffle(values)
    else:
        values = list(keyed_permutation(values, permutation_key or SecretKey.generate()))
    ordered = sorted(values, key=lambda value: sensitive_counts[value], reverse=True)

    for position, value in enumerate(ordered[:num_bins]):
        bins[position].append(value)
        totals[position] += sensitive_counts[value]

    for value in ordered[num_bins:]:
        candidates = [b.index for b in bins if b.size < capacity]
        if not candidates:
            raise BinningError(
                "sensitive bin capacity exhausted; increase the number of bins"
            )
        lightest = min(candidates, key=lambda index: (totals[index], index))
        bins[lightest].append(value)
        totals[lightest] += sensitive_counts[value]

    return bins, totals
