"""Algorithm 2 — bin retrieval (answering queries).

Given a query value ``w``, the DB owner looks ``w`` up in its bin layout and
decides which *pair* of bins to retrieve:

* **Rule R1** — if ``w`` is the ``j``-th value of sensitive bin ``i``, fetch
  sensitive bin ``i`` and non-sensitive bin ``j``;
* **Rule R2** — otherwise, if ``w`` is the ``j``-th value of non-sensitive bin
  ``i``, fetch non-sensitive bin ``i`` and sensitive bin ``j``;
* if ``w`` is in neither side, nothing needs to be retrieved.

Following these rules for *every* query — including values that exist on only
one side — is what keeps every sensitive bin associated with every
non-sensitive bin and prevents the leakage of Example 4 / Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bins import BinLayout
from repro.exceptions import BinLookupError
from repro.query.selection import BinnedQuery, SelectionQuery


@dataclass(frozen=True)
class RetrievalDecision:
    """Which bins Algorithm 2 decided to fetch for a query value."""

    query_value: object
    rule: str  # "R1", "R2", or "none"
    sensitive_bin_index: Optional[int]
    non_sensitive_bin_index: Optional[int]
    sensitive_values: Tuple[object, ...]
    non_sensitive_values: Tuple[object, ...]

    @property
    def retrieves_anything(self) -> bool:
        return self.rule != "none"

    @property
    def bin_pair(self) -> Optional[Tuple[int, int]]:
        """The (sensitive bin, non-sensitive bin) pair this decision fetches,
        or ``None`` when nothing is retrieved.

        This pair is what the adversary reconstructs by grouping identical
        requests (see :meth:`BinRetriever.associated_bin_pairs`) and what
        shard routing must never co-locate on one fleet member.
        """
        if not self.retrieves_anything:
            return None
        return (self.sensitive_bin_index, self.non_sensitive_bin_index)


class BinRetriever:
    """Owner-side implementation of Algorithm 2 over a fixed layout.

    Decisions are pure functions of (layout, value), so they are memoised;
    the cache self-invalidates when the layout's location maps are rebuilt
    (tracked through ``layout.version``), which the incremental inserter
    triggers when it places new values.
    """

    def __init__(self, layout: BinLayout):
        self.layout = layout
        self._decision_cache: Dict[object, RetrievalDecision] = {}
        self._cached_layout_version = layout.version

    def retrieve(self, value: object) -> RetrievalDecision:
        """Apply rules R1/R2 to ``value`` and return the (memoised) decision."""
        if self._cached_layout_version != self.layout.version:
            self._decision_cache.clear()
            self._cached_layout_version = self.layout.version
        try:
            cached = self._decision_cache.get(value)
        except TypeError:  # unhashable query value: fall through uncached
            return self._retrieve_uncached(value)
        if cached is None:
            cached = self._retrieve_uncached(value)
            self._decision_cache[value] = cached
        return cached

    def retrieve_many(self, values: Iterable[object]) -> List[RetrievalDecision]:
        """Decisions for a whole workload (batch-rewrite entry point)."""
        return [self.retrieve(value) for value in values]

    def _retrieve_uncached(self, value: object) -> RetrievalDecision:
        sensitive_location = self.layout.locate_sensitive(value)
        if sensitive_location is not None:
            bin_index, position = sensitive_location
            return self._decision(value, "R1", bin_index, position)

        non_sensitive_location = self.layout.locate_non_sensitive(value)
        if non_sensitive_location is not None:
            bin_index, position = non_sensitive_location
            return self._decision(value, "R2", position, bin_index)

        return RetrievalDecision(
            query_value=value,
            rule="none",
            sensitive_bin_index=None,
            non_sensitive_bin_index=None,
            sensitive_values=(),
            non_sensitive_values=(),
        )

    def _decision(
        self, value: object, rule: str, sensitive_index: int, non_sensitive_index: int
    ) -> RetrievalDecision:
        if sensitive_index >= self.layout.num_sensitive_bins:
            raise BinLookupError(
                f"rule {rule} points at missing sensitive bin {sensitive_index}"
            )
        if non_sensitive_index >= self.layout.num_non_sensitive_bins:
            raise BinLookupError(
                f"rule {rule} points at missing non-sensitive bin {non_sensitive_index}"
            )
        sensitive_bin = self.layout.sensitive_bin(sensitive_index)
        non_sensitive_bin = self.layout.non_sensitive_bin(non_sensitive_index)
        return RetrievalDecision(
            query_value=value,
            rule=rule,
            sensitive_bin_index=sensitive_index,
            non_sensitive_bin_index=non_sensitive_index,
            sensitive_values=sensitive_bin.values,
            non_sensitive_values=non_sensitive_bin.values,
        )

    def rewrite(self, query: SelectionQuery) -> BinnedQuery:
        """Rewrite a selection query into its binned form."""
        decision = self.retrieve(query.value)
        return BinnedQuery(
            original=query,
            sensitive_values=decision.sensitive_values,
            non_sensitive_values=decision.non_sensitive_values,
            sensitive_bin_index=decision.sensitive_bin_index,
            non_sensitive_bin_index=decision.non_sensitive_bin_index,
        )

    # -- exhaustive analysis helpers (used by the security auditor) -------------
    def all_decisions(self) -> List[RetrievalDecision]:
        """The retrieval decision for every value known to the layout."""
        decisions = []
        seen = set()
        for value in self.layout.sensitive_values + self.layout.non_sensitive_values:
            if value in seen:
                continue
            seen.add(value)
            decisions.append(self.retrieve(value))
        return decisions

    def associated_bin_pairs(self) -> Dict[Tuple[int, int], List[object]]:
        """Which (sensitive bin, non-sensitive bin) pairs answering all values
        would associate, and for which query values.

        The paper's security argument requires this map to cover *every* pair
        once all values have been queried — see
        :class:`repro.adversary.surviving_matches.SurvivingMatchAnalysis`.
        """
        pairs: Dict[Tuple[int, int], List[object]] = {}
        for decision in self.all_decisions():
            key = decision.bin_pair
            if key is None:
                continue
            pairs.setdefault(key, []).append(decision.query_value)
        return pairs
