"""Algorithm 1 — bin creation for the base case (§IV-A).

The base case assumes the association between sensitive and non-sensitive
values is at most 1:1: a value may have a sensitive tuple, a non-sensitive
tuple, or one of each, but never two tuples on the same side.  Bin creation
then proceeds in three steps:

1. factor ``|NS|`` into approximately square factors ``x ≥ y`` (or use the
   nearest-square layout when that is cheaper — the "simple extension");
2. secretly permute the sensitive values and deal them round-robin into the
   ``x`` sensitive bins;
3. place every *associated* non-sensitive value at the transposed position
   (the ``j``-th value of sensitive bin ``i`` sends its partner to position
   ``i`` of non-sensitive bin ``j``) and fill the remaining non-sensitive
   values into the remaining slots.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bins import Bin, BinLayout
from repro.core.factors import approx_square_factors, factor_candidates
from repro.crypto.primitives import SecretKey, keyed_permutation
from repro.exceptions import BinningError


def create_bins(
    sensitive_values: Sequence[object],
    non_sensitive_values: Sequence[object],
    num_sensitive_bins: Optional[int] = None,
    num_non_sensitive_bins: Optional[int] = None,
    permutation_key: Optional[SecretKey] = None,
    rng: Optional[random.Random] = None,
    attribute: Optional[str] = None,
) -> BinLayout:
    """Create the QB bins for the base case.

    Parameters
    ----------
    sensitive_values / non_sensitive_values:
        The *distinct* values appearing in the sensitive / non-sensitive
        partition of the searchable attribute.  Values appearing on both
        sides are the "associated" values.
    num_sensitive_bins / num_non_sensitive_bins:
        Optional explicit layout; when omitted, the approximately-square
        factorisation of ``|NS|`` is used (Algorithm 1 lines 3-4).
    permutation_key:
        Key for the secret permutation of sensitive values (Algorithm 1
        line 2).  When ``None`` and ``rng`` is also ``None``, a fresh random
        key is generated.
    rng:
        Alternative to ``permutation_key`` for deterministic tests: a
        ``random.Random`` used to shuffle the sensitive values.
    attribute:
        Optional attribute name recorded on the layout.
    """
    sensitive = _deduplicate(sensitive_values)
    non_sensitive = _deduplicate(non_sensitive_values)
    if not non_sensitive and not sensitive:
        raise BinningError("cannot build bins with no values at all")
    if not non_sensitive:
        # Degenerate case: everything is sensitive.  A single non-sensitive
        # "bin" with no values keeps the retrieval machinery uniform.
        non_sensitive = []

    x, z = _resolve_layout(
        len(sensitive), len(non_sensitive), num_sensitive_bins, num_non_sensitive_bins
    )

    permuted_sensitive = _permute(sensitive, permutation_key, rng)

    sensitive_bins = [Bin(index=i) for i in range(x)]
    for position, value in enumerate(permuted_sensitive):
        sensitive_bins[position % x].append(value)

    non_sensitive_bins = place_non_sensitive_values(
        sensitive_bins, non_sensitive, num_non_sensitive_bins=z, slot_limit=x
    )

    layout = BinLayout(
        sensitive_bins=sensitive_bins,
        non_sensitive_bins=non_sensitive_bins,
        attribute=attribute,
    )
    layout.validate()
    return layout


def layout_covers_all_bin_pairs(layout: BinLayout) -> bool:
    """Check the all-pairs surviving-match property of a layout.

    A pair (sensitive bin ``i``, non-sensitive bin ``j``) is *covered* when
    some query retrieves exactly those two bins: rule R1 does so when the
    sensitive bin has a value at slot ``j``; rule R2 when the non-sensitive
    bin has a value at slot ``i``.  Pairs involving an empty bin are ignored
    (an empty bin holds no tuples and never appears in an adversarial view).
    """
    for i, sensitive_bin in enumerate(layout.sensitive_bins):
        if sensitive_bin.size == 0:
            continue
        for j, non_sensitive_bin in enumerate(layout.non_sensitive_bins):
            if non_sensitive_bin.size == 0:
                continue
            covered_r1 = (
                j < len(sensitive_bin.slots) and sensitive_bin.slots[j] is not None
            )
            covered_r2 = (
                i < len(non_sensitive_bin.slots)
                and non_sensitive_bin.slots[i] is not None
            )
            if not (covered_r1 or covered_r2):
                return False
    return True


def create_bins_with_layout_choice(
    sensitive_values: Sequence[object],
    non_sensitive_values: Sequence[object],
    permutation_key: Optional[SecretKey] = None,
    rng: Optional[random.Random] = None,
    attribute: Optional[str] = None,
) -> BinLayout:
    """Build bins with the cheapest *secure* layout (the "simple extension").

    Both the exact approximately-square factorisation and the nearest-square
    layout are constructed; candidates are tried in order of per-query
    retrieval width (``|SB| + |NSB|`` values), and the first one that keeps
    the all-pairs surviving-match property wins.  The exact factorisation is
    always such a layout (every non-sensitive bin is completely full), so the
    search always succeeds.
    """
    sensitive = _deduplicate(sensitive_values)
    non_sensitive = _deduplicate(non_sensitive_values)
    candidates = factor_candidates(max(len(non_sensitive), 1), len(sensitive))
    scored: List[Tuple[int, Tuple[int, int]]] = []
    for sensitive_bins, non_sensitive_bins in candidates:
        sensitive_width = math.ceil(len(sensitive) / sensitive_bins) if sensitive else 0
        non_sensitive_width = math.ceil(len(non_sensitive) / non_sensitive_bins) if non_sensitive else 0
        scored.append((sensitive_width + non_sensitive_width, (sensitive_bins, non_sensitive_bins)))
    scored.sort(key=lambda item: item[0])

    fallback: Optional[BinLayout] = None
    for _cost, (chosen_sensitive_bins, chosen_non_sensitive_bins) in scored:
        layout = create_bins(
            sensitive,
            non_sensitive,
            num_sensitive_bins=chosen_sensitive_bins,
            num_non_sensitive_bins=chosen_non_sensitive_bins,
            permutation_key=permutation_key,
            rng=rng,
            attribute=attribute,
        )
        if layout_covers_all_bin_pairs(layout):
            return layout
        if fallback is None:
            fallback = layout
    assert fallback is not None  # factor_candidates never returns an empty list
    return fallback


def place_non_sensitive_values(
    sensitive_bins: Sequence[Bin],
    non_sensitive_values: Sequence[object],
    num_non_sensitive_bins: int,
    slot_limit: int,
) -> List[Bin]:
    """Place non-sensitive values given already-built sensitive bins.

    Implements Algorithm 1 lines 6-7: associated values go to the transposed
    slot (value at position ``j`` of sensitive bin ``i`` → position ``i`` of
    non-sensitive bin ``j``), then the non-associated values fill the free
    slots, with every non-sensitive bin capped at ``slot_limit`` values.

    The same routine serves the general case (§IV-B), which only changes how
    the *sensitive* bins are packed.
    """
    non_sensitive_bins = [Bin(index=j) for j in range(num_non_sensitive_bins)]
    non_sensitive_set = set(non_sensitive_values)
    placed: set = set()

    for bin_ in sensitive_bins:
        for position, value in enumerate(bin_.slots):
            if value is None or value not in non_sensitive_set:
                continue
            if position >= num_non_sensitive_bins:
                raise BinningError(
                    f"layout too small: sensitive bin {bin_.index} has a value at "
                    f"position {position} but only {num_non_sensitive_bins} "
                    f"non-sensitive bins exist"
                )
            non_sensitive_bins[position].place(bin_.index, value)
            placed.add(value)

    leftovers = [value for value in non_sensitive_values if value not in placed]
    _fill_leftovers(
        non_sensitive_bins, leftovers, slot_limit=slot_limit, sensitive_bins=sensitive_bins
    )
    return non_sensitive_bins


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _deduplicate(values: Iterable[object]) -> List[object]:
    seen: Dict[object, None] = {}
    for value in values:
        seen.setdefault(value, None)
    return list(seen)


def _permute(
    values: Sequence[object],
    permutation_key: Optional[SecretKey],
    rng: Optional[random.Random],
) -> List[object]:
    if rng is not None:
        shuffled = list(values)
        rng.shuffle(shuffled)
        return shuffled
    key = permutation_key or SecretKey.generate()
    return list(keyed_permutation(values, key))


def _resolve_layout(
    num_sensitive: int,
    num_non_sensitive: int,
    num_sensitive_bins: Optional[int],
    num_non_sensitive_bins: Optional[int],
) -> Tuple[int, int]:
    """Determine (number of sensitive bins, number of non-sensitive bins)."""
    if num_sensitive_bins is not None and num_sensitive_bins < 1:
        raise BinningError("num_sensitive_bins must be positive")
    if num_non_sensitive_bins is not None and num_non_sensitive_bins < 1:
        raise BinningError("num_non_sensitive_bins must be positive")

    if num_sensitive_bins is None and num_non_sensitive_bins is None:
        basis = max(num_non_sensitive, 1)
        x, _y = approx_square_factors(basis)
        z = max(1, math.ceil(basis / x))
    elif num_sensitive_bins is not None and num_non_sensitive_bins is None:
        x = num_sensitive_bins
        z = max(1, math.ceil(max(num_non_sensitive, 1) / x))
    elif num_sensitive_bins is None and num_non_sensitive_bins is not None:
        z = num_non_sensitive_bins
        x = max(1, math.ceil(max(num_non_sensitive, 1) / z))
    else:
        x, z = num_sensitive_bins, num_non_sensitive_bins  # type: ignore[assignment]

    # Feasibility: sensitive bins must not be deeper than the number of
    # non-sensitive bins, and non-sensitive bins not wider than the number of
    # sensitive bins (otherwise Algorithm 2 would point at missing bins).
    sensitive_depth = math.ceil(num_sensitive / x) if num_sensitive else 0
    if sensitive_depth > z:
        z = sensitive_depth
    non_sensitive_width = math.ceil(num_non_sensitive / z) if num_non_sensitive else 0
    if non_sensitive_width > x:
        x = non_sensitive_width
    return x, z


def _fill_leftovers(
    non_sensitive_bins: List[Bin],
    leftovers: Sequence[object],
    slot_limit: int,
    sensitive_bins: Sequence[Bin] = (),
) -> None:
    """Fill non-associated non-sensitive values into free slots.

    Bins are filled in index order; each bin may use at most ``slot_limit``
    slots.  Within a bin, free positions whose (sensitive bin, non-sensitive
    bin) pair is *not* already covered by rule R1 are filled first: when a
    non-sensitive bin ends up underfull (the nearest-square layouts leave a
    few holes), the holes then land on positions whose pair is still reached
    through the sensitive side, preserving the all-pairs surviving-match
    property Algorithm 2 relies on.

    Raises when capacity is insufficient (should not happen for layouts
    produced by :func:`_resolve_layout`).
    """
    remaining = list(leftovers)

    def covered_by_r1(position: int, bin_index: int) -> bool:
        """Is pair (sensitive bin `position`, non-sensitive bin `bin_index`)
        already reached by rule R1 (the sensitive bin has a value at slot
        `bin_index`)?"""
        if position >= len(sensitive_bins):
            return False
        slots = sensitive_bins[position].slots
        return bin_index < len(slots) and slots[bin_index] is not None

    # Enumerate all free cells, splitting them into cells whose bin pair is
    # not yet reachable through rule R1 (these must be filled first, so any
    # holes that remain sit on pairs the sensitive side already covers) and
    # the already-covered remainder.
    must_fill: List[Tuple[int, int]] = []
    may_fill: List[Tuple[int, int]] = []
    for bin_ in non_sensitive_bins:
        while len(bin_.slots) < slot_limit:
            bin_.slots.append(None)
        for position in range(slot_limit):
            if bin_.slots[position] is not None:
                continue
            cell = (bin_.index, position)
            if covered_by_r1(position, bin_.index):
                may_fill.append(cell)
            else:
                must_fill.append(cell)

    for bin_index, position in must_fill + may_fill:
        if not remaining:
            break
        non_sensitive_bins[bin_index].slots[position] = remaining.pop(0)

    for bin_ in non_sensitive_bins:
        # Drop trailing empty slots so bin sizes reflect actual contents.
        while bin_.slots and bin_.slots[-1] is None:
            bin_.slots.pop()

    if remaining:
        raise BinningError(
            f"{len(remaining)} non-sensitive values did not fit into the layout"
        )
