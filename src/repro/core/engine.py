"""End-to-end query engines over a partitioned relation.

Two engines are provided:

* :class:`QueryBinningEngine` — the paper's contribution: builds bins at
  setup time, pads sensitive bins with fake encrypted tuples when needed,
  outsources both partitions, and answers selection queries by retrieving the
  bin pair chosen by Algorithm 2 and merging/filtering at the owner.
* :class:`NaivePartitionedEngine` — the insecure strawman of §II
  (Example 2 / Table II): the same partitioned storage, but each query is sent
  as-is to both partitions, which leaks associations through the adversarial
  view.  It exists so the examples, tests, and security benchmarks can contrast
  the two.
"""

from __future__ import annotations

import itertools
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.lifecycle import FleetLifecycleManager
from repro.cloud.multi_cloud import MultiCloud, ShardRouter
from repro.cloud.server import BatchRequest, CloudServer, QueryResponse
from repro.core.binning import create_bins, layout_covers_all_bin_pairs
from repro.core.bins import BinLayout
from repro.core.general_binning import create_general_bins
from repro.core.metadata import OwnerMetadata
from repro.core.planner import BinningPlan, plan_binning
from repro.core.retrieval import BinRetriever, RetrievalDecision
from repro.crypto.base import EncryptedRow, EncryptedSearchScheme
from repro.data.partition import PartitionResult
from repro.data.relation import Row
from repro.exceptions import ConfigurationError
from repro.query.merge import group_rows_by_value, merge_results
from repro.query.selection import BinnedQuery, SelectionQuery


@dataclass
class ExecutionTrace:
    """Per-query accounting returned by ``query_with_trace``."""

    query: SelectionQuery
    binned: Optional[BinnedQuery]
    sensitive_values_requested: int
    non_sensitive_values_requested: int
    encrypted_rows_returned: int
    non_sensitive_rows_returned: int
    rows_after_merge: int
    transfer_seconds: float

    @property
    def total_rows_returned(self) -> int:
        return self.encrypted_rows_returned + self.non_sensitive_rows_returned


class _PartitionedEngineBase:
    """Shared plumbing: outsourcing and owner-side decryption/merging."""

    def __init__(
        self,
        partition: PartitionResult,
        attribute: str,
        scheme: EncryptedSearchScheme,
        cloud: Optional[CloudServer] = None,
    ):
        self.partition = partition
        self.attribute = attribute
        self.scheme = scheme
        self.cloud = cloud or CloudServer()
        #: the per-tenant engine lock: one owner-side operation (setup,
        #: query, workload, insert) at a time.  Owner caches — tokens,
        #: interned requests, decrypted bins — are read-and-filled by
        #: queries and *cleared* by inserts; without this lock a mid-query
        #: insert from a second session can clear a cache the query is
        #: iterating.  Re-entrant: workloads nest per-query paths, and the
        #: scheme/metadata objects are owned by exactly one engine.
        self._lock = threading.RLock()
        self._outsourced = False
        self._fake_rid_counter = itertools.count(start=-1, step=-1)
        # Fresh rids for inserted rows must not collide with rids in *either*
        # partition (both descend from the same original relation).
        highest_rid = max(
            [row.rid for row in partition.sensitive]
            + [row.rid for row in partition.non_sensitive]
            + [-1]
        )
        self._insert_rid_counter = itertools.count(start=highest_rid + 1)

    # -- owner-side helpers ------------------------------------------------------
    def _encrypt_sensitive_rows(self) -> List[EncryptedRow]:
        rows = list(self.partition.sensitive.rows)
        if not rows:
            return []
        return self.scheme.encrypt_rows(rows, self.attribute)

    def _make_fake_rows(
        self, layout: BinLayout
    ) -> Tuple[List[EncryptedRow], List[int]]:
        """Create the padding tuples the general case requires.

        Each sensitive bin with a deficit receives fake tuples whose searched
        attribute equals one of the bin's values, so retrieving the bin always
        returns the same (padded) number of encrypted rows.  All fake source
        rows are built first and encrypted in a single batch call; the second
        return value gives each fake's sensitive bin index (parallel to the
        first), feeding the cloud's bin-addressed store.
        """
        sources: List[Row] = []
        source_bins: List[int] = []
        sensitive_rows = list(self.partition.sensitive.rows)
        template_by_value: Dict[object, Row] = {}
        for row in sensitive_rows:
            template_by_value.setdefault(row[self.attribute], row)
        default_template = sensitive_rows[0] if sensitive_rows else None
        for bin_ in layout.sensitive_bins:
            deficit = layout.fake_tuples.get(bin_.index, 0)
            if deficit <= 0 or not bin_.values:
                continue
            anchor_value = bin_.values[0]
            base = template_by_value.get(anchor_value, default_template)
            if base is None:
                continue
            for _ in range(deficit):
                values = dict(base.values)
                values[self.attribute] = anchor_value
                sources.append(
                    Row(rid=next(self._fake_rid_counter), values=values, sensitive=True)
                )
                source_bins.append(bin_.index)
        if not sources:
            return [], []
        return self.scheme.make_fake_rows(self.attribute, sources), source_bins

    def _decrypt_and_merge(
        self, query: SelectionQuery, response: QueryResponse
    ) -> List[Row]:
        sensitive_rows = self.scheme.decrypt_rows(response.encrypted_rows)
        return merge_results(query, sensitive_rows, response.non_sensitive_rows)

    # -- trace construction (shared by sequential and batched execution) ---------
    @staticmethod
    def _empty_trace(query: SelectionQuery) -> ExecutionTrace:
        """The trace of a query whose value retrieves nothing (rule 'none')."""
        return ExecutionTrace(
            query=query,
            binned=None,
            sensitive_values_requested=0,
            non_sensitive_values_requested=0,
            encrypted_rows_returned=0,
            non_sensitive_rows_returned=0,
            rows_after_merge=0,
            transfer_seconds=0.0,
        )

    @staticmethod
    def _trace_for(
        query: SelectionQuery,
        decision: RetrievalDecision,
        response: QueryResponse,
        rows_after_merge: int,
    ) -> ExecutionTrace:
        """The trace of an executed retrieval (one construction site for all paths)."""
        binned = BinnedQuery(
            original=query,
            sensitive_values=decision.sensitive_values,
            non_sensitive_values=decision.non_sensitive_values,
            sensitive_bin_index=decision.sensitive_bin_index,
            non_sensitive_bin_index=decision.non_sensitive_bin_index,
        )
        return ExecutionTrace(
            query=query,
            binned=binned,
            sensitive_values_requested=len(decision.sensitive_values),
            non_sensitive_values_requested=len(decision.non_sensitive_values),
            encrypted_rows_returned=len(response.encrypted_rows),
            non_sensitive_rows_returned=len(response.non_sensitive_rows),
            rows_after_merge=rows_after_merge,
            transfer_seconds=response.transfer_seconds,
        )


class QueryBinningEngine(_PartitionedEngineBase):
    """The Query Binning execution engine.

    Typical usage::

        engine = QueryBinningEngine(partition, attribute="EId", scheme=scheme)
        engine.setup()
        rows = engine.query("E259")

    Parameters
    ----------
    partition:
        The sensitive/non-sensitive split produced by the owner.
    attribute:
        The searchable attribute bins are built for.
    scheme:
        The cryptographic technique protecting the sensitive partition.
    cloud:
        The (simulated) public cloud; a fresh one is created when omitted.
    add_fake_tuples:
        Whether to pad sensitive bins to equal tuple counts (general case).
    rng / permutation_seed:
        Deterministic control over the secret permutation, for tests and
        reproducible benchmarks.
    force_strategy / force_layout:
        Overrides forwarded to the planner (used by the Figure 6c sweep).
    multi_cloud / shard_policy / shard_max_workers:
        Attaching a :class:`MultiCloud` makes ``setup()`` additionally shard
        the encrypted relation across its members (bins assigned by a
        :class:`ShardRouter` under ``shard_policy``) and unlocks
        ``execute_workload(..., placement="sharded")``, which fans request
        halves out to the fleet concurrently.  The single ``cloud`` server
        stays fully populated either way — it is the sequential reference
        the parity tests compare the fleet against.
    replication_factor:
        How many fleet members hold each sensitive bin's slice (primary
        included).  ``k ≥ 2`` lets sharded execution survive up to ``k - 1``
        member failures per bin: the fleet re-routes a failed member's
        in-flight halves to a live replica mid-batch with results, views,
        and statistics identical to a healthy run (degraded mode).  Replica
        placement never co-locates a bin's token slice with its paired
        cleartext traffic, so replication preserves the non-collusion
        guarantee; it costs ``k``× cloud-side ciphertext storage.
    plaintext_cache_bins:
        How many sensitive bins' decrypted rows the owner may keep (FIFO
        eviction; ``None`` = unbounded, ``0`` disables the cache).
    token_cache_bins:
        How many sensitive bins' search tokens — and per-bin-pair interned
        request objects — the owner may keep (FIFO eviction; ``None`` =
        unbounded, ``0`` disables the caches).  Tokens dominate the owner's
        steady-state memory for address-token schemes, so the cap is the
        memory/CPU trade knob on the query-rewrite side.
    """

    def __init__(
        self,
        partition: PartitionResult,
        attribute: str,
        scheme: EncryptedSearchScheme,
        cloud: Optional[CloudServer] = None,
        add_fake_tuples: bool = True,
        rng: Optional[random.Random] = None,
        permutation_seed: Optional[int] = None,
        force_strategy: Optional[str] = None,
        force_layout: Optional[Tuple[int, int]] = None,
        multi_cloud: Optional[MultiCloud] = None,
        shard_policy: str = "hash",
        shard_max_workers: Optional[int] = None,
        replication_factor: int = 1,
        plaintext_cache_bins: Optional[int] = 1024,
        token_cache_bins: Optional[int] = 1024,
    ):
        super().__init__(partition, attribute, scheme, cloud)
        self.add_fake_tuples = add_fake_tuples
        self.multi_cloud = multi_cloud
        self.shard_policy = shard_policy
        self.shard_max_workers = shard_max_workers
        self.replication_factor = replication_factor
        self.shard_router: Optional[ShardRouter] = None
        self._lifecycle: Optional[FleetLifecycleManager] = None
        self._rng = rng if rng is not None else (
            random.Random(permutation_seed) if permutation_seed is not None else None
        )
        self._force_strategy = force_strategy
        self._force_layout = force_layout
        self.metadata: Optional[OwnerMetadata] = None
        self.plan: Optional[BinningPlan] = None
        self.layout: Optional[BinLayout] = None
        self.retriever: Optional[BinRetriever] = None
        self.fake_rows_outsourced = 0
        # Owner-side cache of search tokens per sensitive bin: every query
        # hitting the same bin sends the same token set, so recomputing
        # tokens_for_values per query is pure waste.  Invalidated whenever
        # the scheme's owner metadata can change (setup, sensitive inserts);
        # capped at ``token_cache_bins`` entries (FIFO eviction).
        self._token_cache: Dict[int, List] = {}
        self._token_cache_bins = token_cache_bins
        # Interned BatchRequest per bin pair: a bin pair's request content
        # (cleartext value tuple, token tuple, bin annotations) is a pure
        # function of the layout, so the same frozen request object is
        # re-sent for every query answered from the pair.  Downstream this
        # is what makes the cloud's retrieval interning and the router's
        # candidate memo O(1) per query (identity-hit dict probes).  Keyed
        # to the layout version exactly like the retriever's decision cache,
        # and dropped with the token cache on setup/sensitive inserts.
        self._request_cache: Dict[
            Tuple[Optional[int], Optional[int]], BatchRequest
        ] = {}
        self._request_cache_version: Optional[int] = None
        # Owner-side cache of *decrypted* rows per sensitive bin, the
        # retrieval-side twin of the token cache: a bin's padded ciphertext
        # set is immutable between sensitive inserts, so every retrieval of
        # bin ``i`` decrypts to the same plaintext rows.  Keeping them makes
        # steady-state workload cost scan-bound (the part sharding divides)
        # instead of decryption-bound.  Same invalidation events as the
        # token cache.  The owner deliberately trades memory for CPU here;
        # ``plaintext_cache_bins`` caps how many bins' plaintexts it will
        # hold (FIFO eviction; ``None`` = unbounded).
        self._decrypted_bin_cache: Dict[int, List[Row]] = {}
        self._plaintext_cache_bins = plaintext_cache_bins

    @staticmethod
    def _fifo_put(cache: Dict, key, value, cap: Optional[int]) -> None:
        """Insert into a FIFO-bounded cache.

        ``cap`` semantics shared by every owner-side cache: ``None`` =
        unbounded, ``0`` disables caching entirely, otherwise the oldest
        entry is evicted at the boundary (dicts iterate in insertion order).
        """
        if cap is not None:
            if cap <= 0:
                return
            if len(cache) >= cap:
                cache.pop(next(iter(cache)))
        cache[key] = value

    def _wants_bin_store(self) -> bool:
        """Whether the cloud will use a bin-addressed store for this engine.

        The store applies exactly when encrypted indexes are enabled and the
        scheme has no indexable tags; both the setup and insert paths consult
        this so their bin-assignment bookkeeping can never disagree.
        """
        return self.cloud.use_encrypted_indexes and not self.scheme.supports_tag_index

    # -- setup -----------------------------------------------------------------------
    def setup(self) -> "QueryBinningEngine":
        """Build metadata and bins, encrypt, and outsource both partitions."""
        with self._lock:
            return self._setup_locked()

    def _setup_locked(self) -> "QueryBinningEngine":
        sensitive_counts = dict(self.partition.sensitive.value_counts(self.attribute))
        non_sensitive_counts = dict(
            self.partition.non_sensitive.value_counts(self.attribute)
        )
        self.metadata = OwnerMetadata.from_counts(
            self.attribute, sensitive_counts, non_sensitive_counts
        )
        self.plan = plan_binning(
            self.metadata,
            force_strategy=self._force_strategy,
            force_layout=self._force_layout,
        )

        self.layout = self._build_layout(
            sensitive_counts,
            non_sensitive_counts,
            (self.plan.num_sensitive_bins, self.plan.num_non_sensitive_bins),
        )
        if self._force_layout is None and not layout_covers_all_bin_pairs(self.layout):
            # The planner's preferred (e.g. nearest-square) layout cannot keep
            # every sensitive bin associated with every non-sensitive bin for
            # this data; fall back to the exact factorisation, which always
            # can (every non-sensitive bin is completely full).
            self.layout = self._build_layout(sensitive_counts, non_sensitive_counts, None)
        self.metadata.layout = self.layout
        self.metadata.strategy = self.plan.strategy
        self.retriever = BinRetriever(self.layout)

        encrypted = self._encrypt_sensitive_rows()
        # The bin assignment feeds the cloud's bin-addressed store and the
        # shard router's row placement — skip the O(n) pass when neither
        # consumer is attached.
        needs_bin_assignment = self._wants_bin_store() or self.multi_cloud is not None
        bin_assignment: Optional[Dict[int, int]] = (
            {} if needs_bin_assignment else None
        )
        if bin_assignment is not None:
            for row in self.partition.sensitive.rows:
                location = self.layout.locate_sensitive(row[self.attribute])
                if location is not None:
                    bin_assignment[row.rid] = location[0]
        if self.add_fake_tuples:
            fakes, fake_bins = self._make_fake_rows(self.layout)
            self.fake_rows_outsourced = len(fakes)
            if bin_assignment is not None:
                for fake, bin_index in zip(fakes, fake_bins):
                    bin_assignment[fake.rid] = bin_index
            encrypted = encrypted + fakes

        self.cloud.store_non_sensitive(self.partition.non_sensitive)
        self.cloud.store_sensitive(
            encrypted,
            self.scheme,
            bin_assignment=bin_assignment if self._wants_bin_store() else None,
        )
        self.cloud.build_index(self.attribute)
        if self.multi_cloud is not None:
            assert bin_assignment is not None
            self.shard_router = ShardRouter(
                self.layout.num_sensitive_bins,
                self.layout.num_non_sensitive_bins,
                len(self.multi_cloud),
                policy=self.shard_policy,
                replication_factor=self.replication_factor,
                # a fleet that has seen membership churn keeps its departed
                # slots tombstoned; route (and outsource) around them
                live_members=sorted(self.multi_cloud.live_members),
            )
            self.multi_cloud.outsource_sharded(
                self.attribute,
                self.partition.non_sensitive,
                encrypted,
                self.scheme,
                bin_assignment,
                self.shard_router,
            )
        self._token_cache.clear()
        self._request_cache.clear()
        self._decrypted_bin_cache.clear()
        self._outsourced = True
        return self

    def fleet_lifecycle(
        self,
        probe_timeout: Optional[float] = None,
        validate_transitions: bool = True,
    ) -> FleetLifecycleManager:
        """The lifecycle manager driving this engine's fleet membership.

        Cached per fleet: repeated calls return the same manager (so its
        transition history accumulates), re-synced to the engine's current
        router — a ``setup()`` re-run (re-binning) replaces the router, and
        the manager must drive transitions from the fresh one.  Router
        changes the manager performs are adopted by the engine immediately,
        so sharded execution routes through the new membership from the next
        batch on.  ``probe_timeout`` / ``validate_transitions`` apply when
        the manager is (re)built, not retroactively.
        """
        if self.multi_cloud is None:
            raise ConfigurationError(
                "fleet lifecycle management requires a MultiCloud attached "
                "at construction"
            )
        if self.shard_router is None:
            raise ConfigurationError("call setup() before managing the fleet")
        manager = self._lifecycle
        if manager is None or manager.fleet is not self.multi_cloud:
            fleet = self.multi_cloud

            def adopt_router(router: ShardRouter) -> None:
                self.shard_router = router

            manager = FleetLifecycleManager(
                fleet,
                self.shard_router,
                probe_timeout=probe_timeout,
                validate_transitions=validate_transitions,
                on_router_change=adopt_router,
            )
            self._lifecycle = manager
        elif manager.router is not self.shard_router:
            manager.router = self.shard_router
        return manager

    def _build_layout(
        self,
        sensitive_counts: Dict[object, int],
        non_sensitive_counts: Dict[object, int],
        bin_counts: Optional[Tuple[int, int]],
    ) -> BinLayout:
        """Build a layout with explicit bin counts, or with the defaults."""
        assert self.plan is not None
        num_sensitive_bins, num_non_sensitive_bins = bin_counts or (None, None)
        if self.plan.strategy == "base":
            return create_bins(
                list(sensitive_counts),
                list(non_sensitive_counts),
                num_sensitive_bins=num_sensitive_bins,
                num_non_sensitive_bins=num_non_sensitive_bins,
                rng=self._rng,
                attribute=self.attribute,
            )
        result = create_general_bins(
            sensitive_counts,
            non_sensitive_counts,
            num_sensitive_bins=num_sensitive_bins,
            num_non_sensitive_bins=num_non_sensitive_bins,
            rng=self._rng,
            attribute=self.attribute,
        )
        return result.layout

    def _require_setup(self) -> None:
        if not self._outsourced or self.retriever is None:
            raise ConfigurationError("call setup() before issuing queries")

    # -- querying -----------------------------------------------------------------------
    def rewrite(self, value: object) -> BinnedQuery:
        """Expose the QB rewriting of a query (without executing it)."""
        with self._lock:
            self._require_setup()
            assert self.retriever is not None
            return self.retriever.rewrite(SelectionQuery(self.attribute, value))

    def query(self, value: object) -> List[Row]:
        """Answer ``SELECT * WHERE attribute = value`` securely."""
        rows, _trace = self.query_with_trace(value)
        return rows

    def query_with_trace(self, value: object) -> Tuple[List[Row], ExecutionTrace]:
        """Answer a query and return the execution trace for cost accounting."""
        with self._lock:
            self._require_setup()
            assert self.retriever is not None
            query = SelectionQuery(self.attribute, value)
            decision = self.retriever.retrieve(value)

            if not decision.retrieves_anything:
                return [], self._empty_trace(query)

            response = self.cloud.serve(self.request_for_decision(decision))
            sensitive_rows = self._decrypt_bin(
                decision.sensitive_bin_index, response.encrypted_rows
            )
            rows = merge_results(query, sensitive_rows, response.non_sensitive_rows)
            return rows, self._trace_for(query, decision, response, len(rows))

    def _decrypt_bin(
        self, sensitive_bin_index: Optional[int], encrypted_rows: Sequence[EncryptedRow]
    ) -> List[Row]:
        """Decrypt one retrieval's rows through the per-bin plaintext cache.

        A sensitive bin's (padded) ciphertext set is fixed between sensitive
        inserts, so its decryption is computed once and reused by every
        later retrieval of the bin, whichever placement served it.
        """
        if sensitive_bin_index is None:
            return self.scheme.decrypt_rows(encrypted_rows)
        rows = self._decrypted_bin_cache.get(sensitive_bin_index)
        if rows is None:
            rows = self.scheme.decrypt_rows(encrypted_rows)
            self._fifo_put(
                self._decrypted_bin_cache,
                sensitive_bin_index,
                rows,
                self._plaintext_cache_bins,
            )
        return rows

    def tokens_for_decision(self, decision: RetrievalDecision) -> List:
        """Search tokens for a retrieval decision, cached per sensitive bin.

        Every query landing on sensitive bin ``i`` requests the same value
        set, so its token list is computed once and reused until owner-side
        scheme metadata changes (setup or a sensitive insert).  The cache
        holds at most ``token_cache_bins`` bins (FIFO eviction; ``None`` =
        unbounded, ``0`` disables caching).
        """
        with self._lock:
            if not decision.sensitive_values:
                return []
            bin_index = decision.sensitive_bin_index
            if bin_index is None:
                return self.scheme.tokens_for_values(
                    list(decision.sensitive_values), self.attribute
                )
            tokens = self._token_cache.get(bin_index)
            if tokens is None:
                tokens = self.scheme.tokens_for_values(
                    list(decision.sensitive_values), self.attribute
                )
                self._fifo_put(
                    self._token_cache, bin_index, tokens, self._token_cache_bins
                )
            return tokens

    def request_for_decision(self, decision: RetrievalDecision) -> BatchRequest:
        """The interned cloud request for one retrieval decision.

        A bin pair's request is a pure function of the layout (value sets)
        and the scheme's owner metadata (tokens), so the same frozen
        :class:`BatchRequest` object is reused for every query answered from
        the pair — steady-state queries rewrite with zero tuple building,
        and downstream consumers (the cloud's retrieval interning, the
        router's candidate memo, the fleet's half splitting) hit their
        caches by object identity.  The cache keys to the layout version
        (incremental inserts can grow a bin's value set without a full
        setup) and is cleared with the token cache; entries are capped at
        ``token_cache_bins`` (FIFO).
        """
        with self._lock:
            assert self.layout is not None
            if self._request_cache_version != self.layout.version:
                self._request_cache.clear()
                self._request_cache_version = self.layout.version
            key = (decision.sensitive_bin_index, decision.non_sensitive_bin_index)
            request = self._request_cache.get(key)
            if request is None:
                request = BatchRequest(
                    attribute=self.attribute,
                    cleartext_values=tuple(decision.non_sensitive_values),
                    tokens=tuple(self.tokens_for_decision(decision)),
                    sensitive_bin_index=decision.sensitive_bin_index,
                    non_sensitive_bin_index=decision.non_sensitive_bin_index,
                )
                self._fifo_put(
                    self._request_cache, key, request, self._token_cache_bins
                )
            return request

    def build_requests(
        self, values: Sequence[object]
    ) -> Tuple[List[BatchRequest], List[Optional[RetrievalDecision]]]:
        """Owner-side rewrite of a workload into cloud batch requests.

        Returns the request list plus, per input value, the retrieval
        decision (``None`` when the value retrieves nothing — such values
        produce no request).  Shared by the batched ``execute_workload`` path
        and the benchmark harness so both send the same request stream.
        Requests are interned per bin pair (:meth:`request_for_decision`),
        so a steady-state workload rewrite is a decision memo probe plus a
        request memo probe per query.
        """
        with self._lock:
            self._require_setup()
            assert self.retriever is not None
            requests: List[BatchRequest] = []
            slots: List[Optional[RetrievalDecision]] = []
            for decision in self.retriever.retrieve_many(values):
                if not decision.retrieves_anything:
                    slots.append(None)
                    continue
                requests.append(self.request_for_decision(decision))
                slots.append(decision)
            return requests, slots

    def execute_workload(
        self,
        values: Iterable[object],
        batched: bool = True,
        placement: Optional[str] = None,
    ) -> List[ExecutionTrace]:
        """Run a sequence of selection queries; returns their traces.

        ``placement`` selects the execution strategy (it supersedes the
        legacy ``batched`` flag, which maps to ``"batched"``/``"sequential"``
        when ``placement`` is omitted):

        ``"sequential"``
            one :meth:`CloudServer.process_request` per query — the
            reference semantics; use it when timing individual queries.
        ``"batched"``
            the whole workload through :meth:`CloudServer.process_batch`,
            computing each distinct bin-pair retrieval once.
        ``"sharded"``
            the workload fanned out across the attached :class:`MultiCloud`:
            request halves are routed to non-colluding members by the
            :class:`ShardRouter` and served concurrently, and owner-side
            decryption of finished members overlaps the remaining members'
            searches.

        Traces, per-query results, adversarial views, and statistics are
        strategy-invariant (the parity suite pins this); only wall-clock
        work placement differs.  Sharded execution contacts two servers per
        query, so each trace carries one extra round-trip latency in
        ``transfer_seconds`` — tuple transfer counts are identical.
        """
        return [trace for _rows, trace in self._run_workload(values, batched, placement)]

    def execute_workload_with_rows(
        self,
        values: Iterable[object],
        batched: bool = True,
        placement: Optional[str] = None,
    ) -> List[Tuple[List[Row], ExecutionTrace]]:
        """Like :meth:`execute_workload`, also returning each query's rows.

        The parity test harness uses this to assert result equality across
        placements without issuing extra (view-recording) queries.
        """
        return self._run_workload(values, batched, placement)

    def _run_workload(
        self,
        values: Iterable[object],
        batched: bool,
        placement: Optional[str],
    ) -> List[Tuple[List[Row], ExecutionTrace]]:
        with self._lock:
            return self._run_workload_locked(values, batched, placement)

    def _run_workload_locked(
        self,
        values: Iterable[object],
        batched: bool,
        placement: Optional[str],
    ) -> List[Tuple[List[Row], ExecutionTrace]]:
        if placement is None:
            placement = "batched" if batched else "sequential"
        if placement == "sequential":
            return [self.query_with_trace(value) for value in values]
        if placement not in ("batched", "sharded"):
            raise ConfigurationError(
                f"unknown placement {placement!r}; choose from "
                "'sequential', 'batched', 'sharded'"
            )
        values = list(values)
        requests, slots = self.build_requests(values)
        decrypted_cache: Dict[int, List[Row]] = {}
        if placement == "sharded":
            if self.multi_cloud is None or self.shard_router is None:
                raise ConfigurationError(
                    "sharded placement requires a MultiCloud attached at "
                    "construction (and setup() run since)"
                )

            def decrypt_early(request: BatchRequest, response: QueryResponse) -> None:
                # Runs in the coordinating thread as each member completes,
                # overlapping owner-side decryption with the searches still
                # in flight on other members.  Keyed by list identity so
                # deduplicated retrievals decrypt once, exactly as below;
                # routed through the per-bin plaintext cache so warm bins
                # skip decryption entirely.  Under member failure the fleet
                # invokes this exactly once per half — for the replica's
                # response, never the crashed attempt's — and a replica's
                # slice holds the same ciphertexts as the primary's, so the
                # per-bin plaintext cache stays placement-agnostic: a bin
                # decrypted from a replica serves later primary retrievals
                # and vice versa.
                if response.encrypted_rows:
                    cache_key = id(response.encrypted_rows)
                    if cache_key not in decrypted_cache:
                        decrypted_cache[cache_key] = self._decrypt_bin(
                            request.sensitive_bin_index, response.encrypted_rows
                        )

            responses = self.multi_cloud.process_batch(
                requests,
                self.shard_router,
                max_workers=self.shard_max_workers,
                response_consumer=decrypt_early,
            )
        else:
            responses = self.cloud.process_batch(requests)

        results: List[Tuple[List[Row], ExecutionTrace]] = []
        response_index = 0
        # Per-workload grouped-bin memo: a hot bin's rows are indexed by
        # value once, so the per-query merge is two dict probes + a union
        # over the matching rows instead of a linear rescan of both bins
        # (the owner-side hot loop under skewed workloads).  Keyed by *bin
        # index*: a bin's contents are fixed for the duration of a workload
        # run, and many distinct bin *pairs* share a half — keying by
        # response row list would re-group a hot non-sensitive bin once per
        # pair it appears in.  Grouping costs about two linear scans, so a
        # bin is only grouped when the workload lands on it often enough to
        # amortise that (cold-tail singletons keep the plain scan).  Part of
        # the batch pipeline: ``use_batch=False`` keeps the per-query
        # ``merge_results`` rescan so the scalar reference path stays the
        # unmodified pre-vectorization pipeline end to end (parity baselines
        # and the benchmark's scalar side both rely on that).
        use_grouped_merge = self.scheme.use_batch
        grouped_cache: Dict[object, Dict[object, List[Row]]] = {}
        half_uses: Dict[object, int] = {}
        if use_grouped_merge:
            for decision in slots:
                if decision is None:
                    continue
                for key in (
                    ("s", decision.sensitive_bin_index),
                    ("ns", decision.non_sensitive_bin_index),
                ):
                    half_uses[key] = half_uses.get(key, 0) + 1

        def matching(kind: str, bin_index, rows: List[Row], query) -> List[Row]:
            key = (kind, bin_index)
            if bin_index is None or half_uses.get(key, 0) < 3:
                return [
                    row for row in rows
                    if row.values.get(query.attribute) == query.value
                ]
            index = grouped_cache.get(key)
            if index is None:
                index = group_rows_by_value(rows, self.attribute)
                grouped_cache[key] = index
            return index.get(query.value, [])

        for value, decision in zip(values, slots):
            query = SelectionQuery(self.attribute, value)
            if decision is None:
                results.append(([], self._empty_trace(query)))
                continue
            response = responses[response_index]
            response_index += 1
            # Deduplicated responses share their encrypted row list, so one
            # decryption pass serves every query answered from that retrieval
            # (and the per-bin plaintext cache carries it across workloads).
            cache_key = id(response.encrypted_rows)
            sensitive_rows = decrypted_cache.get(cache_key)
            if sensitive_rows is None:
                sensitive_rows = self._decrypt_bin(
                    decision.sensitive_bin_index, response.encrypted_rows
                )
                decrypted_cache[cache_key] = sensitive_rows
            if use_grouped_merge:
                rows = merge_results(
                    query,
                    matching("s", decision.sensitive_bin_index, sensitive_rows, query),
                    matching(
                        "ns",
                        decision.non_sensitive_bin_index,
                        response.non_sensitive_rows,
                        query,
                    ),
                    already_filtered=True,
                )
            else:
                rows = merge_results(query, sensitive_rows, response.non_sensitive_rows)
            results.append((rows, self._trace_for(query, decision, response, len(rows))))
        return results

    # -- introspection ----------------------------------------------------------------
    def insert(self, values: Dict[str, object], sensitive: bool) -> None:
        """Insert one new row while keeping bins usable (see extensions.inserts).

        The base engine supports inserts for values that already exist in the
        layout; new values require re-binning, which
        :mod:`repro.extensions.inserts` handles incrementally.
        """
        with self._lock:
            self._insert_locked(values, sensitive)

    def _insert_locked(self, values: Dict[str, object], sensitive: bool) -> None:
        self._require_setup()
        rid = next(self._insert_rid_counter)
        if sensitive:
            row = self.partition.sensitive.insert(
                values, sensitive=True, rid=rid, validate=False
            )
            encrypted = self.scheme.encrypt_rows([row], self.attribute)
            bin_assignment: Dict[int, int] = {}
            needs_bin = self._wants_bin_store() or self.multi_cloud is not None
            if needs_bin and self.layout is not None:
                location = self.layout.locate_sensitive(values[self.attribute])
                if location is not None:
                    bin_assignment[rid] = location[0]
            self.cloud.append_sensitive(
                encrypted,
                bin_assignment=bin_assignment if self._wants_bin_store() else {},
            )
            if self.multi_cloud is not None and self.shard_router is not None:
                self.multi_cloud.append_sensitive_sharded(
                    encrypted, bin_assignment, self.shard_router
                )
            # Owner metadata changed (address books, occurrence counters):
            # cached per-bin tokens — the interned requests carrying them —
            # and the bin's cached plaintexts may now be stale.
            self._token_cache.clear()
            self._request_cache.clear()
            self._decrypted_bin_cache.clear()
            assert self.metadata is not None
            counts = self.metadata.sensitive_counts
            counts[values[self.attribute]] = counts.get(values[self.attribute], 0) + 1
        else:
            row = self.partition.non_sensitive.insert(
                values, sensitive=False, rid=rid, validate=False
            )
            # The cloud stores the same relation object, so only its indexes
            # and transfer accounting need refreshing.
            self.cloud.register_non_sensitive_row(row)
            if self.multi_cloud is not None:
                self.multi_cloud.register_non_sensitive_row(row)
            assert self.metadata is not None
            counts = self.metadata.non_sensitive_counts
            counts[values[self.attribute]] = counts.get(values[self.attribute], 0) + 1

    def insert_many(
        self, rows: Sequence[Tuple[Dict[str, object], bool]]
    ) -> None:
        """Insert many ``(values, sensitive)`` rows with batched crypto.

        Stores the same rows under the same rids, advances the same metadata
        counts, and produces bit-identical ciphertexts/tags as calling
        :meth:`insert` once per row (rids are assigned in order and the
        scheme encrypts the sensitive rows in arrival order, so stateful
        schemes — Arx occurrence counters, address books — evolve
        identically).  The win is amortisation: one
        :meth:`~repro.crypto.base.EncryptedSearchScheme.encrypt_rows` batch,
        one ``append_sensitive`` shipment, and one owner-cache invalidation
        for the whole batch instead of one of each per sensitive row.
        """
        with self._lock:
            self._insert_many_locked(rows)

    def _insert_many_locked(
        self, rows: Sequence[Tuple[Dict[str, object], bool]]
    ) -> None:
        self._require_setup()
        sensitive_rows: List[Row] = []
        bin_assignment: Dict[int, int] = {}
        needs_bin = self._wants_bin_store() or self.multi_cloud is not None
        assert self.metadata is not None
        for values, sensitive in rows:
            rid = next(self._insert_rid_counter)
            value = values[self.attribute]
            if sensitive:
                row = self.partition.sensitive.insert(
                    values, sensitive=True, rid=rid, validate=False
                )
                sensitive_rows.append(row)
                if needs_bin and self.layout is not None:
                    location = self.layout.locate_sensitive(value)
                    if location is not None:
                        bin_assignment[rid] = location[0]
                counts = self.metadata.sensitive_counts
            else:
                row = self.partition.non_sensitive.insert(
                    values, sensitive=False, rid=rid, validate=False
                )
                self.cloud.register_non_sensitive_row(row)
                if self.multi_cloud is not None:
                    self.multi_cloud.register_non_sensitive_row(row)
                counts = self.metadata.non_sensitive_counts
            counts[value] = counts.get(value, 0) + 1
        if sensitive_rows:
            encrypted = self.scheme.encrypt_rows(sensitive_rows, self.attribute)
            self.cloud.append_sensitive(
                encrypted,
                bin_assignment=bin_assignment if self._wants_bin_store() else {},
            )
            if self.multi_cloud is not None and self.shard_router is not None:
                self.multi_cloud.append_sensitive_sharded(
                    encrypted, bin_assignment, self.shard_router
                )
            # Owner metadata changed once for the whole batch; invalidate
            # the token/request/plaintext caches once to match.
            self._token_cache.clear()
            self._request_cache.clear()
            self._decrypted_bin_cache.clear()


class NaivePartitionedEngine(_PartitionedEngineBase):
    """Partitioned execution *without* binning (the leaky baseline of §II)."""

    def setup(self) -> "NaivePartitionedEngine":
        with self._lock:
            encrypted = self._encrypt_sensitive_rows()
            self.cloud.store_non_sensitive(self.partition.non_sensitive)
            self.cloud.store_sensitive(encrypted, self.scheme)
            self.cloud.build_index(self.attribute)
            self._outsourced = True
            return self

    def query(self, value: object) -> List[Row]:
        rows, _trace = self.query_with_trace(value)
        return rows

    def query_with_trace(self, value: object) -> Tuple[List[Row], ExecutionTrace]:
        with self._lock:
            if not self._outsourced:
                raise ConfigurationError("call setup() before issuing queries")
            query = SelectionQuery(self.attribute, value)
            tokens = self.scheme.tokens_for_values([value], self.attribute)
            response = self.cloud.process_request(self.attribute, [value], tokens)
            rows = self._decrypt_and_merge(query, response)
            trace = ExecutionTrace(
                query=query,
                binned=None,
                sensitive_values_requested=1,
                non_sensitive_values_requested=1,
                encrypted_rows_returned=len(response.encrypted_rows),
                non_sensitive_rows_returned=len(response.non_sensitive_rows),
                rows_after_merge=len(rows),
                transfer_seconds=response.transfer_seconds,
            )
            return rows, trace

    def execute_workload(self, values: Iterable[object]) -> List[ExecutionTrace]:
        return [self.query_with_trace(value)[1] for value in values]
