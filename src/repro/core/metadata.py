"""DB-owner metadata.

The paper's model requires the owner to keep, per searchable attribute, the
set of searchable values with their frequency counts (for query formulation
and for the general-case fake-tuple computation) plus the bin layout produced
at setup time.  The metadata is small — proportional to the number of distinct
values, not to the database size (the paper reports 13.6 MB for
``L_PARTKEY`` and 0.65 MB for ``L_SUPPKEY`` on TPC-H LINEITEM) — and
:meth:`OwnerMetadata.estimated_size_bytes` lets experiments report the same
quantity for our synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.bins import BinLayout


@dataclass
class OwnerMetadata:
    """Everything the trusted owner stores locally for one searchable attribute."""

    attribute: str
    sensitive_counts: Dict[object, int] = field(default_factory=dict)
    non_sensitive_counts: Dict[object, int] = field(default_factory=dict)
    layout: Optional[BinLayout] = None
    strategy: str = "base"

    # -- derived quantities -----------------------------------------------------
    @property
    def num_sensitive_values(self) -> int:
        """|S| — distinct sensitive values of the attribute."""
        return len(self.sensitive_counts)

    @property
    def num_non_sensitive_values(self) -> int:
        """|NS| — distinct non-sensitive values of the attribute."""
        return len(self.non_sensitive_counts)

    @property
    def sensitive_tuples(self) -> int:
        return sum(self.sensitive_counts.values())

    @property
    def non_sensitive_tuples(self) -> int:
        return sum(self.non_sensitive_counts.values())

    @property
    def alpha(self) -> float:
        """The sensitivity ratio α = |S tuples| / |all tuples|."""
        total = self.sensitive_tuples + self.non_sensitive_tuples
        if total == 0:
            return 0.0
        return self.sensitive_tuples / total

    @property
    def associated_values(self) -> Tuple[object, ...]:
        """Values that occur on both sides (the 1:1 associations of §IV-A)."""
        return tuple(
            value for value in self.sensitive_counts if value in self.non_sensitive_counts
        )

    @property
    def is_base_case(self) -> bool:
        """True when every value has at most one tuple on each side."""
        return all(count <= 1 for count in self.sensitive_counts.values()) and all(
            count <= 1 for count in self.non_sensitive_counts.values()
        )

    def value_exists(self, value: object) -> bool:
        return value in self.sensitive_counts or value in self.non_sensitive_counts

    def expected_result_size(self, value: object) -> int:
        """Number of real tuples a query for ``value`` should return."""
        return self.sensitive_counts.get(value, 0) + self.non_sensitive_counts.get(value, 0)

    def estimated_size_bytes(
        self, bytes_per_value: int = 24, bytes_per_count: int = 8
    ) -> int:
        """Approximate local storage footprint of this metadata."""
        per_entry = bytes_per_value + bytes_per_count
        entries = self.num_sensitive_values + self.num_non_sensitive_values
        layout_overhead = 0
        if self.layout is not None:
            placements = len(self.layout.sensitive_values) + len(
                self.layout.non_sensitive_values
            )
            layout_overhead = placements * (bytes_per_value + 8)
        return entries * per_entry + layout_overhead

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        attribute: str,
        sensitive_counts: Mapping[object, int],
        non_sensitive_counts: Mapping[object, int],
    ) -> "OwnerMetadata":
        return cls(
            attribute=attribute,
            sensitive_counts=dict(sensitive_counts),
            non_sensitive_counts=dict(non_sensitive_counts),
        )
