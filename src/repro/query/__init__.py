"""Query substrate: predicate algebra, selection queries, and result merging.

The paper focuses on selection queries (``SELECT ... WHERE A = w``).  This
package models those queries, the bin-expanded queries QB produces
(``A IN {w1, ..., wk}``), and the ``qmerge`` step that unions and
post-filters the partial results at the DB owner.
"""

from repro.query.predicates import (
    And,
    Equals,
    InSet,
    Not,
    Or,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.query.selection import BinnedQuery, SelectionQuery
from repro.query.merge import merge_results

__all__ = [
    "Predicate",
    "Equals",
    "InSet",
    "RangePredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "SelectionQuery",
    "BinnedQuery",
    "merge_results",
]
