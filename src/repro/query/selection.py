"""Selection query objects.

:class:`SelectionQuery` is the user-facing query (``q(w)`` in the paper);
:class:`BinnedQuery` is what QB turns it into — one set of predicates for the
encrypted sensitive relation (``q(Ws)(Rs)``) and one for the cleartext
non-sensitive relation (``q(Wns)(Rns)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import QueryError


@dataclass(frozen=True)
class SelectionQuery:
    """A single-attribute selection query ``q(w)`` on attribute ``A``.

    Parameters
    ----------
    attribute:
        The searchable attribute the query filters on.
    value:
        The requested predicate value ``w``.
    projection:
        Optional attributes to return; ``None`` means all attributes.
    """

    attribute: str
    value: object
    projection: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("a selection query needs a non-empty attribute name")

    def describe(self) -> str:
        cols = "*" if self.projection is None else ", ".join(self.projection)
        return f"SELECT {cols} WHERE {self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class BinnedQuery:
    """The QB rewriting of a :class:`SelectionQuery`.

    Attributes
    ----------
    original:
        The query the DB owner actually wants answered.
    sensitive_values:
        ``Ws`` — the values of the selected sensitive bin.  They are sent to
        the cloud in encrypted/tokenised form by the crypto engine.
    non_sensitive_values:
        ``Wns`` — the values of the selected non-sensitive bin, sent in
        cleartext.
    sensitive_bin_index / non_sensitive_bin_index:
        Identifiers of the chosen bins (useful for auditing and tests).
    """

    original: SelectionQuery
    sensitive_values: Tuple[object, ...]
    non_sensitive_values: Tuple[object, ...]
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    @property
    def attribute(self) -> str:
        return self.original.attribute

    @property
    def value(self) -> object:
        return self.original.value

    @property
    def total_requested_values(self) -> int:
        """|Ws| + |Wns| — the request size the cost model charges for."""
        return len(self.sensitive_values) + len(self.non_sensitive_values)

    def covers_query_value(self) -> bool:
        """True when the requested value is present in at least one bin.

        Correctness of QB requires ``w ∈ Ws ∪ Wns`` whenever ``w`` exists in
        the data; for values absent from both partitions no retrieval is
        needed at all.
        """
        return (
            self.value in self.sensitive_values
            or self.value in self.non_sensitive_values
        )

    def describe(self) -> str:
        return (
            f"{self.original.describe()} -> "
            f"Ws[{self.sensitive_bin_index}]={sorted(map(repr, self.sensitive_values))}, "
            f"Wns[{self.non_sensitive_bin_index}]={sorted(map(repr, self.non_sensitive_values))}"
        )
