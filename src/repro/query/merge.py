"""``qmerge`` — merging of partitioned query results at the DB owner.

The cloud returns (a) decrypted-at-owner sensitive rows matching ``Ws`` and
(b) cleartext non-sensitive rows matching ``Wns``.  Both sets are supersets of
what the user asked for (they match a whole bin), so the owner must filter
them back down to the original predicate before unioning.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.data.relation import Row, union_rows
from repro.query.selection import SelectionQuery


def filter_rows(rows: Iterable[Row], query: SelectionQuery) -> List[Row]:
    """Keep only the rows that satisfy the original query predicate."""
    return [row for row in rows if row.get(query.attribute) == query.value]


def group_rows_by_value(rows: Iterable[Row], attribute: str) -> Dict[object, List[Row]]:
    """Index a bin's rows by attribute value, preserving bin order per value.

    One grouping pass over a bin answers every later predicate against that
    bin with a dict probe, replacing the per-query linear rescan
    :func:`filter_rows` performs — the owner-side merge hot loop under
    skewed workloads, where many queries land on the same (large) bin.
    ``grouped.get(value, [])`` returns exactly what
    ``filter_rows(rows, query)`` would, in the same order.
    """
    grouped: Dict[object, List[Row]] = {}
    for row in rows:
        # row.values.get == row.get (see Row.get); inlined because this loop
        # touches every row of every bin the workload lands on
        grouped.setdefault(row.values.get(attribute), []).append(row)
    return grouped


def merge_grouped(
    query: SelectionQuery,
    grouped_sensitive: Dict[object, List[Row]],
    grouped_non_sensitive: Dict[object, List[Row]],
) -> List[Row]:
    """:func:`merge_results` over pre-grouped bins (see
    :func:`group_rows_by_value`); observably identical, O(result) per query
    instead of O(bin)."""
    merged = union_rows(
        grouped_sensitive.get(query.value, []),
        grouped_non_sensitive.get(query.value, []),
    )
    return project_rows(merged, query.projection)


def project_rows(rows: Iterable[Row], projection: Optional[Sequence[str]]) -> List[Row]:
    """Apply the query's projection, if any."""
    if projection is None:
        return list(rows)
    return [row.project(projection) for row in rows]


def merge_results(
    query: SelectionQuery,
    sensitive_rows: Iterable[Row],
    non_sensitive_rows: Iterable[Row],
    already_filtered: bool = False,
) -> List[Row]:
    """Implement ``q(R) = qmerge(q(Rs), q(Rns))``.

    Parameters
    ----------
    query:
        The original user query ``q(w)``.
    sensitive_rows:
        Rows recovered (decrypted) from the sensitive sub-query.
    non_sensitive_rows:
        Cleartext rows returned by the non-sensitive sub-query.
    already_filtered:
        Set to ``True`` when the inputs already satisfy the exact predicate
        (e.g. in the naive, non-binned execution); bin-expanded results must
        be post-filtered.
    """
    if not already_filtered:
        sensitive_rows = filter_rows(sensitive_rows, query)
        non_sensitive_rows = filter_rows(non_sensitive_rows, query)
    merged = union_rows(sensitive_rows, non_sensitive_rows)
    return project_rows(merged, query.projection)
