"""``qmerge`` — merging of partitioned query results at the DB owner.

The cloud returns (a) decrypted-at-owner sensitive rows matching ``Ws`` and
(b) cleartext non-sensitive rows matching ``Wns``.  Both sets are supersets of
what the user asked for (they match a whole bin), so the owner must filter
them back down to the original predicate before unioning.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.data.relation import Row, union_rows
from repro.query.selection import SelectionQuery


def filter_rows(rows: Iterable[Row], query: SelectionQuery) -> List[Row]:
    """Keep only the rows that satisfy the original query predicate."""
    return [row for row in rows if row.get(query.attribute) == query.value]


def project_rows(rows: Iterable[Row], projection: Optional[Sequence[str]]) -> List[Row]:
    """Apply the query's projection, if any."""
    if projection is None:
        return list(rows)
    return [row.project(projection) for row in rows]


def merge_results(
    query: SelectionQuery,
    sensitive_rows: Iterable[Row],
    non_sensitive_rows: Iterable[Row],
    already_filtered: bool = False,
) -> List[Row]:
    """Implement ``q(R) = qmerge(q(Rs), q(Rns))``.

    Parameters
    ----------
    query:
        The original user query ``q(w)``.
    sensitive_rows:
        Rows recovered (decrypted) from the sensitive sub-query.
    non_sensitive_rows:
        Cleartext rows returned by the non-sensitive sub-query.
    already_filtered:
        Set to ``True`` when the inputs already satisfy the exact predicate
        (e.g. in the naive, non-binned execution); bin-expanded results must
        be post-filtered.
    """
    if not already_filtered:
        sensitive_rows = filter_rows(sensitive_rows, query)
        non_sensitive_rows = filter_rows(non_sensitive_rows, query)
    merged = union_rows(sensitive_rows, non_sensitive_rows)
    return project_rows(merged, query.projection)
