"""A small predicate algebra for selection queries.

Predicates are immutable, hashable objects that evaluate against
:class:`repro.data.relation.Row` instances.  Equality and set-membership
predicates are the ones Query Binning rewrites; range predicates support the
full-version range extension; conjunction/disjunction/negation round out the
algebra so examples can express realistic filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.data.relation import Row
from repro.exceptions import QueryError


class Predicate:
    """Base class for all predicates."""

    def matches(self, row: Row) -> bool:
        """Return ``True`` when the predicate holds for ``row``."""
        raise NotImplementedError

    def attributes(self) -> Tuple[str, ...]:
        """Attributes referenced by this predicate."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (a full scan)."""

    def matches(self, row: Row) -> bool:
        return True

    def attributes(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Equals(Predicate):
    """``attribute = value`` — the paper's canonical selection predicate."""

    attribute: str
    value: object

    def matches(self, row: Row) -> bool:
        return row.get(self.attribute) == self.value

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class InSet(Predicate):
    """``attribute IN values`` — the shape produced by bin expansion."""

    attribute: str
    values: FrozenSet[object]

    def __init__(self, attribute: str, values: Iterable[object]):
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, row: Row) -> bool:
        return row.get(self.attribute) in self.values

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``low <= attribute <= high`` with optional open bounds."""

    attribute: str
    low: Optional[object] = None
    high: Optional[object] = None
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise QueryError("a range predicate needs at least one bound")

    def matches(self, row: Row) -> bool:
        value = row.get(self.attribute)
        if value is None:
            return False
        if self.low is not None:
            if self.include_low:
                if value < self.low:  # type: ignore[operator]
                    return False
            elif value <= self.low:  # type: ignore[operator]
                return False
        if self.high is not None:
            if self.include_high:
                if value > self.high:  # type: ignore[operator]
                    return False
            elif value >= self.high:  # type: ignore[operator]
                return False
        return True

    def attributes(self) -> Tuple[str, ...]:
        return (self.attribute,)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def __init__(self, operands: Iterable[Predicate]):
        object.__setattr__(self, "operands", tuple(operands))

    def matches(self, row: Row) -> bool:
        return all(op.matches(row) for op in self.operands)

    def attributes(self) -> Tuple[str, ...]:
        seen = []
        for op in self.operands:
            for attribute in op.attributes():
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def __init__(self, operands: Iterable[Predicate]):
        object.__setattr__(self, "operands", tuple(operands))

    def matches(self, row: Row) -> bool:
        return any(op.matches(row) for op in self.operands)

    def attributes(self) -> Tuple[str, ...]:
        seen = []
        for op in self.operands:
            for attribute in op.attributes():
                if attribute not in seen:
                    seen.append(attribute)
        return tuple(seen)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def matches(self, row: Row) -> bool:
        return not self.operand.matches(row)

    def attributes(self) -> Tuple[str, ...]:
        return self.operand.attributes()
