"""Wire protocol of the encrypted-search service.

The service speaks the *same* frame protocol as the process-member worker
pipe — :class:`~repro.cloud.process_member.FrameChannel`'s length-prefixed,
chunked pickle-5 framing, hello handshake included — over a TCP socket
instead of a multiprocessing pipe.  :class:`SocketConnection` adapts a
connected socket to the small ``Connection`` surface the channel consumes
(``send_bytes`` / ``recv_bytes`` / ``recv_bytes_into`` / ``poll`` /
``close``), so the framing, chunking, out-of-band buffer handling, and
version negotiation are shared with the fleet's RPC path rather than
reimplemented.

On top of the frames travel two message types: :class:`ServiceRequest`
(tenant, operation, payload, client-chosen request id) and
:class:`ServiceResponse` (the matching id, a status, and either a result or
an error).  Request ids let one connection pipeline many requests — the
open-loop load harness depends on that — and responses may arrive in any
order relative to other requests on the same connection.

Hardening (PR 10)
-----------------
The socket layer no longer trusts the peer or the network:

* every discrete socket message is ``u32 length | u32 crc32 | payload``; a
  checksum mismatch raises :class:`~repro.exceptions.FrameCorruptionError`
  and poisons the connection (after a flipped bit the receiver cannot
  prove it is still frame-aligned);
* an announced length above ``max_message_bytes`` raises
  :class:`~repro.exceptions.FrameTooLargeError` *before* any allocation —
  a hostile length prefix costs the peer its connection, never the server
  its memory;
* ``read_timeout`` bounds the idle wait for a message's first byte and
  ``message_timeout`` bounds the wall clock from that first byte to the
  message's completion, so both a silent peer and a slow-loris peer (one
  byte per keep-alive) surface as
  :class:`~repro.exceptions.WireTimeoutError` instead of a parked thread;
* ``send_timeout`` bounds writes the same way, so a peer that stops
  *reading* cannot wedge a worker inside ``sendall``;
* :meth:`SocketConnection.close` is idempotent under concurrent callers.

All waits are ``select``-based rather than ``settimeout``-based: socket
timeouts are socket-global, and the server legitimately has one thread
reading a connection while another writes responses to it.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cloud.process_member import FrameChannel
from repro.exceptions import (
    FrameCorruptionError,
    FrameTooLargeError,
    WireTimeoutError,
)

#: ops a :class:`ServiceRequest` may carry
SERVICE_OPS: Tuple[str, ...] = ("ping", "query", "insert", "stats")

#: ops whose effects mutate tenant state — the ones the server's dedup
#: window must make exactly-once under duplicate delivery / client replay
MUTATING_OPS: Tuple[str, ...] = ("insert",)

#: response statuses
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_REJECTED = "rejected"

#: u32 length prefix + u32 crc32 framing each discrete socket message (the
#: socket-level analogue of one pipe message); WIRE_CHUNK_BYTES (1 MiB)
#: fits comfortably.
_MESSAGE_HEADER = struct.Struct("<II")

#: Default per-message size cap.  Far above any legitimate service frame
#: (requests are rows and tokens, not blobs) yet small enough that a
#: corrupted or hostile length prefix cannot commit the receiver to a
#: multi-gigabyte allocation.
DEFAULT_MAX_MESSAGE_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class ServiceRequest:
    """One client request as shipped over the wire.

    ``client_id`` + ``request_id`` form the idempotency key: a client that
    replays a request after a connection loss reuses both, and the server's
    per-tenant dedup window applies mutating ops exactly once.
    ``ttl_seconds`` is the client's deadline as a *relative* budget
    (absolute wall clocks do not transfer between machines); the server
    stamps admission time and drops the request unexecuted once the budget
    is spent.
    """

    request_id: int
    tenant: str
    op: str
    payload: Tuple = ()
    client_id: str = ""
    ttl_seconds: Optional[float] = None


@dataclass(frozen=True)
class ServiceResponse:
    """The server's reply to one :class:`ServiceRequest`.

    ``status`` is ``"ok"`` (``result`` holds the op's return value),
    ``"error"`` (``error`` holds the message, ``error_type`` the exception
    class name), or ``"rejected"`` (the admission queue was full or the
    tenant's rate limit was exhausted — an explicit overload signal, not a
    failure of the request itself; ``error_type`` distinguishes the two).
    ``service_seconds`` is the server-side time from admission to
    completion, letting clients split queueing from service time.
    """

    request_id: int
    status: str
    result: object = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    service_seconds: float = 0.0


class SocketConnection:
    """A ``multiprocessing.Connection``-shaped adapter over a TCP socket.

    Exposes exactly what :class:`FrameChannel` consumes.  Each
    ``send_bytes`` ships one discrete message (u32 length + u32 crc32 +
    bytes); ``recv_bytes_into`` receives the *next* message into the
    caller's buffer at an offset and returns its length — the contract the
    channel's ``_recv_exactly`` chunk loop relies on.

    ``read_timeout`` / ``message_timeout`` / ``send_timeout`` are the
    hardening deadlines documented on the module; ``None`` means wait
    forever (the pre-PR-10 behaviour, still right for a trusted client
    blocking on its own pipelined responses).
    """

    def __init__(
        self,
        sock: socket.socket,
        read_timeout: Optional[float] = None,
        message_timeout: Optional[float] = None,
        send_timeout: Optional[float] = None,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
    ):
        self._socket = sock
        self._closed = False
        self._close_lock = threading.Lock()
        self.read_timeout = read_timeout
        self.message_timeout = message_timeout
        self.send_timeout = send_timeout
        self.max_message_bytes = int(max_message_bytes)
        # latency over throughput for small frames: the channel already
        # batches its writes into ≤1 MiB chunks, so Nagle only adds delay;
        # best-effort because the transport also wraps non-TCP sockets
        # (AF_UNIX socketpairs in tests)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    # -- waits --------------------------------------------------------------------
    def _wait_readable(self, deadline: Optional[float], what: str) -> None:
        timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
        readable, _w, _e = select.select([self._socket], [], [], timeout)
        if not readable:
            raise WireTimeoutError(f"read deadline expired waiting for {what}")

    def _wait_writable(self, deadline: Optional[float]) -> None:
        timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
        _r, writable, _e = select.select([], [self._socket], [], timeout)
        if not writable:
            raise WireTimeoutError("send deadline expired (peer not reading)")

    @staticmethod
    def _deadline(timeout: Optional[float]) -> Optional[float]:
        return None if timeout is None else time.monotonic() + timeout

    # -- sends --------------------------------------------------------------------
    def send_bytes(self, data) -> None:
        view = memoryview(data)
        if view.nbytes > self.max_message_bytes:
            raise FrameTooLargeError(
                f"outbound message of {view.nbytes} bytes exceeds the "
                f"{self.max_message_bytes}-byte frame cap"
            )
        header = _MESSAGE_HEADER.pack(view.nbytes, zlib.crc32(view))
        self._send_all(memoryview(header))
        self._send_all(view)

    def _send_all(self, view: memoryview) -> None:
        if self.send_timeout is None:
            self._socket.sendall(view)
            return
        # select-writable then send(): a blocking send only parks when the
        # buffer has NO room, which writability rules out, so each round
        # makes progress or times out — sendall could wedge past any clock
        deadline = self._deadline(self.send_timeout)
        sent = 0
        while sent < view.nbytes:
            self._wait_writable(deadline)
            sent += self._socket.send(view[sent:])

    # -- receives -----------------------------------------------------------------
    def _recv_exact(
        self,
        length: int,
        buffer=None,
        offset: int = 0,
        deadline: Optional[float] = None,
        first_byte_timeout: Optional[float] = None,
        midstream: bool = False,
    ) -> int:
        """Read exactly ``length`` bytes into ``buffer[offset:]`` (or fresh).

        ``first_byte_timeout`` (the idle deadline) applies to the wait for
        the first byte only; ``deadline`` is an absolute monotonic instant
        bounding the whole read (the anti-slow-loris clock).

        EOF at a message boundary is an orderly hangup (:class:`EOFError`);
        EOF after the peer announced bytes it never delivered —
        ``midstream`` or partway through this read — is a truncated stream
        and fails loudly as :class:`FrameCorruptionError`.
        """
        if buffer is None:
            buffer = bytearray(length)
            offset = 0
        with memoryview(buffer) as view:
            target = view[offset : offset + length]
            read = 0
            while read < length:
                if read == 0 and first_byte_timeout is not None:
                    self._wait_readable(
                        self._deadline(first_byte_timeout), "next message"
                    )
                elif deadline is not None:
                    self._wait_readable(deadline, "rest of message")
                count = self._socket.recv_into(target[read:], length - read)
                if count == 0:
                    if read or midstream:
                        raise FrameCorruptionError(
                            "connection closed mid-message "
                            f"({read}/{length} bytes delivered)"
                        )
                    raise EOFError("service connection closed by peer")
                read += count
        return length

    def _recv_header(self) -> Tuple[int, int]:
        """(length, crc32) of the next message; the idle wait happens here."""
        prefix = bytearray(_MESSAGE_HEADER.size)
        self._recv_exact(
            _MESSAGE_HEADER.size,
            prefix,
            deadline=self._deadline(self.message_timeout),
            first_byte_timeout=self.read_timeout,
        )
        length, crc = _MESSAGE_HEADER.unpack(bytes(prefix))
        if length > self.max_message_bytes:
            raise FrameTooLargeError(
                f"inbound message announces {length} bytes, above the "
                f"{self.max_message_bytes}-byte frame cap; refusing to allocate"
            )
        return length, crc

    def _recv_checked(self, length: int, crc: int, buffer, offset: int) -> int:
        self._recv_exact(
            length,
            buffer,
            offset,
            deadline=self._deadline(self.message_timeout),
            midstream=True,  # the header promised these bytes
        )
        with memoryview(buffer) as view:
            actual = zlib.crc32(view[offset : offset + length])
        if actual != crc:
            raise FrameCorruptionError(
                f"message checksum mismatch (announced {crc:#010x}, "
                f"computed {actual:#010x}); closing the poisoned stream"
            )
        return length

    def recv_bytes(self) -> bytes:
        length, crc = self._recv_header()
        buffer = bytearray(length)
        self._recv_checked(length, crc, buffer, 0)
        return bytes(buffer)

    def recv_bytes_into(self, buffer, offset: int = 0) -> int:
        length, crc = self._recv_header()
        return self._recv_checked(length, crc, buffer, offset)

    # -- plumbing -----------------------------------------------------------------
    def poll(self, timeout: Optional[float] = None) -> bool:
        """Whether a message is ready to read (``select`` on the socket)."""
        if self._closed:
            raise OSError("connection is closed")
        readable, _writable, _errored = select.select(
            [self._socket], [], [], timeout
        )
        return bool(readable)

    def close(self) -> None:
        # test-and-set under a lock: concurrent closers (client close() vs
        # receiver-thread failure path, server reader vs stop()) must not
        # both run the shutdown/close pair on the same fd
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone
        self._socket.close()

    @property
    def closed(self) -> bool:
        return self._closed


def make_channel(
    sock: socket.socket,
    max_frame_bytes: Optional[int] = DEFAULT_MAX_MESSAGE_BYTES,
    **connection_kwargs,
) -> FrameChannel:
    """Wrap a connected socket in the shared frame protocol.

    ``connection_kwargs`` pass through to :class:`SocketConnection`
    (deadlines, per-socket-message cap); ``max_frame_bytes`` caps one
    whole pickled frame at the channel layer — on the untrusted service
    wire it defaults on, unlike the trusted in-process pipes.
    """
    return FrameChannel(
        SocketConnection(sock, **connection_kwargs),
        max_frame_bytes=max_frame_bytes,
    )
