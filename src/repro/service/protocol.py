"""Wire protocol of the encrypted-search service.

The service speaks the *same* frame protocol as the process-member worker
pipe — :class:`~repro.cloud.process_member.FrameChannel`'s length-prefixed,
chunked pickle-5 framing, hello handshake included — over a TCP socket
instead of a multiprocessing pipe.  :class:`SocketConnection` adapts a
connected socket to the small ``Connection`` surface the channel consumes
(``send_bytes`` / ``recv_bytes`` / ``recv_bytes_into`` / ``poll`` /
``close``), so the framing, chunking, out-of-band buffer handling, and
version negotiation are shared with the fleet's RPC path rather than
reimplemented.

On top of the frames travel two message types: :class:`ServiceRequest`
(tenant, operation, payload, client-chosen request id) and
:class:`ServiceResponse` (the matching id, a status, and either a result or
an error).  Request ids let one connection pipeline many requests — the
open-loop load harness depends on that — and responses may arrive in any
order relative to other requests on the same connection.
"""

from __future__ import annotations

import select
import socket
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cloud.process_member import FrameChannel

#: ops a :class:`ServiceRequest` may carry
SERVICE_OPS: Tuple[str, ...] = ("ping", "query", "insert", "stats")

#: response statuses
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_REJECTED = "rejected"

#: u32 length prefix framing each discrete socket message (the socket-level
#: analogue of one pipe message); WIRE_CHUNK_BYTES (1 MiB) fits comfortably.
_MESSAGE_LENGTH = struct.Struct("<I")


@dataclass(frozen=True)
class ServiceRequest:
    """One client request as shipped over the wire."""

    request_id: int
    tenant: str
    op: str
    payload: Tuple = ()


@dataclass(frozen=True)
class ServiceResponse:
    """The server's reply to one :class:`ServiceRequest`.

    ``status`` is ``"ok"`` (``result`` holds the op's return value),
    ``"error"`` (``error`` holds the message, ``error_type`` the exception
    class name), or ``"rejected"`` (the admission queue was full — an
    explicit overload signal, not a failure of the request itself).
    ``service_seconds`` is the server-side time from admission to
    completion, letting clients split queueing from service time.
    """

    request_id: int
    status: str
    result: object = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    service_seconds: float = 0.0


class SocketConnection:
    """A ``multiprocessing.Connection``-shaped adapter over a TCP socket.

    Exposes exactly what :class:`FrameChannel` consumes.  Each
    ``send_bytes`` ships one discrete message (u32 length prefix + bytes);
    ``recv_bytes_into`` receives the *next* message into the caller's
    buffer at an offset and returns its length — the contract the channel's
    ``_recv_exactly`` chunk loop relies on.
    """

    def __init__(self, sock: socket.socket):
        self._socket = sock
        self._closed = False
        # latency over throughput for small frames: the channel already
        # batches its writes into ≤1 MiB chunks, so Nagle only adds delay
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- sends --------------------------------------------------------------------
    def send_bytes(self, data) -> None:
        view = memoryview(data)
        self._socket.sendall(_MESSAGE_LENGTH.pack(view.nbytes))
        self._socket.sendall(view)

    # -- receives -----------------------------------------------------------------
    def _recv_exact(self, length: int, buffer=None, offset: int = 0) -> int:
        """Read exactly ``length`` bytes into ``buffer[offset:]`` (or fresh)."""
        if buffer is None:
            buffer = bytearray(length)
            offset = 0
        with memoryview(buffer) as view:
            target = view[offset : offset + length]
            read = 0
            while read < length:
                count = self._socket.recv_into(target[read:], length - read)
                if count == 0:
                    raise EOFError("service connection closed by peer")
                read += count
        return length

    def _recv_length(self) -> int:
        prefix = bytearray(_MESSAGE_LENGTH.size)
        self._recv_exact(_MESSAGE_LENGTH.size, prefix)
        (length,) = _MESSAGE_LENGTH.unpack(bytes(prefix))
        return length

    def recv_bytes(self) -> bytes:
        length = self._recv_length()
        buffer = bytearray(length)
        self._recv_exact(length, buffer)
        return bytes(buffer)

    def recv_bytes_into(self, buffer, offset: int = 0) -> int:
        length = self._recv_length()
        return self._recv_exact(length, buffer, offset)

    # -- plumbing -----------------------------------------------------------------
    def poll(self, timeout: Optional[float] = None) -> bool:
        """Whether a message is ready to read (``select`` on the socket)."""
        if self._closed:
            raise OSError("connection is closed")
        readable, _writable, _errored = select.select(
            [self._socket], [], [], timeout
        )
        return bool(readable)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._socket.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # peer already gone
            self._socket.close()

    @property
    def closed(self) -> bool:
        return self._closed


def make_channel(sock: socket.socket) -> FrameChannel:
    """Wrap a connected socket in the shared frame protocol."""
    return FrameChannel(SocketConnection(sock))
