"""A multi-tenant encrypted-search service over the QB engine.

See :doc:`docs/service` for the architecture.  Public surface:

- :class:`~repro.service.server.EncryptedSearchService` — the server
- :class:`~repro.service.client.ServiceClient` — a pipelining client
- :class:`~repro.service.tenants.TenantRegistry` /
  :class:`~repro.service.tenants.TenantSession` — tenant isolation
- :class:`~repro.service.protocol.ServiceRequest` /
  :class:`~repro.service.protocol.ServiceResponse` — the wire messages
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    SERVICE_OPS,
    ServiceRequest,
    ServiceResponse,
    SocketConnection,
    make_channel,
)
from repro.service.server import EncryptedSearchService
from repro.service.tenants import TenantRegistry, TenantSession

__all__ = [
    "EncryptedSearchService",
    "ServiceClient",
    "TenantRegistry",
    "TenantSession",
    "ServiceRequest",
    "ServiceResponse",
    "SocketConnection",
    "SERVICE_OPS",
    "make_channel",
]
