"""A multi-tenant encrypted-search service over the QB engine.

See :doc:`docs/service` for the architecture.  Public surface:

- :class:`~repro.service.server.EncryptedSearchService` — the server
- :class:`~repro.service.client.ServiceClient` — a pipelining client;
  with a :class:`~repro.service.client.RetryPolicy` it retries
  idempotently (seeded-jitter backoff, reconnect-and-replay, server-side
  dedup)
- :class:`~repro.service.tenants.TenantRegistry` /
  :class:`~repro.service.tenants.TenantSession` — tenant isolation, plus
  :class:`~repro.service.tenants.TokenBucket` per-tenant rate limits
- :class:`~repro.service.protocol.ServiceRequest` /
  :class:`~repro.service.protocol.ServiceResponse` — the wire messages
- :class:`~repro.service.chaos.ChaosScenario` /
  :class:`~repro.service.chaos.ChaosScript` /
  :class:`~repro.service.chaos.ChaosEvent` — scripted wire fault injection
"""

from repro.service.chaos import (
    ChaosChannel,
    ChaosConnection,
    ChaosEvent,
    ChaosScenario,
    ChaosScript,
)
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import (
    DEFAULT_MAX_MESSAGE_BYTES,
    MUTATING_OPS,
    SERVICE_OPS,
    ServiceRequest,
    ServiceResponse,
    SocketConnection,
    make_channel,
)
from repro.service.server import EncryptedSearchService
from repro.service.tenants import (
    DedupWindow,
    TenantRegistry,
    TenantSession,
    TokenBucket,
)

__all__ = [
    "EncryptedSearchService",
    "ServiceClient",
    "RetryPolicy",
    "TenantRegistry",
    "TenantSession",
    "TokenBucket",
    "DedupWindow",
    "ServiceRequest",
    "ServiceResponse",
    "SocketConnection",
    "SERVICE_OPS",
    "MUTATING_OPS",
    "DEFAULT_MAX_MESSAGE_BYTES",
    "make_channel",
    "ChaosScenario",
    "ChaosScript",
    "ChaosEvent",
    "ChaosConnection",
    "ChaosChannel",
]
