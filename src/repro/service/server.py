"""The long-lived encrypted-search server.

:class:`EncryptedSearchService` turns the library into a service: a
threaded TCP front-end speaking the shared frame protocol
(:mod:`repro.service.protocol`), a bounded admission queue, a worker pool
executing tenant operations, and a graceful shutdown path that drains
in-flight work before tearing tenants down.

Threading model
---------------
One *accept* thread turns incoming connections into per-connection *reader*
threads.  A reader deserializes requests and admits them to a single bounded
:class:`queue.Queue` shared by ``num_workers`` *worker* threads; the worker
that picks a request up executes it against the tenant session and writes
the response back on the originating connection (under that connection's
send lock — responses from different workers may interleave on one socket,
and request ids let the client re-associate them).

Admission control
-----------------
The queue is bounded (``queue_depth``).  When it is full the reader does
NOT block — it immediately sends a ``"rejected"`` response.  This is the
service's backpressure mechanism: past saturation, extra offered load turns
into explicit rejections (clients see
:class:`~repro.exceptions.ServiceOverloadedError` and may back off) instead
of unbounded queueing latency.  An unbounded queue would keep accepting
work it cannot serve, pushing p99 latency toward the length of the backlog;
a bounded one keeps served-request latency within queue_depth × service
time.

Shutdown
--------
``stop(drain=True)`` first stops accepting connections and admitting
requests, then waits (up to ``drain_timeout``) for every already-admitted
request to complete and its response to be flushed, and only then stops the
workers, closes client connections, and closes every tenant (which in turn
closes fleets, worker processes, and storage files).  ``drain=False``
discards the backlog instead of serving it.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.cloud.process_member import FrameChannel
from repro.exceptions import ServiceClosedError
from repro.service.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    ServiceRequest,
    ServiceResponse,
    make_channel,
)
from repro.service.tenants import TenantRegistry


class _ServiceConnection:
    """One client connection: a frame channel plus a send lock.

    Workers finishing out of order share the socket, so every outbound
    message goes through :meth:`send`, which serializes writes and swallows
    transport errors (a client that hung up no longer cares about its
    responses; the server must not die on its behalf).
    """

    def __init__(self, channel: FrameChannel):
        self.channel = channel
        self._send_lock = threading.Lock()

    def send(self, response: ServiceResponse) -> bool:
        with self._send_lock:
            try:
                self.channel.send_message(response)
                return True
            except (OSError, ValueError, EOFError, BrokenPipeError):
                return False

    def close(self) -> None:
        with self._send_lock:
            self.channel.close()


class EncryptedSearchService:
    """A multi-tenant encrypted-search server over TCP."""

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_workers: int = 4,
        queue_depth: int = 64,
        drain_timeout: float = 30.0,
    ):
        """``port=0`` binds an ephemeral port (read it from :attr:`address`
        after :meth:`start`).  ``queue_depth`` bounds admitted-but-unserved
        requests across *all* connections; see the module docstring for why
        it is deliberately finite."""
        self.registry = registry if registry is not None else TenantRegistry()
        self._host = host
        self._port = port
        self._num_workers = max(1, int(num_workers))
        self._queue_depth = max(1, int(queue_depth))
        self._drain_timeout = drain_timeout

        self._queue: "queue.Queue" = queue.Queue(maxsize=self._queue_depth)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._readers: List[threading.Thread] = []
        self._connections: List[_ServiceConnection] = []
        self._conn_lock = threading.Lock()

        #: in-flight accounting for the drain barrier: a request is pending
        #: from successful admission until its response has been sent (or
        #: dropped on a dead connection).
        self._pending = 0
        self._pending_cond = threading.Condition()

        self._stats_lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0

        self._started = False
        self._accepting = False
        self._stopped = False
        self._state_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "EncryptedSearchService":
        with self._state_lock:
            if self._started:
                raise ServiceClosedError("service already started")
            self._started = True
            self._accepting = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="svc-accept", daemon=True
        )
        self._accept_thread.start()
        for index in range(self._num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) the service is listening on."""
        if self._listener is None:
            raise ServiceClosedError("service is not started")
        return self._listener.getsockname()[:2]

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` serve the admitted backlog first."""
        with self._state_lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
            self._accepting = False
        # stop new connections: shutdown() (not just close()) is what wakes
        # a thread already blocked in accept() — a blocked accept holds a
        # kernel reference that keeps a merely-closed socket listening
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            deadline = time.monotonic() + self._drain_timeout
            with self._pending_cond:
                while self._pending > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break  # drain timed out; abandon the stragglers
                    self._pending_cond.wait(remaining)
        else:
            # discard the backlog: nobody will be told, but every
            # connection is about to be closed anyway
            while True:
                try:
                    self._queue.get_nowait()
                    self._finish_request()
                except queue.Empty:
                    break
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=self._drain_timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for reader in self._readers:
            reader.join(timeout=5.0)
        self.registry.close_all()

    def __enter__(self) -> "EncryptedSearchService":
        return self.start() if not self._started else self

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    # -- stats --------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            admitted, rejected = self._admitted, self._rejected
        with self._pending_cond:
            pending = self._pending
        return {"admitted": admitted, "rejected": rejected, "pending": pending}

    # -- accept / read ------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._accepting:
            try:
                client_socket, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            if not self._accepting:  # raced with stop(): refuse, don't serve
                client_socket.close()
                return
            channel = make_channel(client_socket)
            try:
                channel.recv_hello("service client")
                channel.send_hello()
            except Exception:
                channel.close()
                continue
            connection = _ServiceConnection(channel)
            with self._conn_lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._reader_loop, args=(connection,),
                name="svc-reader", daemon=True,
            )
            reader.start()
            self._readers.append(reader)

    def _reader_loop(self, connection: _ServiceConnection) -> None:
        while True:
            try:
                message = connection.channel.recv_message()
            except (EOFError, OSError, ValueError):
                return  # client hung up (or shutdown closed the socket)
            if not isinstance(message, ServiceRequest):
                connection.send(
                    ServiceResponse(
                        request_id=getattr(message, "request_id", -1),
                        status=STATUS_ERROR,
                        error=f"expected a ServiceRequest, got {type(message).__name__}",
                        error_type="ServiceError",
                    )
                )
                continue
            self._admit(message, connection)

    def _admit(self, request: ServiceRequest, connection: _ServiceConnection) -> None:
        if not self._accepting:
            connection.send(
                ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_ERROR,
                    error="service is shutting down",
                    error_type="ServiceClosedError",
                )
            )
            return
        # claim the pending slot BEFORE the put: a worker may finish the
        # request between put_nowait and a later increment, and the drain
        # barrier must never observe pending == 0 with work still queued
        self._begin_request()
        try:
            self._queue.put_nowait((request, connection))
        except queue.Full:
            self._finish_request()
            with self._stats_lock:
                self._rejected += 1
            connection.send(
                ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_REJECTED,
                    error="admission queue is full",
                    error_type="ServiceOverloadedError",
                )
            )
            return
        with self._stats_lock:
            self._admitted += 1

    # -- execution ----------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, connection = item
            started = time.perf_counter()
            try:
                session = self.registry.get(request.tenant)
                result = session.execute(request.op, request.payload)
                response = ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_OK,
                    result=result,
                    service_seconds=time.perf_counter() - started,
                )
            except Exception as exc:  # every failure becomes a response
                response = ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_ERROR,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    service_seconds=time.perf_counter() - started,
                )
            connection.send(response)
            self._finish_request()

    # -- pending accounting -------------------------------------------------------
    def _begin_request(self) -> None:
        with self._pending_cond:
            self._pending += 1

    def _finish_request(self) -> None:
        with self._pending_cond:
            self._pending -= 1
            if self._pending <= 0:
                self._pending_cond.notify_all()
