"""The long-lived encrypted-search server.

:class:`EncryptedSearchService` turns the library into a service: a
threaded TCP front-end speaking the shared frame protocol
(:mod:`repro.service.protocol`), a bounded admission queue, a worker pool
executing tenant operations, and a graceful shutdown path that drains
in-flight work before tearing tenants down.

Threading model
---------------
One *accept* thread turns incoming connections into per-connection *reader*
threads.  A reader performs the hello handshake (under
``handshake_timeout`` — a peer that connects and never speaks, or speaks
garbage, costs one short-lived thread, never the accept loop), then
deserializes requests and admits them to a single bounded
:class:`queue.Queue` shared by ``num_workers`` *worker* threads; the worker
that picks a request up executes it against the tenant session and writes
the response back on the originating connection (under that connection's
send lock — responses from different workers may interleave on one socket,
and request ids let the client re-associate them).

Wire hardening
--------------
Every connection runs with the protocol-layer deadlines: ``read_deadline``
bounds idle waits between requests, ``message_timeout`` bounds each frame's
completion once started (slow-loris), ``send_timeout`` bounds response
writes to a peer that stopped reading, and ``max_frame_bytes`` caps what a
length prefix may announce.  A violated deadline, corrupt frame (CRC), or
oversized frame reaps the connection: the reader closes it, removes it from
the connection table, counts the cause in :meth:`stats`, and exits — it
never leaks its thread, and the pending-request accounting stays exact
because workers finish their half independently (see below).

Admission control
-----------------
The queue is bounded (``queue_depth``).  When it is full the reader does
NOT block — it immediately sends a ``"rejected"`` response.  This is the
service's backpressure mechanism: past saturation, extra offered load turns
into explicit rejections (clients see
:class:`~repro.exceptions.ServiceOverloadedError` and may back off) instead
of unbounded queueing latency.  Before the shared queue, each request
passes its tenant's :class:`~repro.service.tenants.TokenBucket` (when
configured): a tenant over its rate gets a
:class:`~repro.exceptions.TenantRateLimitedError`-typed rejection charged
to *that tenant's* accounting, so a noisy tenant sheds its own load before
it can crowd the queue every tenant shares.

Deadlines and exactly-once
--------------------------
Requests may carry ``ttl_seconds``; a worker that dequeues a request whose
budget expired while queued drops it *unexecuted* with a
:class:`~repro.exceptions.DeadlineExceededError`-typed response — capacity
goes to callers still listening.  Mutating ops from an identified client
(``client_id`` set) pass the tenant's
:class:`~repro.service.tenants.DedupWindow`: a replayed ``insert`` (client
retry after connection loss, or duplicate delivery by a hostile network)
returns the original outcome instead of applying twice.

A worker always runs ``_finish_request`` — even when the response cannot
be delivered because the connection died after admission.  Undeliverable
responses are counted (``dropped_responses``) rather than leaked, so the
drain barrier and ``stats()`` stay exact under arbitrary client deaths.

Shutdown
--------
``stop(drain=True)`` first stops accepting connections and admitting
requests, then waits (up to ``drain_timeout``) for every already-admitted
request to complete and its response to be flushed, and only then stops the
workers, closes client connections, and closes every tenant (which in turn
closes fleets, worker processes, and storage files).  ``drain=False``
discards the backlog instead of serving it.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.cloud.process_member import FrameChannel
from repro.exceptions import (
    FrameCorruptionError,
    FrameTooLargeError,
    ServiceClosedError,
    WireTimeoutError,
)
from repro.service.protocol import (
    DEFAULT_MAX_MESSAGE_BYTES,
    MUTATING_OPS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    ServiceRequest,
    ServiceResponse,
    SocketConnection,
)
from repro.service.tenants import TenantRegistry, TenantSession


class _ServiceConnection:
    """One client connection: a frame channel plus a send lock.

    Workers finishing out of order share the socket, so every outbound
    message goes through :meth:`send`, which serializes writes and swallows
    transport errors (a client that hung up no longer cares about its
    responses; the server must not die on its behalf).
    """

    def __init__(self, channel: FrameChannel):
        self.channel = channel
        self._send_lock = threading.Lock()

    def send(self, response: ServiceResponse) -> bool:
        with self._send_lock:
            try:
                self.channel.send_message(response)
                return True
            except Exception:
                # OSError/EOFError/WireTimeoutError from the transport, but
                # also anything pickling raises: an undeliverable response
                # must never kill the worker that produced it
                return False

    def close(self) -> None:
        with self._send_lock:
            self.channel.close()


class EncryptedSearchService:
    """A multi-tenant encrypted-search server over TCP."""

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_workers: int = 4,
        queue_depth: int = 64,
        drain_timeout: float = 30.0,
        handshake_timeout: float = 5.0,
        read_deadline: Optional[float] = 30.0,
        message_timeout: Optional[float] = 10.0,
        send_timeout: Optional[float] = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
    ):
        """``port=0`` binds an ephemeral port (read it from :attr:`address`
        after :meth:`start`).  ``queue_depth`` bounds admitted-but-unserved
        requests across *all* connections; the four wire knobs
        (``handshake_timeout`` / ``read_deadline`` / ``message_timeout`` /
        ``send_timeout``) and ``max_frame_bytes`` are the per-connection
        hardening documented on the module."""
        self.registry = registry if registry is not None else TenantRegistry()
        self._host = host
        self._port = port
        self._num_workers = max(1, int(num_workers))
        self._queue_depth = max(1, int(queue_depth))
        self._drain_timeout = drain_timeout
        self._handshake_timeout = handshake_timeout
        self._read_deadline = read_deadline
        self._message_timeout = message_timeout
        self._send_timeout = send_timeout
        self._max_frame_bytes = int(max_frame_bytes)

        self._queue: "queue.Queue" = queue.Queue(maxsize=self._queue_depth)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._readers: Dict[threading.Thread, None] = {}
        self._connections: List[_ServiceConnection] = []
        self._conn_lock = threading.Lock()

        #: in-flight accounting for the drain barrier: a request is pending
        #: from successful admission until its response has been sent (or
        #: dropped on a dead connection).
        self._pending = 0
        self._pending_cond = threading.Condition()

        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "rejected": 0,
            "rate_limited": 0,
            "expired": 0,
            "deduplicated": 0,
            "dropped_responses": 0,
            "handshake_failures": 0,
            "reaped_connections": 0,
            "corrupt_frames": 0,
            "oversized_frames": 0,
        }

        self._started = False
        self._accepting = False
        self._stopped = False
        self._state_lock = threading.Lock()

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[counter] += amount

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "EncryptedSearchService":
        with self._state_lock:
            if self._started:
                raise ServiceClosedError("service already started")
            self._started = True
            self._accepting = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="svc-accept", daemon=True
        )
        self._accept_thread.start()
        for index in range(self._num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) the service is listening on."""
        if self._listener is None:
            raise ServiceClosedError("service is not started")
        return self._listener.getsockname()[:2]

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` serve the admitted backlog first."""
        with self._state_lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
            self._accepting = False
        # stop new connections: shutdown() (not just close()) is what wakes
        # a thread already blocked in accept() — a blocked accept holds a
        # kernel reference that keeps a merely-closed socket listening
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            deadline = time.monotonic() + self._drain_timeout
            with self._pending_cond:
                while self._pending > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break  # drain timed out; abandon the stragglers
                    self._pending_cond.wait(remaining)
        else:
            # discard the backlog: nobody will be told, but every
            # connection is about to be closed anyway
            while True:
                try:
                    self._queue.get_nowait()
                    self._finish_request()
                except queue.Empty:
                    break
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=self._drain_timeout)
        with self._conn_lock:
            connections = list(self._connections)
            readers = list(self._readers)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for reader in readers:
            reader.join(timeout=5.0)
        self.registry.close_all()

    def __enter__(self) -> "EncryptedSearchService":
        return self.start() if not self._started else self

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    # -- stats --------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            counters = dict(self._counters)
        with self._pending_cond:
            counters["pending"] = self._pending
        with self._conn_lock:
            counters["open_connections"] = len(self._connections)
        return counters

    # -- accept / read ------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._accepting:
            try:
                client_socket, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            if not self._accepting:  # raced with stop(): refuse, don't serve
                client_socket.close()
                return
            # the handshake happens on the reader thread, never here: a
            # peer that connects and goes silent must not stall accept
            reader = threading.Thread(
                target=self._reader_loop, args=(client_socket,),
                name="svc-reader", daemon=True,
            )
            with self._conn_lock:
                self._readers[reader] = None
            reader.start()

    def _handshake(self, client_socket: socket.socket) -> Optional[_ServiceConnection]:
        """Run the hello exchange under ``handshake_timeout``; None on failure."""
        transport = SocketConnection(
            client_socket,
            read_timeout=self._handshake_timeout,
            message_timeout=self._handshake_timeout,
            send_timeout=self._send_timeout,
            max_message_bytes=self._max_frame_bytes,
        )
        channel = FrameChannel(transport, max_frame_bytes=self._max_frame_bytes)
        try:
            channel.recv_hello("service client")
            channel.send_hello()
        except Exception:
            # never-sends, garbage-before-hello, version mismatch, or a
            # peer that vanished: one counter, one closed socket, no thread
            self._count("handshake_failures")
            channel.close()
            return None
        # steady state: switch from the handshake deadline to the idle one
        transport.read_timeout = self._read_deadline
        transport.message_timeout = self._message_timeout
        return _ServiceConnection(channel)

    def _reader_loop(self, client_socket: socket.socket) -> None:
        connection = self._handshake(client_socket)
        if connection is None:
            self._forget_reader()
            return
        with self._conn_lock:
            self._connections.append(connection)
        try:
            self._read_requests(connection)
        finally:
            connection.close()
            with self._conn_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
            self._forget_reader()

    def _forget_reader(self) -> None:
        with self._conn_lock:
            self._readers.pop(threading.current_thread(), None)

    def _read_requests(self, connection: _ServiceConnection) -> None:
        while True:
            try:
                message = connection.channel.recv_message()
            except (EOFError, OSError):
                return  # client hung up (or shutdown closed the socket)
            except FrameTooLargeError as error:
                # the request id is unknowable (the frame was refused), so
                # answer on id -1 as a courtesy, then drop the connection —
                # clients enforce the same cap before sending, making this
                # the hostile/corrupted-peer path, not a normal error path
                self._count("oversized_frames")
                self._count("reaped_connections")
                connection.send(
                    ServiceResponse(
                        request_id=-1,
                        status=STATUS_ERROR,
                        error=str(error),
                        error_type="FrameTooLargeError",
                    )
                )
                return
            except FrameCorruptionError:
                self._count("corrupt_frames")
                self._count("reaped_connections")
                return
            except WireTimeoutError:
                # idle past read_deadline or wedged mid-frame past
                # message_timeout: reap the connection, free the thread
                self._count("reaped_connections")
                return
            except ValueError:
                return  # closed-socket race inside recv plumbing
            if not isinstance(message, ServiceRequest):
                connection.send(
                    ServiceResponse(
                        request_id=getattr(message, "request_id", -1),
                        status=STATUS_ERROR,
                        error=f"expected a ServiceRequest, got {type(message).__name__}",
                        error_type="ServiceError",
                    )
                )
                continue
            self._admit(message, connection)

    def _admit(self, request: ServiceRequest, connection: _ServiceConnection) -> None:
        if not self._accepting:
            connection.send(
                ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_ERROR,
                    error="service is shutting down",
                    error_type="ServiceClosedError",
                )
            )
            return
        session = self._session_for(request)
        if session is not None and session.rate_limit is not None:
            if not session.rate_limit.try_acquire():
                session.note_rate_limited()
                self._count("rate_limited")
                connection.send(
                    ServiceResponse(
                        request_id=request.request_id,
                        status=STATUS_REJECTED,
                        error=(
                            f"tenant {request.tenant!r} is over its rate "
                            "limit; back off and retry"
                        ),
                        error_type="TenantRateLimitedError",
                    )
                )
                return
        # claim the pending slot BEFORE the put: a worker may finish the
        # request between put_nowait and a later increment, and the drain
        # barrier must never observe pending == 0 with work still queued
        self._begin_request()
        try:
            self._queue.put_nowait((request, connection, time.monotonic()))
        except queue.Full:
            self._finish_request()
            self._count("rejected")
            connection.send(
                ServiceResponse(
                    request_id=request.request_id,
                    status=STATUS_REJECTED,
                    error="admission queue is full",
                    error_type="ServiceOverloadedError",
                )
            )
            return
        self._count("admitted")

    def _session_for(self, request: ServiceRequest) -> Optional[TenantSession]:
        try:
            return self.registry.get(request.tenant)
        except Exception:
            # unknown tenant: admit anyway so the worker produces the
            # usual typed UnknownTenantError response
            return None

    # -- execution ----------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, connection, admitted_at = item
            try:
                response = self._serve(request, admitted_at)
                if not connection.send(response):
                    self._count("dropped_responses")
            finally:
                # unconditionally: the drain barrier and stats() must stay
                # exact even when serving or sending blew up — a connection
                # that died after admission must not leak its pending slot
                self._finish_request()

    def _serve(self, request: ServiceRequest, admitted_at: float) -> ServiceResponse:
        started = time.perf_counter()

        def finish(
            status: str,
            result: object = None,
            error: Optional[str] = None,
            error_type: Optional[str] = None,
        ) -> ServiceResponse:
            return ServiceResponse(
                request_id=request.request_id,
                status=status,
                result=result,
                error=error,
                error_type=error_type,
                service_seconds=time.perf_counter() - started,
            )

        session: Optional[TenantSession] = None
        dedup_key: Optional[Tuple[str, int]] = None
        try:
            session = self.registry.get(request.tenant)
            # a request whose client gave up while it queued is dropped
            # unexecuted — capacity goes to callers still listening
            if request.ttl_seconds is not None and (
                time.monotonic() - admitted_at > request.ttl_seconds
            ):
                session.note_expired()
                self._count("expired")
                return finish(
                    STATUS_ERROR,
                    error=(
                        f"request deadline of {request.ttl_seconds:.3f}s "
                        "expired while queued; dropped without executing"
                    ),
                    error_type="DeadlineExceededError",
                )
            if request.client_id and request.op in MUTATING_OPS:
                dedup_key = (request.client_id, request.request_id)
                is_primary, outcome = session.dedup.claim(dedup_key)
                if not is_primary:
                    # replayed delivery: return the original outcome; the
                    # mutation was applied exactly once, by the primary
                    session.note_deduplicated()
                    self._count("deduplicated")
                    status, result, error, error_type = outcome
                    return finish(status, result, error, error_type)
            result = session.execute(request.op, request.payload)
            if dedup_key is not None:
                session.dedup.complete(dedup_key, (STATUS_OK, result, None, None))
                dedup_key = None
            return finish(STATUS_OK, result=result)
        except Exception as exc:  # every failure becomes a response
            outcome = (STATUS_ERROR, None, str(exc), type(exc).__name__)
            if dedup_key is not None and session is not None:
                # record the failure too: the replay must see "it failed",
                # not silently run the mutation a second time
                session.dedup.complete(dedup_key, outcome)
                dedup_key = None
            return finish(STATUS_ERROR, error=str(exc), error_type=type(exc).__name__)
        finally:
            if dedup_key is not None and session is not None:
                session.dedup.abandon(dedup_key)

    # -- pending accounting -------------------------------------------------------
    def _begin_request(self) -> None:
        with self._pending_cond:
            self._pending += 1

    def _finish_request(self) -> None:
        with self._pending_cond:
            self._pending -= 1
            if self._pending <= 0:
                self._pending_cond.notify_all()
