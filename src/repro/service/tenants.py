"""Tenant sessions: one keystore, one owner, one fleet per tenant.

The service is multi-tenant in the strongest sense the library supports:
each tenant gets its *own* :class:`~repro.owner.keystore.KeyStore` (keys are
never shared across tenants), its own :class:`~repro.owner.db_owner.DBOwner`
(and therefore its own cloud servers and, when configured, its own sharded
fleet), and its own engine caches.  Nothing cloud-side is shared, so one
tenant's adversarial view never contains another tenant's tokens — the
multi-tenant analogue of the paper's non-collusion placement rules.

:class:`TenantRegistry` owns the name → session map.  Sessions are either
*provisioned* (the registry builds the owner from a relation and policy and
outsources the requested attributes) or *registered* (tests and benchmarks
hand in a pre-built owner).  :class:`TenantSession` is the execution target
a service worker dispatches a request to; the heavy lifting — engine
locking, cache coherence — lives in the owner/engine layer, so a session
only adds request dispatch and served/error accounting.

Resilience additions (PR 10)
----------------------------
Each session optionally carries a :class:`TokenBucket` (per-tenant rate
limit, consulted by the server's admission path — a noisy tenant sheds its
*own* load as :class:`~repro.exceptions.TenantRateLimitedError` before it
can crowd the shared queue) and always carries a :class:`DedupWindow`
keyed by ``(client_id, request_id)``, which makes replayed mutating ops
exactly-once: a retrying client that lost the connection mid-insert can
resend blind, and the second delivery returns the first one's outcome
instead of applying the insert twice.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.crypto.base import EncryptedSearchScheme
from repro.data.partition import SensitivityPolicy
from repro.data.relation import Relation
from repro.exceptions import ServiceClosedError, ServiceError, UnknownTenantError
from repro.owner.db_owner import DBOwner
from repro.owner.keystore import KeyStore


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` never blocks — admission control wants an immediate
    yes/no, and the *client* owns the backoff (it knows its deadline; the
    server does not).  The bucket starts full, refills continuously, and
    ``clock`` is injectable so tests control time instead of sleeping.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ServiceError("token bucket needs positive rate and burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last_refill = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_refill) * self.rate
            )
            self._last_refill = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False


#: Dedup outcome payload: (status, result, error, error_type) — everything
#: needed to rebuild a ServiceResponse for the duplicate delivery.
DedupOutcome = Tuple[str, object, Optional[str], Optional[str]]


class DedupWindow:
    """Bounded exactly-once memory keyed by ``(client_id, request_id)``.

    ``claim`` is the worker-side entry point: the first claimant becomes
    the *primary* (executes for real, then must ``complete``); any
    concurrent or later claimant of the same key blocks until the primary
    completes and receives the recorded outcome — so two racing duplicate
    deliveries can never both execute, and a late duplicate gets the
    original answer instead of a re-application.

    The window holds the most recent ``capacity`` *completed* outcomes
    (FIFO eviction; in-flight keys are never evicted).  A duplicate older
    than the window re-executes — the window is the replay horizon, sized
    to comfortably exceed any client's retry budget.
    """

    _PENDING = object()

    def __init__(self, capacity: int = 1024):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._entries: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        self._completed = 0

    def claim(
        self, key: Tuple[str, int], timeout: float = 30.0
    ) -> Tuple[bool, Optional[DedupOutcome]]:
        """(is_primary, outcome): primaries get (True, None) and MUST call
        :meth:`complete`; duplicates get (False, the primary's outcome)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                entry = self._entries.get(key)
                if entry is None:
                    self._entries[key] = self._PENDING
                    return True, None
                if entry is not self._PENDING:
                    return False, entry  # completed: replay the outcome
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        "duplicate request still executing after "
                        f"{timeout:.1f}s; giving up on the replay"
                    )
                self._done.wait(remaining)

    def complete(self, key: Tuple[str, int], outcome: DedupOutcome) -> None:
        with self._lock:
            self._entries[key] = outcome
            self._entries.move_to_end(key)
            self._completed += 1
            # evict oldest *completed* entries past capacity; pending keys
            # (insertion order precedes completion) are skipped, not lost
            surplus = len(self._entries) - self.capacity
            if surplus > 0:
                for old_key in list(self._entries):
                    if surplus <= 0:
                        break
                    if self._entries[old_key] is self._PENDING:
                        continue
                    del self._entries[old_key]
                    surplus -= 1
            self._done.notify_all()

    def abandon(self, key: Tuple[str, int]) -> None:
        """Release a claimed key without an outcome (primary never ran)."""
        with self._lock:
            if self._entries.get(key) is self._PENDING:
                del self._entries[key]
            self._done.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class TenantSession:
    """One tenant's live state inside the service."""

    def __init__(
        self,
        name: str,
        owner: DBOwner,
        rate_limit: Optional[TokenBucket] = None,
        dedup_capacity: int = 1024,
    ):
        self.name = name
        self.owner = owner
        self.rate_limit = rate_limit
        self.dedup = DedupWindow(dedup_capacity)
        #: guards only the session's own counters; data-path safety comes
        #: from the owner's and engines' locks, so two queries against
        #: different attributes of one tenant may overlap.
        self._stats_lock = threading.Lock()
        self._served = 0
        self._errors = 0
        self._rate_limited = 0
        self._expired = 0
        self._deduplicated = 0
        self._closed = False

    # -- request dispatch ---------------------------------------------------------
    def execute(self, op: str, payload: Tuple) -> object:
        """Run one operation and return its picklable result.

        Raises :class:`ServiceError` (or a subclass) on malformed requests;
        domain errors (:class:`~repro.exceptions.ReproError`) propagate and
        are mapped to error responses by the server loop.
        """
        if self._closed:
            raise ServiceClosedError(f"tenant {self.name!r} is closed")
        try:
            result = self._dispatch(op, payload)
        except Exception:
            with self._stats_lock:
                self._errors += 1
            raise
        with self._stats_lock:
            self._served += 1
        return result

    def _dispatch(self, op: str, payload: Tuple) -> object:
        if op == "ping":
            return "pong"
        if op == "query":
            attribute, value = self._expect(payload, 2, "query(attribute, value)")
            rows = self.owner.query(attribute, value)
            return [(row.rid, dict(row.values)) for row in rows]
        if op == "insert":
            (values,) = self._expect(payload, 1, "insert(values)")
            self.owner.insert(dict(values))
            return None
        if op == "stats":
            return self.stats()
        raise ServiceError(f"unknown op {op!r}")

    @staticmethod
    def _expect(payload: Tuple, arity: int, shape: str) -> Tuple:
        if not isinstance(payload, tuple) or len(payload) != arity:
            raise ServiceError(f"malformed payload; expected {shape}")
        return payload

    # -- accounting ---------------------------------------------------------------
    def note_rate_limited(self) -> None:
        with self._stats_lock:
            self._rate_limited += 1

    def note_expired(self) -> None:
        with self._stats_lock:
            self._expired += 1

    def note_deduplicated(self) -> None:
        with self._stats_lock:
            self._deduplicated += 1

    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "tenant": self.name,
                "served": self._served,
                "errors": self._errors,
                "rate_limited": self._rate_limited,
                "expired": self._expired,
                "deduplicated": self._deduplicated,
                "attributes": list(self.owner.searchable_attributes()),
            }

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Refuse new work and release the tenant's cloud-side resources."""
        self._closed = True
        self.owner.close()


class TenantRegistry:
    """The service's name → :class:`TenantSession` map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sessions: Dict[str, TenantSession] = {}
        self._closed = False

    # -- population ---------------------------------------------------------------
    def provision(
        self,
        name: str,
        relation: Relation,
        policy: SensitivityPolicy,
        attributes: Iterable[str] = (),
        scheme_factory: Optional[Callable[[], EncryptedSearchScheme]] = None,
        rate_limit: Optional[TokenBucket] = None,
        dedup_capacity: int = 1024,
        **owner_kwargs,
    ) -> TenantSession:
        """Build a fully-isolated tenant and outsource its attributes.

        A fresh :class:`KeyStore` is always created — tenants never share
        keys.  ``owner_kwargs`` pass through to :class:`DBOwner` (e.g.
        ``num_clouds``, ``storage_backend``, ``permutation_seed``).
        ``rate_limit`` caps this tenant's admitted qps (see
        :class:`TokenBucket`); ``dedup_capacity`` sizes its replay window.
        """
        owner = DBOwner(
            relation,
            policy,
            keystore=KeyStore(),
            scheme_factory=scheme_factory,
            **owner_kwargs,
        )
        for attribute in attributes:
            owner.outsource(attribute)
        return self.register_session(
            name, owner, rate_limit=rate_limit, dedup_capacity=dedup_capacity
        )

    def register_session(
        self,
        name: str,
        owner: DBOwner,
        rate_limit: Optional[TokenBucket] = None,
        dedup_capacity: int = 1024,
    ) -> TenantSession:
        """Adopt a pre-built owner as tenant ``name`` (tests, benchmarks)."""
        session = TenantSession(
            name, owner, rate_limit=rate_limit, dedup_capacity=dedup_capacity
        )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("tenant registry is closed")
            if name in self._sessions:
                raise ServiceError(f"tenant {name!r} is already registered")
            self._sessions[name] = session
        return session

    def set_rate_limit(self, name: str, rate_limit: Optional[TokenBucket]) -> None:
        """Install (or clear) a tenant's token bucket at runtime."""
        self.get(name).rate_limit = rate_limit

    # -- lookup -------------------------------------------------------------------
    def get(self, name: str) -> TenantSession:
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise UnknownTenantError(
                    f"tenant {name!r} has not been provisioned"
                ) from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle ----------------------------------------------------------------
    def close_all(self) -> None:
        """Close every session (idempotent); called by service shutdown."""
        with self._lock:
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
