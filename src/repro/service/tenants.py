"""Tenant sessions: one keystore, one owner, one fleet per tenant.

The service is multi-tenant in the strongest sense the library supports:
each tenant gets its *own* :class:`~repro.owner.keystore.KeyStore` (keys are
never shared across tenants), its own :class:`~repro.owner.db_owner.DBOwner`
(and therefore its own cloud servers and, when configured, its own sharded
fleet), and its own engine caches.  Nothing cloud-side is shared, so one
tenant's adversarial view never contains another tenant's tokens — the
multi-tenant analogue of the paper's non-collusion placement rules.

:class:`TenantRegistry` owns the name → session map.  Sessions are either
*provisioned* (the registry builds the owner from a relation and policy and
outsources the requested attributes) or *registered* (tests and benchmarks
hand in a pre-built owner).  :class:`TenantSession` is the execution target
a service worker dispatches a request to; the heavy lifting — engine
locking, cache coherence — lives in the owner/engine layer, so a session
only adds request dispatch and served/error accounting.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.crypto.base import EncryptedSearchScheme
from repro.data.partition import SensitivityPolicy
from repro.data.relation import Relation
from repro.exceptions import ServiceClosedError, ServiceError, UnknownTenantError
from repro.owner.db_owner import DBOwner
from repro.owner.keystore import KeyStore


class TenantSession:
    """One tenant's live state inside the service."""

    def __init__(self, name: str, owner: DBOwner):
        self.name = name
        self.owner = owner
        #: guards only the session's own counters; data-path safety comes
        #: from the owner's and engines' locks, so two queries against
        #: different attributes of one tenant may overlap.
        self._stats_lock = threading.Lock()
        self._served = 0
        self._errors = 0
        self._closed = False

    # -- request dispatch ---------------------------------------------------------
    def execute(self, op: str, payload: Tuple) -> object:
        """Run one operation and return its picklable result.

        Raises :class:`ServiceError` (or a subclass) on malformed requests;
        domain errors (:class:`~repro.exceptions.ReproError`) propagate and
        are mapped to error responses by the server loop.
        """
        if self._closed:
            raise ServiceClosedError(f"tenant {self.name!r} is closed")
        try:
            result = self._dispatch(op, payload)
        except Exception:
            with self._stats_lock:
                self._errors += 1
            raise
        with self._stats_lock:
            self._served += 1
        return result

    def _dispatch(self, op: str, payload: Tuple) -> object:
        if op == "ping":
            return "pong"
        if op == "query":
            attribute, value = self._expect(payload, 2, "query(attribute, value)")
            rows = self.owner.query(attribute, value)
            return [(row.rid, dict(row.values)) for row in rows]
        if op == "insert":
            (values,) = self._expect(payload, 1, "insert(values)")
            self.owner.insert(dict(values))
            return None
        if op == "stats":
            return self.stats()
        raise ServiceError(f"unknown op {op!r}")

    @staticmethod
    def _expect(payload: Tuple, arity: int, shape: str) -> Tuple:
        if not isinstance(payload, tuple) or len(payload) != arity:
            raise ServiceError(f"malformed payload; expected {shape}")
        return payload

    # -- accounting ---------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "tenant": self.name,
                "served": self._served,
                "errors": self._errors,
                "attributes": list(self.owner.searchable_attributes()),
            }

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Refuse new work and release the tenant's cloud-side resources."""
        self._closed = True
        self.owner.close()


class TenantRegistry:
    """The service's name → :class:`TenantSession` map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sessions: Dict[str, TenantSession] = {}
        self._closed = False

    # -- population ---------------------------------------------------------------
    def provision(
        self,
        name: str,
        relation: Relation,
        policy: SensitivityPolicy,
        attributes: Iterable[str] = (),
        scheme_factory: Optional[Callable[[], EncryptedSearchScheme]] = None,
        **owner_kwargs,
    ) -> TenantSession:
        """Build a fully-isolated tenant and outsource its attributes.

        A fresh :class:`KeyStore` is always created — tenants never share
        keys.  ``owner_kwargs`` pass through to :class:`DBOwner` (e.g.
        ``num_clouds``, ``storage_backend``, ``permutation_seed``).
        """
        owner = DBOwner(
            relation,
            policy,
            keystore=KeyStore(),
            scheme_factory=scheme_factory,
            **owner_kwargs,
        )
        for attribute in attributes:
            owner.outsource(attribute)
        return self.register_session(name, owner)

    def register_session(self, name: str, owner: DBOwner) -> TenantSession:
        """Adopt a pre-built owner as tenant ``name`` (tests, benchmarks)."""
        session = TenantSession(name, owner)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("tenant registry is closed")
            if name in self._sessions:
                raise ServiceError(f"tenant {name!r} is already registered")
            self._sessions[name] = session
        return session

    # -- lookup -------------------------------------------------------------------
    def get(self, name: str) -> TenantSession:
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise UnknownTenantError(
                    f"tenant {name!r} has not been provisioned"
                ) from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle ----------------------------------------------------------------
    def close_all(self) -> None:
        """Close every session (idempotent); called by service shutdown."""
        with self._lock:
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
