"""Deterministic fault injection for the service wire.

The fleet's :class:`FaultInjectionHarness` (tests/conftest.py) proves that
killing cloud members is unobservable; this module extends the same chaos
discipline up to the client↔service boundary.  A
:class:`ChaosConnection` / :class:`ChaosChannel` pair wraps one client
connection and injects faults at *scripted request offsets* — no wall-clock
randomness, no flaky probabilities at test time: a :class:`ChaosScript`
says exactly which request on which connection suffers what, and
:meth:`ChaosScenario.seeded` derives such scripts from a seed for
statistical (benchmark) use.

Fault kinds, and what each one proves when parity still holds:

``drop``
    The connection closes before the request is sent.  Proves the client
    reconnects and replays, and that a replayed request is not lost.
``truncate``
    The frame's socket message announces its full length but only a prefix
    of the bytes arrives before the connection closes.  Proves the server's
    reader survives mid-frame EOF without leaking its thread or slot.
``stall``
    The frame pauses mid-send (slow-loris shape) and then completes.
    Proves a *slow* client is served, not reaped, while the pause stays
    under the server's ``message_timeout``.
``corrupt``
    One bit of the payload flips after the checksum was computed — exactly
    what in-flight corruption looks like.  Proves the CRC fails loudly
    (server reaps the poisoned stream) and the client's retry recovers.
``duplicate``
    The same request is delivered twice.  Proves the per-tenant dedup
    window applies mutating ops exactly once and that double responses on
    one request id are harmless.

Every injection is counted on its script (``script.injected``), so tests
assert the chaos actually happened — a parity suite whose faults silently
never fired proves nothing.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.process_member import FrameChannel
from repro.exceptions import ServiceError
from repro.service.protocol import (
    _MESSAGE_HEADER,
    DEFAULT_MAX_MESSAGE_BYTES,
    ServiceRequest,
    SocketConnection,
)

#: The fault kinds a :class:`ChaosEvent` may carry.
CHAOS_KINDS: Tuple[str, ...] = ("drop", "truncate", "stall", "corrupt", "duplicate")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault: ``kind`` strikes the ``at_request``-th request
    sent on the connection (0-based, counting every attempt including
    replays).  ``seconds`` parameterises ``stall``, ``keep_bytes`` the
    truncation prefix, ``copies`` the duplicate fan-out."""

    kind: str
    at_request: int
    seconds: float = 0.02
    keep_bytes: int = 6
    copies: int = 2

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS:
            raise ServiceError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}"
            )


class ChaosScript:
    """The faults for ONE connection: request offset → event.

    A connection-killing event (``drop``/``truncate``) ends the script
    early by construction — the client reconnects and draws the scenario's
    next script, so later offsets on a killed connection simply never
    happen.  ``injected`` counts the faults that actually fired.
    """

    def __init__(self, events: Iterable[ChaosEvent] = ()):
        self._events: Dict[int, ChaosEvent] = {}
        for event in events:
            if event.at_request in self._events:
                raise ServiceError(
                    f"two chaos events scripted at request {event.at_request}"
                )
            self._events[event.at_request] = event
        self.injected: "Counter[str]" = Counter()

    def event_for(self, request_index: int) -> Optional[ChaosEvent]:
        return self._events.get(request_index)

    def note(self, kind: str) -> None:
        self.injected[kind] += 1

    def __len__(self) -> int:
        return len(self._events)


class ChaosScenario:
    """Scripts for a client's successive connections, in dial order.

    Connection *n* (the initial dial, then each chaos- or fault-driven
    reconnect) runs under ``scripts[n]``; once the list is exhausted every
    further connection is clean — a scenario is a finite storm, after which
    the client must be able to finish its work.  Thread-safe: the client's
    reconnect path may run from any thread.
    """

    def __init__(self, scripts: Sequence[ChaosScript] = ()):
        self._scripts = list(scripts)
        self._lock = threading.Lock()
        self._issued: List[ChaosScript] = []

    @classmethod
    def seeded(
        cls,
        seed: int,
        connections: int,
        requests_per_connection: int,
        rates: Dict[str, float],
        seconds: float = 0.02,
        keep_bytes: int = 6,
    ) -> "ChaosScenario":
        """Derive scripts from a seed: each request offset independently
        draws one fault with the given per-kind probabilities (e.g.
        ``{"drop": 0.05}`` = 5% injected connection drops).  Same seed,
        same storm — the FaultInjectionHarness discipline."""
        if sum(rates.values()) > 1.0:
            raise ServiceError("chaos rates sum above 1.0")
        rng = random.Random(seed)
        scripts = []
        for _connection in range(connections):
            events = []
            for offset in range(requests_per_connection):
                draw = rng.random()
                cumulative = 0.0
                for kind in sorted(rates):
                    cumulative += rates[kind]
                    if draw < cumulative:
                        events.append(
                            ChaosEvent(
                                kind,
                                offset,
                                seconds=seconds,
                                keep_bytes=keep_bytes,
                            )
                        )
                        break
            scripts.append(ChaosScript(events))
        return cls(scripts)

    def next_script(self) -> ChaosScript:
        with self._lock:
            index = len(self._issued)
            script = (
                self._scripts[index] if index < len(self._scripts) else ChaosScript()
            )
            self._issued.append(script)
            return script

    @property
    def connections_used(self) -> int:
        with self._lock:
            return len(self._issued)

    @property
    def injected(self) -> "Counter[str]":
        """Aggregate fired-fault counts across every issued connection."""
        with self._lock:
            total: "Counter[str]" = Counter()
            for script in self._issued:
                total.update(script.injected)
            return total

    # -- client plumbing ----------------------------------------------------------
    def connect(
        self,
        sock: socket.socket,
        max_message_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
    ) -> Tuple["ChaosConnection", "ChaosChannel"]:
        """Build the fault-injected transport/channel pair for a fresh
        connection — the hook :class:`~repro.service.client.ServiceClient`
        calls when constructed with ``chaos=scenario``."""
        script = self.next_script()
        transport = ChaosConnection(sock, max_message_bytes=max_message_bytes)
        channel = ChaosChannel(transport, script, max_frame_bytes=max_message_bytes)
        return transport, channel


class ChaosConnection(SocketConnection):
    """A :class:`SocketConnection` with armable byte-level faults.

    The channel above arms exactly one fault, sends, and disarms; the
    connection implements what each fault looks like *on the socket*:
    truncation really leaves a half-announced message behind, corruption
    really flips a bit after the CRC was computed, a stall really parks
    mid-message.  Receive-side behaviour is untouched — the server's
    responses travel clean; it is the client's *sends* the storm hits.
    """

    def __init__(self, sock: socket.socket, **kwargs):
        super().__init__(sock, **kwargs)
        self._corrupt_sends = False
        self._truncate_keep: Optional[int] = None
        self._stall_seconds: Optional[float] = None

    # -- arming (one-shot unless noted) -------------------------------------------
    def arm_corrupt(self) -> None:
        """Corrupt every outgoing socket message until :meth:`disarm`."""
        self._corrupt_sends = True

    def disarm(self) -> None:
        self._corrupt_sends = False

    def arm_truncate(self, keep_bytes: int) -> None:
        """Next socket message: announce fully, send ``keep_bytes``, die."""
        self._truncate_keep = max(0, int(keep_bytes))

    def arm_stall(self, seconds: float) -> None:
        """Next socket message: pause mid-payload for ``seconds``."""
        self._stall_seconds = float(seconds)

    # -- faulted sends ------------------------------------------------------------
    def send_bytes(self, data) -> None:
        view = memoryview(data)
        if self._truncate_keep is not None:
            keep = min(self._truncate_keep, view.nbytes)
            self._truncate_keep = None
            # honest header, dishonest body: the receiver is now owed
            # view.nbytes bytes it will never get
            header = _MESSAGE_HEADER.pack(view.nbytes, zlib.crc32(view))
            self._send_all(memoryview(header))
            if keep:
                self._send_all(view[:keep])
            self.close()
            raise OSError("chaos: frame truncated mid-send, connection dropped")
        if self._corrupt_sends:
            # CRC of the ORIGINAL bytes, then flip one bit: exactly what
            # in-flight corruption under a correct sender looks like
            crc = zlib.crc32(view)
            poisoned = bytearray(view)
            poisoned[len(poisoned) // 2] ^= 0x01
            header = _MESSAGE_HEADER.pack(len(poisoned), crc)
            self._send_all(memoryview(header))
            self._send_all(memoryview(poisoned))
            return
        if self._stall_seconds is not None:
            seconds = self._stall_seconds
            self._stall_seconds = None
            header = _MESSAGE_HEADER.pack(view.nbytes, zlib.crc32(view))
            self._send_all(memoryview(header))
            half = view.nbytes // 2
            if half:
                self._send_all(view[:half])
            time.sleep(seconds)
            self._send_all(view[half:])
            return
        super().send_bytes(data)


class ChaosChannel(FrameChannel):
    """A :class:`FrameChannel` that consults a :class:`ChaosScript` on
    every outbound :class:`ServiceRequest` (hello frames and other
    plumbing pass through untouched — chaos strikes requests, not the
    handshake, which has its own dedicated failure-mode tests)."""

    def __init__(
        self,
        connection: ChaosConnection,
        script: ChaosScript,
        max_frame_bytes: Optional[int] = None,
    ):
        super().__init__(connection, max_frame_bytes=max_frame_bytes)
        self.script = script
        self._request_index = 0

    def send_message(self, obj) -> None:
        if not isinstance(obj, ServiceRequest):
            return super().send_message(obj)
        index = self._request_index
        self._request_index += 1
        event = self.script.event_for(index)
        if event is None:
            return super().send_message(obj)
        connection: ChaosConnection = self._connection
        if event.kind == "drop":
            self.script.note("drop")
            self.close()
            raise OSError("chaos: connection dropped before send")
        if event.kind == "duplicate":
            self.script.note("duplicate")
            for _copy in range(max(2, event.copies)):
                super().send_message(obj)
            return
        if event.kind == "corrupt":
            # counted before sending: the server may reap the poisoned
            # stream (and RST us) before the frame's later messages land
            self.script.note("corrupt")
            connection.arm_corrupt()
            try:
                super().send_message(obj)
            finally:
                connection.disarm()
            return
        if event.kind == "truncate":
            connection.arm_truncate(event.keep_bytes)
            self.script.note("truncate")
            super().send_message(obj)  # raises once the prefix is on the wire
            return
        # stall: pause mid-frame, then complete — the slow-loris shape
        connection.arm_stall(event.seconds)
        self.script.note("stall")
        return super().send_message(obj)
