"""Client for the encrypted-search service.

:class:`ServiceClient` owns one TCP connection and multiplexes any number
of in-flight requests over it.  A background receiver thread reads
responses and resolves the :class:`concurrent.futures.Future` registered
under each request id, so callers can either block per request
(:meth:`call`) or pipeline — fire many :meth:`submit` calls and collect the
futures later.  The open-loop load harness depends on pipelining: an
open-loop client must issue the next arrival on schedule even while earlier
requests are still in flight, or measured latency silently degrades into
closed-loop latency.

Response statuses map to exceptions: ``"rejected"`` raises
:class:`~repro.exceptions.ServiceOverloadedError` (or its
:class:`~repro.exceptions.TenantRateLimitedError` subclass — back off and
retry), ``"error"`` raises the server-side exception type when it is a
known :class:`~repro.exceptions.ReproError`, else
:class:`~repro.exceptions.ServiceError`.

Resilience (PR 10)
------------------
With a :class:`RetryPolicy`, :meth:`call` becomes an *idempotent retrying*
call: it allocates one request id for the logical request and replays that
same ``(client_id, request_id)`` across attempts — reconnecting first when
the connection died — with exponential backoff and **seeded** jitter (two
clients built with the same seed back off identically; chaos tests are
reproducible).  The server's per-tenant dedup window makes the replay
exactly-once for mutating ops: a retried ``insert`` whose first delivery
actually executed returns the original outcome instead of applying again.

Connection loss is handled exactly once: whichever of the receiver thread,
a failed send, or :meth:`close` notices first closes the transport
(idempotently) and fails every pending future; late arrivals on the dict
are impossible because futures are popped under the lock before being
resolved, and a client that died mid-handshake leaves no socket and no
receiver thread behind.
"""

from __future__ import annotations

import itertools
import os
import random
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Tuple

from repro import exceptions
from repro.cloud.process_member import FrameChannel
from repro.exceptions import (
    DeadlineExceededError,
    FrameTooLargeError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    WireProtocolError,
)
from repro.service.protocol import (
    DEFAULT_MAX_MESSAGE_BYTES,
    STATUS_OK,
    STATUS_REJECTED,
    ServiceRequest,
    ServiceResponse,
    SocketConnection,
)

_CLIENT_SEQUENCE = itertools.count()


def _default_client_id() -> str:
    """Unique per client object within and across processes on one host —
    the dedup key's namespace, not a secret."""
    return f"c{os.getpid()}-{next(_CLIENT_SEQUENCE)}"


class RetryPolicy:
    """Exponential backoff with seeded jitter.

    Attempt ``n`` (0-based) sleeps ``base_delay * multiplier**n`` capped at
    ``max_delay``, scaled by a jitter factor drawn from
    ``[1 - jitter, 1]`` using the policy's own seeded RNG — full
    determinism for tests, desynchronised retries in fleets (seed per
    client).  ``max_attempts`` counts total tries, first included.
    """

    def __init__(
        self,
        max_attempts: int = 6,
        base_delay: float = 0.02,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ServiceError("retry policy needs at least one attempt")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = min(1.0, max(0.0, float(jitter)))
        self.seed = seed

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return raw * rng.uniform(1.0 - self.jitter, 1.0)


#: Failures worth replaying the same request for: the transport died (the
#: server may or may not have seen the request — dedup disambiguates), the
#: wire itself misbehaved, or the server explicitly said "later".
_RETRYABLE = (
    ServiceClosedError,
    ServiceOverloadedError,
    WireProtocolError,
    ConnectionError,
    EOFError,
    OSError,
)


class ServiceClient:
    """One connection to an :class:`~repro.service.server.EncryptedSearchService`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        client_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        chaos=None,
        connect_timeout: float = 10.0,
        handshake_timeout: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_MESSAGE_BYTES,
    ):
        """``timeout`` bounds each blocking :meth:`call` *attempt* (None =
        wait forever); pipelined futures apply it at ``result()`` time.
        ``retry`` opts into the idempotent retrying behaviour; ``chaos``
        accepts a :class:`~repro.service.chaos.ChaosScenario` whose scripts
        fault-inject each successive connection (tests/benchmarks)."""
        self._host = host
        self._port = port
        self._timeout = timeout
        self.client_id = client_id if client_id is not None else _default_client_id()
        self._retry = retry
        self._chaos = chaos
        self._connect_timeout = connect_timeout
        self._handshake_timeout = handshake_timeout
        self._max_frame_bytes = int(max_frame_bytes)
        self._rng = random.Random(retry.seed if retry is not None else 0)

        self._send_lock = threading.RLock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, "Future[ServiceResponse]"] = {}
        self._next_id = 0
        self._closed = False
        self._close_lock = threading.Lock()
        self._channel: Optional[FrameChannel] = None
        self._receiver: Optional[threading.Thread] = None
        self._connect()

    # -- connection management ----------------------------------------------------
    def _connect(self) -> None:
        """Dial, handshake (bounded), and start this connection's receiver."""
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        sock.settimeout(None)
        try:
            if self._chaos is not None:
                transport, channel = self._chaos.connect(
                    sock, max_message_bytes=self._max_frame_bytes
                )
            else:
                transport = SocketConnection(
                    sock, max_message_bytes=self._max_frame_bytes
                )
                channel = FrameChannel(
                    transport, max_frame_bytes=self._max_frame_bytes
                )
            # a server that accepts but never answers the hello must fail
            # the constructor, not park it: bound the handshake reads
            transport.read_timeout = self._handshake_timeout
            transport.message_timeout = self._handshake_timeout
            channel.send_hello()
            channel.recv_hello("service")
            transport.read_timeout = None
            transport.message_timeout = None
        except BaseException:
            # mid-handshake death leaks nothing: no channel, no receiver
            # thread, and the socket is closed before the error surfaces
            sock.close()
            raise
        self._channel = channel
        self._receiver = threading.Thread(
            target=self._receive_loop, args=(channel,),
            name="svc-client-recv", daemon=True,
        )
        self._receiver.start()

    def _ensure_connected(self) -> None:
        """(Re)establish the connection; caller holds ``_send_lock``."""
        if self._channel is not None and not self._channel.closed:
            return
        old_receiver = self._receiver
        self._channel = None
        self._receiver = None
        if old_receiver is not None and old_receiver is not threading.current_thread():
            old_receiver.join(timeout=5.0)
        # anything still pending belonged to the dead connection
        self._fail_pending(ServiceClosedError("service connection lost"))
        self._connect()

    def _connection_lost(self, channel: FrameChannel, error: Exception) -> None:
        """Exactly-once cleanup for a dead connection, from any thread."""
        channel.close()  # idempotent: racing closers are safe
        self._fail_pending(error)

    # -- request issue ------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        op: str,
        payload: Tuple = (),
        deadline: Optional[float] = None,
    ) -> "Future[object]":
        """Send one request without waiting; the future resolves to the
        op's result (or raises the mapped service exception).  ``deadline``
        is the request's time-to-live in seconds: the server drops it
        unexecuted once the budget expires."""
        with self._send_lock:
            if self._closed:
                raise ServiceClosedError("client is closed")
            self._ensure_connected()
            request_id = self._next_id
            self._next_id += 1
            return self._send_request(request_id, tenant, op, payload, deadline)

    def _send_request(
        self,
        request_id: int,
        tenant: str,
        op: str,
        payload: Tuple,
        deadline: Optional[float],
    ) -> "Future[object]":
        """Register a future and ship the request; caller holds ``_send_lock``."""
        channel = self._channel
        assert channel is not None
        future: "Future[object]" = Future()
        with self._pending_lock:
            self._pending[request_id] = future
        try:
            channel.send_message(
                ServiceRequest(
                    request_id=request_id,
                    tenant=tenant,
                    op=op,
                    payload=tuple(payload),
                    client_id=self.client_id,
                    ttl_seconds=deadline,
                )
            )
        except FrameTooLargeError:
            # nothing hit the wire (the channel checks before sending):
            # the connection is still good, only this request is refused
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise
        except Exception as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            self._connection_lost(channel, ServiceClosedError(
                f"service connection failed while sending: {exc}"
            ))
            raise ServiceClosedError(
                f"service connection failed while sending: {exc}"
            ) from exc
        return future

    def call(
        self,
        tenant: str,
        op: str,
        payload: Tuple = (),
        deadline: Optional[float] = None,
    ) -> object:
        """Send one request and block for its result.

        With a :class:`RetryPolicy` this is the idempotent retrying path:
        one request id for the logical request, replayed verbatim across
        reconnects, with seeded-jitter backoff between attempts.
        """
        if self._retry is None:
            return self.submit(tenant, op, payload, deadline).result(
                timeout=self._timeout
            )
        with self._send_lock:
            if self._closed:
                raise ServiceClosedError("client is closed")
            request_id = self._next_id
            self._next_id += 1
        last_error: Optional[Exception] = None
        for attempt in range(self._retry.max_attempts):
            if attempt:
                time.sleep(self._retry.delay(attempt - 1, self._rng))
            try:
                with self._send_lock:
                    if self._closed:
                        raise ServiceClosedError("client is closed")
                    self._ensure_connected()
                    future = self._send_request(
                        request_id, tenant, op, payload, deadline
                    )
                return future.result(timeout=self._timeout)
            except DeadlineExceededError:
                raise  # the deadline IS the retry budget; don't outlive it
            except FrameTooLargeError:
                raise  # deterministic: the replay would be oversized too
            except _RETRYABLE as exc:
                if self._closed:
                    raise
                last_error = exc
            except FutureTimeoutError:
                raise  # per-attempt timeout is the caller's patience bound
        assert last_error is not None
        raise last_error

    # -- convenience wrappers -----------------------------------------------------
    def ping(self, tenant: str, deadline: Optional[float] = None) -> object:
        return self.call(tenant, "ping", deadline=deadline)

    def query(
        self,
        tenant: str,
        attribute: str,
        value: object,
        deadline: Optional[float] = None,
    ) -> object:
        return self.call(tenant, "query", (attribute, value), deadline=deadline)

    def insert(
        self,
        tenant: str,
        values: Dict[str, object],
        deadline: Optional[float] = None,
    ) -> None:
        self.call(tenant, "insert", (dict(values),), deadline=deadline)

    def stats(self, tenant: str, deadline: Optional[float] = None) -> object:
        return self.call(tenant, "stats", deadline=deadline)

    # -- response plumbing --------------------------------------------------------
    def _receive_loop(self, channel: FrameChannel) -> None:
        while True:
            try:
                message = channel.recv_message()
            except Exception as error:
                # EOF/OSError on hangup, FrameCorruptionError on a flipped
                # bit, WireTimeoutError on a wedged server: all end this
                # connection the same way, exactly once
                self._connection_lost(
                    channel,
                    ServiceClosedError(f"service connection closed: {error}")
                    if not isinstance(error, ServiceError)
                    else error,
                )
                return
            if not isinstance(message, ServiceResponse):
                continue  # protocol noise; nothing to resolve
            with self._pending_lock:
                future = self._pending.pop(message.request_id, None)
            if future is None:
                continue  # duplicate or post-close response
            self._resolve(future, message)

    @staticmethod
    def _resolve(future: "Future[object]", message: ServiceResponse) -> None:
        """Resolve one future exactly once (popped owners can't race, but
        the InvalidStateError guard keeps even a pathological double-pop
        from killing the receiver thread)."""
        try:
            if message.status == STATUS_OK:
                future.set_result(message.result)
            elif message.status == STATUS_REJECTED:
                future.set_exception(ServiceClient._map_rejection(message))
            else:
                future.set_exception(ServiceClient._map_error(message))
        except Exception:
            pass  # already resolved by the failure path; first writer wins

    @staticmethod
    def _map_rejection(message: ServiceResponse) -> Exception:
        exc_cls = getattr(exceptions, message.error_type or "", None)
        if isinstance(exc_cls, type) and issubclass(exc_cls, ServiceOverloadedError):
            return exc_cls(message.error or "request rejected")
        return ServiceOverloadedError(message.error or "request rejected")

    @staticmethod
    def _map_error(message: ServiceResponse) -> Exception:
        """Re-raise the server's exception class when it is a known one."""
        exc_cls = getattr(exceptions, message.error_type or "", None)
        if isinstance(exc_cls, type) and issubclass(exc_cls, exceptions.ReproError):
            return exc_cls(message.error or "request failed")
        return ServiceError(
            f"{message.error_type or 'ServiceError'}: "
            f"{message.error or 'request failed'}"
        )

    def _fail_pending(self, error: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            try:
                future.set_exception(error)
            except Exception:
                pass  # resolved concurrently; exactly-once either way

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        channel = self._channel
        if channel is not None:
            channel.close()
        receiver = self._receiver
        if receiver is not None and receiver is not threading.current_thread():
            receiver.join(timeout=5.0)
        self._fail_pending(ServiceClosedError("client closed"))

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
