"""Client for the encrypted-search service.

:class:`ServiceClient` owns one TCP connection and multiplexes any number
of in-flight requests over it.  A background receiver thread reads
responses and resolves the :class:`concurrent.futures.Future` registered
under each request id, so callers can either block per request
(:meth:`call`) or pipeline — fire many :meth:`submit` calls and collect the
futures later.  The open-loop load harness depends on pipelining: an
open-loop client must issue the next arrival on schedule even while earlier
requests are still in flight, or measured latency silently degrades into
closed-loop latency.

Response statuses map to exceptions: ``"rejected"`` raises
:class:`~repro.exceptions.ServiceOverloadedError` (back off and retry),
``"error"`` raises :class:`~repro.exceptions.ServiceError` carrying the
server-side exception type's name.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

from repro import exceptions
from repro.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.protocol import (
    STATUS_OK,
    STATUS_REJECTED,
    ServiceRequest,
    ServiceResponse,
    make_channel,
)


class ServiceClient:
    """One connection to an :class:`~repro.service.server.EncryptedSearchService`."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = None):
        """``timeout`` bounds each blocking :meth:`call` (None = wait
        forever); pipelined futures apply it at ``result()`` time."""
        self._timeout = timeout
        sock = socket.create_connection((host, port))
        self._channel = make_channel(sock)
        self._channel.send_hello()
        self._channel.recv_hello("service")
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, "Future[ServiceResponse]"] = {}
        self._next_id = 0
        self._closed = False
        self._receiver = threading.Thread(
            target=self._receive_loop, name="svc-client-recv", daemon=True
        )
        self._receiver.start()

    # -- request issue ------------------------------------------------------------
    def submit(self, tenant: str, op: str, payload: Tuple = ()) -> "Future[object]":
        """Send one request without waiting; the future resolves to the
        op's result (or raises the mapped service exception)."""
        future: "Future[object]" = Future()
        with self._send_lock:
            if self._closed:
                raise ServiceClosedError("client is closed")
            request_id = self._next_id
            self._next_id += 1
            with self._pending_lock:
                self._pending[request_id] = future
            try:
                self._channel.send_message(
                    ServiceRequest(
                        request_id=request_id, tenant=tenant, op=op,
                        payload=tuple(payload),
                    )
                )
            except Exception as exc:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                raise ServiceClosedError(
                    f"service connection failed while sending: {exc}"
                ) from exc
        return future

    def call(self, tenant: str, op: str, payload: Tuple = ()) -> object:
        """Send one request and block for its result."""
        return self.submit(tenant, op, payload).result(timeout=self._timeout)

    # -- convenience wrappers -----------------------------------------------------
    def ping(self, tenant: str) -> object:
        return self.call(tenant, "ping")

    def query(self, tenant: str, attribute: str, value: object) -> object:
        return self.call(tenant, "query", (attribute, value))

    def insert(self, tenant: str, values: Dict[str, object]) -> None:
        self.call(tenant, "insert", (dict(values),))

    def stats(self, tenant: str) -> object:
        return self.call(tenant, "stats")

    # -- response plumbing --------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            try:
                message = self._channel.recv_message()
            except (EOFError, OSError, ValueError):
                self._fail_pending(
                    ServiceClosedError("service connection closed")
                )
                return
            if not isinstance(message, ServiceResponse):
                continue  # protocol noise; nothing to resolve
            with self._pending_lock:
                future = self._pending.pop(message.request_id, None)
            if future is None:
                continue  # duplicate or post-close response
            if message.status == STATUS_OK:
                future.set_result(message.result)
            elif message.status == STATUS_REJECTED:
                future.set_exception(
                    ServiceOverloadedError(message.error or "request rejected")
                )
            else:
                future.set_exception(self._map_error(message))

    @staticmethod
    def _map_error(message: ServiceResponse) -> Exception:
        """Re-raise the server's exception class when it is a known one."""
        exc_cls = getattr(exceptions, message.error_type or "", None)
        if isinstance(exc_cls, type) and issubclass(exc_cls, exceptions.ReproError):
            return exc_cls(message.error or "request failed")
        return ServiceError(
            f"{message.error_type or 'ServiceError'}: "
            f"{message.error or 'request failed'}"
        )

    def _fail_pending(self, error: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
            self._channel.close()
        self._receiver.join(timeout=5.0)
        self._fail_pending(ServiceClosedError("client closed"))

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
