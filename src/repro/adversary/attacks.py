"""Concrete attacks the honest-but-curious adversary can mount.

The paper (§I, §VI) names four attacks a cryptographic technique may be
vulnerable to:

* **size attack** — distinguish queries/values by the number of tuples
  returned;
* **frequency-count attack** — recover how many tuples share a value, e.g.
  from deterministic ciphertext equality;
* **workload-skew attack** — identify the most frequently queried values by
  watching many queries;
* **known-plaintext association (KPA-style) attack** — link an encrypted
  sensitive tuple to the cleartext non-sensitive value it shares.

Each attack consumes adversarial observations (views and/or stored
ciphertexts) and returns an :class:`AttackOutcome` stating whether the
adversary gained an advantage and how much.  The security benchmarks run the
same attacks against naive partitioned execution (they succeed) and against
QB (they fail).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.view import AdversarialView, ViewLog
from repro.crypto.base import EncryptedRow


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack attempt."""

    name: str
    succeeded: bool
    advantage: float
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.succeeded


# ---------------------------------------------------------------------------
# size attack
# ---------------------------------------------------------------------------

def size_attack(view_log: ViewLog, distinguish_threshold: int = 1) -> AttackOutcome:
    """Try to distinguish sensitive bins/values by returned output sizes.

    The adversary groups observations by their encrypted-output signature (a
    proxy for the sensitive bin) and compares the sizes of those outputs.  If
    different groups return different numbers of encrypted tuples, the
    adversary can order them ("this value/bin has more sensitive tuples than
    that one"), which is exactly what partitioned data security's Eq. (2)
    forbids.
    """
    sizes_by_group: Dict[Tuple[int, ...], int] = {}
    for view in view_log:
        signature = tuple(sorted(view.returned_sensitive_rids))
        sizes_by_group[signature] = len(signature)
    distinct_sizes = set(sizes_by_group.values())
    # Groups that returned nothing at all carry no size signal.
    distinct_sizes.discard(0)
    succeeded = len(distinct_sizes) > distinguish_threshold
    spread = (max(distinct_sizes) - min(distinct_sizes)) if distinct_sizes else 0
    return AttackOutcome(
        name="size",
        succeeded=succeeded,
        advantage=float(spread),
        details={
            "distinct_output_sizes": sorted(distinct_sizes),
            "groups_observed": len(sizes_by_group),
        },
    )


# ---------------------------------------------------------------------------
# frequency-count attack
# ---------------------------------------------------------------------------

def frequency_count_attack(
    stored_rows: Sequence[EncryptedRow],
    true_counts: Optional[Mapping[object, int]] = None,
) -> AttackOutcome:
    """Recover the value-frequency histogram from ciphertext equality.

    Deterministic encryption assigns equal tags to equal values, so the
    multiset of tag multiplicities *is* the plaintext frequency histogram.
    Probabilistic schemes (and Arx's counter construction) give every row a
    unique tag, so the adversary recovers only the trivial all-ones histogram.

    ``true_counts`` (the real histogram) is used to score the reconstruction;
    without it the attack reports success whenever the recovered histogram is
    non-trivial (some tag repeats).
    """
    tag_counts = Counter(row.search_tag for row in stored_rows if row.search_tag)
    recovered = sorted(tag_counts.values(), reverse=True)
    non_trivial = any(count > 1 for count in recovered)
    if true_counts is None:
        succeeded = non_trivial
        match_fraction = 1.0 if non_trivial else 0.0
    else:
        truth = sorted(true_counts.values(), reverse=True)
        succeeded = non_trivial and recovered == truth
        overlap = sum(min(a, b) for a, b in zip(recovered, truth))
        match_fraction = overlap / max(sum(truth), 1)
    return AttackOutcome(
        name="frequency-count",
        succeeded=succeeded,
        advantage=match_fraction,
        details={
            "recovered_histogram": recovered[:20],
            "rows_observed": len(stored_rows),
        },
    )


# ---------------------------------------------------------------------------
# workload-skew attack
# ---------------------------------------------------------------------------

def workload_skew_attack(
    view_log: ViewLog,
    skew_ratio_threshold: float = 2.0,
) -> AttackOutcome:
    """Identify the hot query value from request repetition.

    The adversary counts how often each request signature recurs.  If one
    signature dominates (ratio over the median beyond the threshold), the
    adversary has located the hot queries; the attack then *succeeds* if the
    signature pins the queried value down to a single cleartext candidate
    (naive execution sends exactly the value).  Under QB the hot signature
    still appears, but it names an entire non-sensitive bin, so the candidate
    set stays large and the attack fails.
    """
    frequency = view_log.request_frequency()
    if not frequency:
        return AttackOutcome("workload-skew", False, 0.0, {"observations": 0})
    counts = sorted(frequency.values(), reverse=True)
    top = counts[0]
    median = counts[len(counts) // 2]
    skew_detected = median > 0 and (top / median) >= skew_ratio_threshold
    hot_signature = max(frequency, key=frequency.get)
    hot_candidates = len(hot_signature[0]) if hot_signature[0] else 0
    succeeded = skew_detected and hot_candidates == 1
    advantage = 1.0 / hot_candidates if hot_candidates else 0.0
    return AttackOutcome(
        name="workload-skew",
        succeeded=succeeded,
        advantage=advantage if skew_detected else 0.0,
        details={
            "skew_detected": skew_detected,
            "hot_signature_frequency": top,
            "hot_candidate_set_size": hot_candidates,
            "distinct_signatures": len(frequency),
        },
    )


# ---------------------------------------------------------------------------
# known-plaintext association attack
# ---------------------------------------------------------------------------

def kpa_association_attack(
    view_log: ViewLog,
    num_non_sensitive_values: int,
) -> AttackOutcome:
    """Link encrypted tuples to the cleartext values they are associated with.

    For every view that returned encrypted tuples, the candidate cleartext
    partners of those tuples are the values named in the cleartext half of the
    request.  Naive partitioned execution requests a single value, so the
    candidate set has size one (or zero, which is just as bad: the adversary
    learns the value is *only* sensitive).  QB requests a whole bin, so the
    posterior candidate set never shrinks below the bin size, and — because
    every sensitive bin meets every non-sensitive bin over the workload — the
    posterior over the full workload stays the uniform prior.
    """
    prior = 1.0 / num_non_sensitive_values if num_non_sensitive_values else 0.0
    best_posterior = prior
    pinned_rids: List[int] = []
    exposed_values: List[object] = []
    for view in view_log:
        candidates = len(view.non_sensitive_request)
        if view.returned_sensitive_rids and candidates == 1:
            # Exact-value request answered from both sides: the adversary
            # learns with certainty which cleartext value those encrypted
            # tuples carry (Example 2, Q1).
            pinned_rids.extend(view.returned_sensitive_rids)
            best_posterior = 1.0
        elif view.returned_sensitive_rids and candidates == 0:
            # The query matched nothing public: the searched entity exists
            # only on the sensitive side (Example 2, Q2).
            pinned_rids.extend(view.returned_sensitive_rids)
            best_posterior = 1.0
        elif (
            not view.returned_sensitive_rids
            and candidates == 1
            and view.returned_non_sensitive
        ):
            # A single-value cleartext request with no sensitive output tells
            # the adversary that value is only non-sensitive (Example 2, Q3).
            exposed_values.append(view.non_sensitive_request[0])
            best_posterior = 1.0
        # Requests naming several cleartext values (QB bins) do not pin any
        # association: co-retrieval of two bins does not imply that a value is
        # shared between them, so the posterior stays at the prior.
    succeeded = best_posterior > prior + 1e-12
    return AttackOutcome(
        name="kpa-association",
        succeeded=succeeded,
        advantage=best_posterior - prior,
        details={
            "prior": prior,
            "best_posterior": best_posterior,
            "pinned_encrypted_rids": pinned_rids[:20],
            "values_exposed_as_non_sensitive_only": exposed_values[:20],
        },
    )


def run_all_attacks(
    view_log: ViewLog,
    stored_rows: Sequence[EncryptedRow],
    num_non_sensitive_values: int,
    true_counts: Optional[Mapping[object, int]] = None,
) -> List[AttackOutcome]:
    """Convenience: run the full attack battery and return all outcomes."""
    return [
        size_attack(view_log),
        frequency_count_attack(stored_rows, true_counts),
        workload_skew_attack(view_log),
        kpa_association_attack(view_log, num_non_sensitive_values),
    ]
