"""Adversarial views (``AV = Inc ∪ Opc`` in the paper's notation).

Every query execution at the cloud produces an adversarial view: the request
that arrived (cleartext non-sensitive values, plus the *number* of encrypted
tokens — their content is opaque) and the outputs transmitted in response
(cleartext non-sensitive rows, plus the addresses of the returned encrypted
rows).  Table II, Table III, Table IV, and Table V of the paper are simply
collections of such views; the attack and audit modules consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.relation import Row


@dataclass(frozen=True)
class AdversarialView:
    """What the honest-but-curious cloud learns from one query execution.

    Attributes
    ----------
    query_id:
        Sequence number of the query (the adversary can order observations).
    attribute:
        The searched attribute (visible because the non-sensitive sub-query is
        cleartext).
    non_sensitive_request:
        The cleartext values requested from ``Rns`` (``Wns``).
    sensitive_request_size:
        How many encrypted tokens were received for ``Rs`` (|Ws| as observed;
        the tokens themselves are opaque).
    returned_non_sensitive:
        The cleartext rows returned from ``Rns``.
    returned_sensitive_rids:
        The addresses (rids) of the encrypted rows returned from ``Rs``.
    sensitive_bin_index / non_sensitive_bin_index:
        Bin identifiers *if* the adversary can infer them from repetition of
        identical request sets; populated by the cloud for convenience of the
        analysis code (the adversary could derive them itself by grouping
        identical requests).
    """

    query_id: int
    attribute: str
    non_sensitive_request: Tuple[object, ...]
    sensitive_request_size: int
    returned_non_sensitive: Tuple[Row, ...]
    returned_sensitive_rids: Tuple[int, ...]
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    @property
    def non_sensitive_output_size(self) -> int:
        return len(self.returned_non_sensitive)

    @property
    def sensitive_output_size(self) -> int:
        return len(self.returned_sensitive_rids)

    @property
    def total_output_size(self) -> int:
        return self.non_sensitive_output_size + self.sensitive_output_size

    def request_signature(self) -> Tuple[Tuple[object, ...], Tuple[int, ...]]:
        """A canonical signature of the observed request and encrypted output.

        Two queries answered from the same pair of bins have the same
        signature; grouping by signature is how the adversary reconstructs
        bin-level structure.
        """
        return (
            tuple(sorted(map(repr, self.non_sensitive_request))),
            tuple(sorted(self.returned_sensitive_rids)),
        )


@dataclass
class ViewLog:
    """An append-only log of adversarial views with aggregate accessors."""

    views: List[AdversarialView] = field(default_factory=list)

    def append(self, view: AdversarialView) -> None:
        self.views.append(view)

    def __len__(self) -> int:
        return len(self.views)

    def __iter__(self):
        return iter(self.views)

    def clear(self) -> None:
        self.views.clear()

    # -- adversary-side aggregations --------------------------------------------
    def output_sizes(self) -> List[int]:
        """Total output size per query — the signal behind the size attack."""
        return [view.total_output_size for view in self.views]

    def sensitive_output_sizes(self) -> List[int]:
        return [view.sensitive_output_size for view in self.views]

    def request_frequency(self) -> Dict[Tuple[Tuple[object, ...], Tuple[int, ...]], int]:
        """How often each request signature was observed (workload skew)."""
        counts: Dict[Tuple[Tuple[object, ...], Tuple[int, ...]], int] = {}
        for view in self.views:
            signature = view.request_signature()
            counts[signature] = counts.get(signature, 0) + 1
        return counts

    def observed_bin_pairs(self) -> List[Tuple[int, int]]:
        """(sensitive bin, non-sensitive bin) pairs seen so far, when known."""
        pairs = []
        for view in self.views:
            if view.sensitive_bin_index is None or view.non_sensitive_bin_index is None:
                continue
            pairs.append((view.sensitive_bin_index, view.non_sensitive_bin_index))
        return pairs

    def distinct_sensitive_rid_sets(self) -> List[Tuple[int, ...]]:
        """Distinct encrypted-output address sets (proxies for sensitive bins)."""
        seen: Dict[Tuple[int, ...], None] = {}
        for view in self.views:
            seen.setdefault(tuple(sorted(view.returned_sensitive_rids)), None)
        return list(seen)

    def distinct_non_sensitive_request_sets(self) -> List[Tuple[object, ...]]:
        """Distinct cleartext request sets (proxies for non-sensitive bins)."""
        seen: Dict[Tuple[object, ...], None] = {}
        for view in self.views:
            seen.setdefault(tuple(sorted(map(repr, view.non_sensitive_request))), None)
        return list(seen)
