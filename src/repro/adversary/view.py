"""Adversarial views (``AV = Inc ∪ Opc`` in the paper's notation).

Every query execution at the cloud produces an adversarial view: the request
that arrived (cleartext non-sensitive values, plus the *number* of encrypted
tokens — their content is opaque) and the outputs transmitted in response
(cleartext non-sensitive rows, plus the addresses of the returned encrypted
rows).  Table II, Table III, Table IV, and Table V of the paper are simply
collections of such views; the attack and audit modules consume them.

Hot-path representation
-----------------------
QB workloads are heavily repetitive: every query answered from the same bin
pair produces a view whose content differs *only* in the query id.  Building
a fresh :class:`AdversarialView` — five tuples plus a dataclass — per query
is therefore pure fixed cost on the serving path.  The log instead records
compact ``(query_id, ViewTemplate)`` pairs, where the
:class:`ViewTemplate` (everything except the query id) is interned by the
cloud per distinct request, and materialises :class:`AdversarialView`
dataclasses lazily when the adversary, auditor, or a test actually reads
them.  Recording a steady-state query is then a single list append of a
two-tuple; the information content of the log is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.data.relation import Row

#: The canonical grouping key of a view: (sorted cleartext request reprs,
#: sorted returned encrypted addresses).
RequestSignature = Tuple[Tuple[object, ...], Tuple[int, ...]]


def _signature_of(
    non_sensitive_request: Sequence[object],
    returned_sensitive_rids: Sequence[int],
) -> RequestSignature:
    return (
        tuple(sorted(map(repr, non_sensitive_request))),
        tuple(sorted(returned_sensitive_rids)),
    )


@dataclass(frozen=True)
class AdversarialView:
    """What the honest-but-curious cloud learns from one query execution.

    Attributes
    ----------
    query_id:
        Sequence number of the query (the adversary can order observations).
    attribute:
        The searched attribute (visible because the non-sensitive sub-query is
        cleartext).
    non_sensitive_request:
        The cleartext values requested from ``Rns`` (``Wns``).
    sensitive_request_size:
        How many encrypted tokens were received for ``Rs`` (|Ws| as observed;
        the tokens themselves are opaque).
    returned_non_sensitive:
        The cleartext rows returned from ``Rns``.
    returned_sensitive_rids:
        The addresses (rids) of the encrypted rows returned from ``Rs``.
    sensitive_bin_index / non_sensitive_bin_index:
        Bin identifiers *if* the adversary can infer them from repetition of
        identical request sets; populated by the cloud for convenience of the
        analysis code (the adversary could derive them itself by grouping
        identical requests).
    """

    query_id: int
    attribute: str
    non_sensitive_request: Tuple[object, ...]
    sensitive_request_size: int
    returned_non_sensitive: Tuple[Row, ...]
    returned_sensitive_rids: Tuple[int, ...]
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    @property
    def non_sensitive_output_size(self) -> int:
        return len(self.returned_non_sensitive)

    @property
    def sensitive_output_size(self) -> int:
        return len(self.returned_sensitive_rids)

    @property
    def total_output_size(self) -> int:
        return self.non_sensitive_output_size + self.sensitive_output_size

    def request_signature(self) -> RequestSignature:
        """A canonical signature of the observed request and encrypted output.

        Two queries answered from the same pair of bins have the same
        signature; grouping by signature is how the adversary reconstructs
        bin-level structure.  The attack/audit code calls this repeatedly
        while grouping, and sorting + ``repr``-ing the same tuples every time
        is wasted work, so the signature is computed once and cached on the
        view (views materialised from a shared :class:`ViewTemplate` share
        the template's cached signature).
        """
        cached = self.__dict__.get("_signature")
        if cached is None:
            template = self.__dict__.get("_template")
            if template is not None:
                cached = template.request_signature()
            else:
                cached = _signature_of(
                    self.non_sensitive_request, self.returned_sensitive_rids
                )
            object.__setattr__(self, "_signature", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_signature", None)
        state.pop("_template", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass(frozen=True)
class ViewTemplate:
    """The query-invariant content of an adversarial view.

    Everything an :class:`AdversarialView` carries except the query id.  The
    cloud interns one template per distinct request it serves (bins repeat by
    design, so view content is highly redundant) and the log stores
    ``(query_id, template)`` pairs; full view dataclasses are materialised
    only when analysis code asks for them.
    """

    attribute: str
    non_sensitive_request: Tuple[object, ...]
    sensitive_request_size: int
    returned_non_sensitive: Tuple[Row, ...]
    returned_sensitive_rids: Tuple[int, ...]
    sensitive_bin_index: Optional[int] = None
    non_sensitive_bin_index: Optional[int] = None

    @classmethod
    def of(cls, view: AdversarialView) -> "ViewTemplate":
        """The template of an already-built view (legacy ``append`` path)."""
        return cls(
            attribute=view.attribute,
            non_sensitive_request=view.non_sensitive_request,
            sensitive_request_size=view.sensitive_request_size,
            returned_non_sensitive=view.returned_non_sensitive,
            returned_sensitive_rids=view.returned_sensitive_rids,
            sensitive_bin_index=view.sensitive_bin_index,
            non_sensitive_bin_index=view.non_sensitive_bin_index,
        )

    @property
    def total_output_size(self) -> int:
        return len(self.returned_non_sensitive) + len(self.returned_sensitive_rids)

    def materialize(self, query_id: int) -> AdversarialView:
        view = AdversarialView(
            query_id=query_id,
            attribute=self.attribute,
            non_sensitive_request=self.non_sensitive_request,
            sensitive_request_size=self.sensitive_request_size,
            returned_non_sensitive=self.returned_non_sensitive,
            returned_sensitive_rids=self.returned_sensitive_rids,
            sensitive_bin_index=self.sensitive_bin_index,
            non_sensitive_bin_index=self.non_sensitive_bin_index,
        )
        # Share the signature cache across every view cut from this template.
        object.__setattr__(view, "_template", self)
        return view

    def request_signature(self) -> RequestSignature:
        """The views' grouping key, computed once per template."""
        cached = self.__dict__.get("_signature")
        if cached is None:
            cached = _signature_of(
                self.non_sensitive_request, self.returned_sensitive_rids
            )
            object.__setattr__(self, "_signature", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_signature", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class _MaterializedViews:
    """List-like facade over a :class:`ViewLog`'s records.

    Supports exactly the access patterns the codebase uses on the old
    ``views`` list — indexing, iteration, ``len``, ``clear``, and suffix
    deletion (crash rollback) — materialising views on demand and caching
    them so repeated analysis passes pay the dataclass cost once.
    """

    __slots__ = ("_log",)

    def __init__(self, log: "ViewLog"):
        self._log = log

    def __len__(self) -> int:
        return len(self._log._records)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[AdversarialView, List[AdversarialView]]:
        if isinstance(index, slice):
            return [
                self._log._view_at(position)
                for position in range(*index.indices(len(self)))
            ]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("view index out of range")
        return self._log._view_at(index)

    def __delitem__(self, index: Union[int, slice]) -> None:
        records = self._log._records
        if isinstance(index, slice):
            start, stop, step = index.indices(len(records))
            if step != 1 or stop < len(records):
                raise ValueError("ViewLog only supports deleting a suffix")
            self._log._truncate(start)
            return
        raise ValueError("ViewLog only supports deleting a suffix")

    def __iter__(self) -> Iterator[AdversarialView]:
        for position in range(len(self)):
            yield self._log._view_at(position)

    def clear(self) -> None:
        self._log.clear()

    def append(self, view: AdversarialView) -> None:
        self._log.append(view)


class ViewLog:
    """An append-only log of adversarial views with aggregate accessors.

    Internally stores compact ``(query_id, ViewTemplate)`` records (see the
    module docstring); ``views`` exposes the familiar list-like sequence of
    materialised :class:`AdversarialView` objects.
    """

    def __init__(self, views: Optional[Iterable[AdversarialView]] = None):
        self._records: List[Tuple[int, ViewTemplate]] = []
        self._materialized: Dict[int, AdversarialView] = {}
        if views:
            for view in views:
                self.append(view)

    # -- recording ---------------------------------------------------------------
    def record(self, query_id: int, template: ViewTemplate) -> None:
        """Append one observation (the near-zero-allocation hot path)."""
        self._records.append((query_id, template))

    def append(self, view: AdversarialView) -> None:
        """Append a fully-built view (compatibility / test construction)."""
        position = len(self._records)
        self._records.append((view.query_id, ViewTemplate.of(view)))
        self._materialized[position] = view

    # -- access -------------------------------------------------------------------
    @property
    def records(self) -> List[Tuple[int, ViewTemplate]]:
        """The raw (query id, template) records, in arrival order."""
        return self._records

    def records_since(self, start: int) -> List[Tuple[int, ViewTemplate]]:
        """Records appended at or after position ``start`` (delta sync)."""
        return self._records[start:]

    def extend_records(
        self, records: Iterable[Tuple[int, ViewTemplate]]
    ) -> None:
        """Append already-compact records (observation sync from a worker)."""
        self._records.extend(records)

    @property
    def views(self) -> _MaterializedViews:
        return _MaterializedViews(self)

    def _view_at(self, position: int) -> AdversarialView:
        view = self._materialized.get(position)
        if view is None:
            query_id, template = self._records[position]
            view = template.materialize(query_id)
            self._materialized[position] = view
        return view

    def _truncate(self, length: int) -> None:
        """Forget every record at position ``length`` or later (crash rollback)."""
        del self._records[length:]
        if self._materialized:
            for position in [p for p in self._materialized if p >= length]:
                del self._materialized[position]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AdversarialView]:
        for position in range(len(self._records)):
            yield self._view_at(position)

    def clear(self) -> None:
        self._records.clear()
        self._materialized.clear()

    # -- adversary-side aggregations --------------------------------------------
    #
    # Aggregations read the compact records directly: no views need to be
    # materialised to compute sizes, frequencies, or bin pairs.

    def output_sizes(self) -> List[int]:
        """Total output size per query — the signal behind the size attack."""
        return [template.total_output_size for _query_id, template in self._records]

    def sensitive_output_sizes(self) -> List[int]:
        return [
            len(template.returned_sensitive_rids)
            for _query_id, template in self._records
        ]

    def request_frequency(self) -> Dict[RequestSignature, int]:
        """How often each request signature was observed (workload skew)."""
        counts: Dict[RequestSignature, int] = {}
        for _query_id, template in self._records:
            signature = template.request_signature()
            counts[signature] = counts.get(signature, 0) + 1
        return counts

    def observed_bin_pairs(self) -> List[Tuple[int, int]]:
        """(sensitive bin, non-sensitive bin) pairs seen so far, when known."""
        pairs = []
        for _query_id, template in self._records:
            if (
                template.sensitive_bin_index is None
                or template.non_sensitive_bin_index is None
            ):
                continue
            pairs.append(
                (template.sensitive_bin_index, template.non_sensitive_bin_index)
            )
        return pairs

    def distinct_sensitive_rid_sets(self) -> List[Tuple[int, ...]]:
        """Distinct encrypted-output address sets (proxies for sensitive bins)."""
        seen: Dict[Tuple[int, ...], None] = {}
        for _query_id, template in self._records:
            seen.setdefault(template.request_signature()[1], None)
        return list(seen)

    def distinct_non_sensitive_request_sets(self) -> List[Tuple[object, ...]]:
        """Distinct cleartext request sets (proxies for non-sensitive bins)."""
        seen: Dict[Tuple[object, ...], None] = {}
        for _query_id, template in self._records:
            seen.setdefault(template.request_signature()[0], None)
        return list(seen)
