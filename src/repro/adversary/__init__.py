"""Honest-but-curious adversary: views, attacks, and security auditing.

The adversary of the paper (§II) sees the full non-sensitive relation, knows
auxiliary facts about the sensitive relation (cardinalities, schema), and
observes every query's *adversarial view* — the request that reached the cloud
and the tuples returned for it.  This package materialises those views,
implements the attacks the paper discusses (size, frequency-count,
workload-skew, and known-plaintext association), and provides an auditor that
empirically checks the two conditions of partitioned data security.
"""

from repro.adversary.view import AdversarialView, ViewLog
from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.adversary.attacks import (
    AttackOutcome,
    frequency_count_attack,
    kpa_association_attack,
    size_attack,
    workload_skew_attack,
)
from repro.adversary.auditor import PartitionedSecurityAuditor, SecurityReport

__all__ = [
    "AdversarialView",
    "ViewLog",
    "SurvivingMatchAnalysis",
    "AttackOutcome",
    "size_attack",
    "frequency_count_attack",
    "workload_skew_attack",
    "kpa_association_attack",
    "PartitionedSecurityAuditor",
    "SecurityReport",
]
