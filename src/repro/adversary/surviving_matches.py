"""Surviving-match analysis (the paper's correctness argument, §IV-A).

Before any query, the adversary can only posit a complete bipartite graph
between sensitive and non-sensitive values: every encrypted value might be
associated with any cleartext value.  Query execution produces bin-level
observations; the edges of the bin bipartite graph that remain *consistent*
with the observations are the "surviving matches".  QB is secure precisely
when, after answering queries for all values via Algorithm 2, every sensitive
bin has been observed together with every non-sensitive bin — no surviving
match is dropped, so the adversary's uncertainty is unchanged (Figure 4a).  A
retrieval policy that skips Algorithm 2 drops matches (Figure 4b, Table V),
which is the leak the analysis detects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.adversary.view import AdversarialView, ViewLog
from repro.core.bins import BinLayout
from repro.core.retrieval import BinRetriever


@dataclass
class SurvivingMatchAnalysis:
    """Bin-level surviving-match bookkeeping built from adversarial views."""

    num_sensitive_bins: int
    num_non_sensitive_bins: int
    observed_pairs: Set[Tuple[int, int]] = field(default_factory=set)

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_view_log(
        cls,
        view_log: ViewLog,
        num_sensitive_bins: Optional[int] = None,
        num_non_sensitive_bins: Optional[int] = None,
    ) -> "SurvivingMatchAnalysis":
        """Build the analysis from observed views.

        When bin indexes are not annotated on the views, bins are identified
        by grouping identical request signatures, exactly as a real adversary
        would.
        """
        pairs: Set[Tuple[int, int]] = set()
        sensitive_ids: Dict[Tuple[int, ...], int] = {}
        non_sensitive_ids: Dict[Tuple[object, ...], int] = {}
        for view in view_log:
            if view.sensitive_bin_index is not None and view.non_sensitive_bin_index is not None:
                pairs.add((view.sensitive_bin_index, view.non_sensitive_bin_index))
                continue
            sensitive_signature = tuple(sorted(view.returned_sensitive_rids))
            non_sensitive_signature = tuple(sorted(map(repr, view.non_sensitive_request)))
            sensitive_id = sensitive_ids.setdefault(sensitive_signature, len(sensitive_ids))
            non_sensitive_id = non_sensitive_ids.setdefault(
                non_sensitive_signature, len(non_sensitive_ids)
            )
            pairs.add((sensitive_id, non_sensitive_id))
        return cls(
            num_sensitive_bins=num_sensitive_bins
            if num_sensitive_bins is not None
            else (max((p[0] for p in pairs), default=-1) + 1),
            num_non_sensitive_bins=num_non_sensitive_bins
            if num_non_sensitive_bins is not None
            else (max((p[1] for p in pairs), default=-1) + 1),
            observed_pairs=pairs,
        )

    @classmethod
    def from_layout(cls, layout: BinLayout) -> "SurvivingMatchAnalysis":
        """The pairs Algorithm 2 *would* produce if every value were queried."""
        retriever = BinRetriever(layout)
        pairs = set(retriever.associated_bin_pairs())
        return cls(
            num_sensitive_bins=layout.num_sensitive_bins,
            num_non_sensitive_bins=layout.num_non_sensitive_bins,
            observed_pairs=pairs,
        )

    # -- the bipartite graphs ---------------------------------------------------
    def bin_graph(self) -> nx.Graph:
        """The bin-level surviving-match graph implied by the observations.

        A sensitive bin node is connected to a non-sensitive bin node when the
        observations *do not rule out* that one of the sensitive bin's values
        is associated with one of the non-sensitive bin's values.  Following
        the paper, matches survive when the pair was observed together — or
        when one of the two bins was never observed at all (no information).
        """
        graph = nx.Graph()
        sensitive_nodes = [f"SB{i}" for i in range(self.num_sensitive_bins)]
        non_sensitive_nodes = [f"NSB{j}" for j in range(self.num_non_sensitive_bins)]
        graph.add_nodes_from(sensitive_nodes, side="sensitive")
        graph.add_nodes_from(non_sensitive_nodes, side="non-sensitive")

        observed_sensitive = {pair[0] for pair in self.observed_pairs}
        observed_non_sensitive = {pair[1] for pair in self.observed_pairs}
        for i in range(self.num_sensitive_bins):
            for j in range(self.num_non_sensitive_bins):
                unobserved = i not in observed_sensitive or j not in observed_non_sensitive
                if (i, j) in self.observed_pairs or unobserved:
                    graph.add_edge(f"SB{i}", f"NSB{j}")
        return graph

    # -- verdicts -------------------------------------------------------------------
    @property
    def total_possible_pairs(self) -> int:
        return self.num_sensitive_bins * self.num_non_sensitive_bins

    def is_complete(self) -> bool:
        """True when every (sensitive, non-sensitive) bin pair survives."""
        graph = self.bin_graph()
        expected_edges = self.total_possible_pairs
        return graph.number_of_edges() == expected_edges

    def dropped_pairs(self) -> List[Tuple[int, int]]:
        """Bin pairs whose surviving match has been eliminated."""
        graph = self.bin_graph()
        dropped = []
        for i in range(self.num_sensitive_bins):
            for j in range(self.num_non_sensitive_bins):
                if not graph.has_edge(f"SB{i}", f"NSB{j}"):
                    dropped.append((i, j))
        return dropped

    def surviving_fraction(self) -> float:
        """Fraction of bin pairs still surviving (1.0 means no leakage)."""
        if self.total_possible_pairs == 0:
            return 1.0
        return 1.0 - len(self.dropped_pairs()) / self.total_possible_pairs

    def value_level_ambiguity(self, values_per_non_sensitive_bin: int) -> int:
        """Size of the candidate set for any encrypted value's cleartext partner.

        With all matches surviving, an encrypted value could be associated
        with any value of any non-sensitive bin it was retrieved with — i.e.
        the whole non-sensitive domain — so the candidate set size equals
        ``num_non_sensitive_bins * values_per_non_sensitive_bin``.
        """
        graph = self.bin_graph()
        min_degree = min(
            (graph.degree(f"SB{i}") for i in range(self.num_sensitive_bins)),
            default=0,
        )
        return min_degree * values_per_non_sensitive_bin
