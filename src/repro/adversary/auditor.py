"""Empirical auditor for the partitioned data security definition (§III).

The definition has two conditions:

* **Eq. (1)** — for every encrypted value ``e_i`` and cleartext value
  ``ns_j``, the probability that they are associated is the same before and
  after observing the adversarial views;
* **Eq. (2)** — for every pair of domain values, the probability of any
  relationship (<, =, >) between their sensitive tuple counts is unchanged.

The auditor checks both conditions *operationally* over a recorded workload:

* Eq. (1) holds when no view lets the adversary shrink an association
  candidate set below the prior — structurally, when the surviving-match bin
  graph stays complete once all domain values have been queried, and no view
  pairs a singleton cleartext request with encrypted output (or exposes a
  value as existing on only one side).
* Eq. (2) holds when every observed encrypted output has the same size, so
  output sizes carry no information about relative frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.attacks import kpa_association_attack, size_attack
from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.adversary.view import ViewLog
from repro.core.bins import BinLayout
from repro.exceptions import SecurityViolation


@dataclass
class SecurityReport:
    """The auditor's verdict over one recorded workload."""

    eq1_association_preserved: bool
    eq2_frequency_preserved: bool
    surviving_fraction: float
    violations: List[str] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def secure(self) -> bool:
        return self.eq1_association_preserved and self.eq2_frequency_preserved

    def raise_on_violation(self) -> None:
        """Raise :class:`SecurityViolation` when the workload leaked."""
        if not self.secure:
            raise SecurityViolation("; ".join(self.violations) or "security violated")


class PartitionedSecurityAuditor:
    """Audit a view log against the partitioned-data-security definition."""

    def __init__(
        self,
        num_non_sensitive_values: int,
        layout: Optional[BinLayout] = None,
        sensitive_counts: Optional[Dict[object, int]] = None,
    ):
        if num_non_sensitive_values < 0:
            raise SecurityViolation("the number of non-sensitive values cannot be negative")
        self.num_non_sensitive_values = num_non_sensitive_values
        self.layout = layout
        self.sensitive_counts = dict(sensitive_counts) if sensitive_counts else None

    # -- condition (1): association probabilities -------------------------------
    def _check_eq1(self, view_log: ViewLog, full_domain_queried: bool) -> Tuple[bool, List[str], float]:
        violations: List[str] = []

        kpa = kpa_association_attack(view_log, max(self.num_non_sensitive_values, 1))
        if kpa.succeeded:
            violations.append(
                "a view narrowed an encrypted-to-cleartext association below the prior "
                f"(posterior {kpa.details['best_posterior']:.3f} vs prior {kpa.details['prior']:.3f})"
            )

        surviving_fraction = 1.0
        if self.layout is not None:
            analysis = SurvivingMatchAnalysis.from_view_log(
                view_log,
                num_sensitive_bins=self.layout.num_sensitive_bins,
                num_non_sensitive_bins=self.layout.num_non_sensitive_bins,
            )
            surviving_fraction = analysis.surviving_fraction()
            if full_domain_queried and not analysis.is_complete():
                dropped = analysis.dropped_pairs()
                violations.append(
                    f"{len(dropped)} surviving bin matches were dropped: {dropped[:10]}"
                )
        return not violations, violations, surviving_fraction

    # -- condition (2): relative frequency probabilities -----------------------------
    def _check_eq2(self, view_log: ViewLog) -> Tuple[bool, List[str]]:
        violations: List[str] = []
        if self.sensitive_counts is not None and len(set(self.sensitive_counts.values())) <= 1:
            # Every sensitive value has the same multiplicity (e.g. the base
            # case, where each value has exactly one tuple), so output sizes
            # cannot reveal anything about *relative* frequencies: all the
            # relationships are already known to be "=".
            return True, violations
        outcome = size_attack(view_log)
        if outcome.succeeded:
            violations.append(
                "encrypted outputs had distinguishable sizes "
                f"({outcome.details['distinct_output_sizes']}), revealing relative "
                "frequencies of sensitive values"
            )
        return not violations, violations

    # -- public API --------------------------------------------------------------------
    def audit(
        self, view_log: ViewLog, full_domain_queried: bool = False
    ) -> SecurityReport:
        """Audit a recorded workload.

        Parameters
        ----------
        view_log:
            The cloud's recorded adversarial views.
        full_domain_queried:
            Set to ``True`` when the workload covered every domain value; the
            surviving-match completeness check is only meaningful then.
        """
        eq1_ok, eq1_violations, surviving = self._check_eq1(view_log, full_domain_queried)
        eq2_ok, eq2_violations = self._check_eq2(view_log)
        return SecurityReport(
            eq1_association_preserved=eq1_ok,
            eq2_frequency_preserved=eq2_ok,
            surviving_fraction=surviving,
            violations=eq1_violations + eq2_violations,
            details={
                "views_audited": len(view_log),
                "full_domain_queried": full_domain_queried,
            },
        )
