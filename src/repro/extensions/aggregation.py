"""Group-by aggregation over a QB-protected attribute.

The paper notes (§I, "Full version") that QB "can also be extended to support
group-by aggregation queries".  This module implements that extension for the
common case of grouping by the binned attribute: the owner enumerates the
attribute's domain from its metadata, fetches each group's rows through the
usual bin machinery (so the cloud observes nothing beyond ordinary QB
selections), and computes COUNT / SUM / AVG / MIN / MAX locally.

Because a whole bin is fetched per request, groups that share a bin pair are
answered from a single round trip; the executor caches bin-pair responses to
exploit that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import QueryBinningEngine
from repro.core.retrieval import RetrievalDecision
from repro.data.relation import Row
from repro.exceptions import ConfigurationError, QueryError

SUPPORTED_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass
class GroupAggregate:
    """Aggregates of one group (one distinct value of the binned attribute)."""

    group: object
    count: int
    sum: Optional[float] = None
    avg: Optional[float] = None
    min: Optional[object] = None
    max: Optional[object] = None


@dataclass
class AggregationTrace:
    """Accounting for one group-by execution."""

    groups: int
    cloud_round_trips: int
    rows_fetched: int


class GroupByAggregator:
    """Execute ``SELECT A, f(m) ... GROUP BY A`` where ``A`` is the binned attribute."""

    def __init__(self, engine: QueryBinningEngine):
        if engine.metadata is None or engine.retriever is None:
            raise ConfigurationError("the engine must be set up before aggregating")
        self.engine = engine

    def _domain(self) -> List[object]:
        metadata = self.engine.metadata
        assert metadata is not None
        values: Dict[object, None] = {}
        for value in list(metadata.sensitive_counts) + list(metadata.non_sensitive_counts):
            values.setdefault(value, None)
        return list(values)

    def aggregate(
        self,
        measure: Optional[str] = None,
        functions: Sequence[str] = ("count",),
        groups: Optional[Iterable[object]] = None,
    ) -> Tuple[List[GroupAggregate], AggregationTrace]:
        """Compute the requested aggregates for every group.

        Parameters
        ----------
        measure:
            The attribute to aggregate (required for sum/avg/min/max; COUNT
            works without it).
        functions:
            Any subset of ``count, sum, avg, min, max``.
        groups:
            Restrict to specific group values; defaults to the whole domain
            known to the owner's metadata.
        """
        unknown = [f for f in functions if f not in SUPPORTED_FUNCTIONS]
        if unknown:
            raise QueryError(f"unsupported aggregate functions: {unknown}")
        needs_measure = any(f != "count" for f in functions)
        if needs_measure and measure is None:
            raise QueryError("sum/avg/min/max aggregates need a measure attribute")

        target_groups = list(groups) if groups is not None else self._domain()
        assert self.engine.retriever is not None

        # Cache rows per (sensitive bin, non-sensitive bin) pair: groups whose
        # values share a bin pair are answered by one cloud round trip.
        pair_cache: Dict[Tuple[Optional[int], Optional[int]], List[Row]] = {}
        round_trips = 0
        rows_fetched = 0
        results: List[GroupAggregate] = []

        for group in target_groups:
            decision = self.engine.retriever.retrieve(group)
            if not decision.retrieves_anything:
                results.append(GroupAggregate(group=group, count=0))
                continue
            pair = (decision.sensitive_bin_index, decision.non_sensitive_bin_index)
            if pair not in pair_cache:
                rows = self._fetch_bin_pair(decision)
                pair_cache[pair] = rows
                round_trips += 1
                rows_fetched += len(rows)
            group_rows = [
                row for row in pair_cache[pair] if row.get(self.engine.attribute) == group
            ]
            results.append(self._aggregate_rows(group, group_rows, measure, functions))

        trace = AggregationTrace(
            groups=len(target_groups),
            cloud_round_trips=round_trips,
            rows_fetched=rows_fetched,
        )
        return results, trace

    # -- internals ------------------------------------------------------------------
    def _fetch_bin_pair(self, decision: RetrievalDecision) -> List[Row]:
        """Fetch every row of one bin pair through the engine's cloud.

        Routing through the engine's per-bin token cache and passing the bin
        indexes lets the cloud serve the request from its encrypted index or
        bin-addressed store instead of scanning the whole relation.
        """
        engine = self.engine
        tokens = engine.tokens_for_decision(decision)
        response = engine.cloud.process_request(
            engine.attribute,
            list(decision.non_sensitive_values),
            tokens,
            sensitive_bin_index=decision.sensitive_bin_index,
            non_sensitive_bin_index=decision.non_sensitive_bin_index,
        )
        sensitive_rows = engine.scheme.decrypt_rows(response.encrypted_rows)
        return sensitive_rows + list(response.non_sensitive_rows)

    def _aggregate_rows(
        self,
        group: object,
        rows: List[Row],
        measure: Optional[str],
        functions: Sequence[str],
    ) -> GroupAggregate:
        aggregate = GroupAggregate(group=group, count=len(rows))
        if measure is None or not rows:
            return aggregate
        values = [row.get(measure) for row in rows if row.get(measure) is not None]
        if not values:
            return aggregate
        if "sum" in functions or "avg" in functions:
            total = sum(values)  # type: ignore[arg-type]
            if "sum" in functions:
                aggregate.sum = total
            if "avg" in functions:
                aggregate.avg = total / len(values)
        if "min" in functions:
            aggregate.min = min(values)
        if "max" in functions:
            aggregate.max = max(values)
        return aggregate
