"""Insert handling under QB (full-version extension).

Inserting a tuple whose attribute value already exists in the bin layout is
cheap: encrypt (or not) and append, and bump the owner's frequency metadata —
the bins do not change.  Inserting a *new* value is the interesting case:

* a new non-sensitive value can slide into any non-sensitive bin with free
  capacity (its retrieval then pairs that bin with the sensitive bin indexed
  by its slot position, exactly as Algorithm 2 expects);
* a new sensitive value slides into the sensitive bin with the fewest values,
  provided a slot position smaller than the number of non-sensitive bins is
  free;
* when no capacity remains — or when enough inserts have accumulated that bin
  sizes have drifted away from the √|NS| optimum — the inserter triggers a
  full re-binning (re-running setup over the current data).

The paper's full version measures insert cost; the
``benchmarks/bench_ext_inserts.py`` harness reproduces that experiment using
this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.engine import QueryBinningEngine
from repro.exceptions import ConfigurationError


@dataclass
class InsertStatistics:
    """Counters describing how inserts were absorbed."""

    existing_value_inserts: int = 0
    new_value_in_place: int = 0
    #: new-value inserts that found no free slot and forced a full re-binning
    #: (the insert itself still lands — the rebuilt layout includes it).
    new_value_rebins: int = 0
    rebins_triggered: int = 0

    @property
    def total(self) -> int:
        return (
            self.existing_value_inserts
            + self.new_value_in_place
            + self.new_value_rebins
        )


class IncrementalInserter:
    """Absorb inserts into a live :class:`QueryBinningEngine`."""

    def __init__(self, engine: QueryBinningEngine, rebin_threshold: int = 64):
        if engine.layout is None or engine.metadata is None:
            raise ConfigurationError("the engine must be set up before inserting")
        if rebin_threshold < 1:
            raise ConfigurationError("rebin_threshold must be at least 1")
        self.engine = engine
        self.rebin_threshold = rebin_threshold
        self.stats = InsertStatistics()
        self._new_values_since_rebin = 0
        #: the layout object the pending-insert counter was accumulated
        #: against; a different object means the layout was rebuilt outside
        #: this inserter (a fleet redeployment, another inserter's rebin),
        #: which absorbed the pending new values.
        self._counted_layout = engine.layout

    def _sync_layout(self) -> None:
        """Reset the pending counter after an external layout rebuild.

        ``engine.setup()`` can run outside :meth:`rebin` — elastic-fleet
        redeployments and direct re-outsourcing replace ``engine.layout``
        wholesale.  The rebuilt layout has absorbed every value inserted so
        far, so pending-insert accounting must restart from zero; carrying
        the stale count forward would trigger the next re-binning early
        (double-counting the values the external rebuild already placed).
        """
        if self.engine.layout is not self._counted_layout:
            self._counted_layout = self.engine.layout
            self._new_values_since_rebin = 0

    # -- public API ------------------------------------------------------------
    def insert(self, values: Dict[str, object], sensitive: bool) -> None:
        """Insert one row, keeping the layout consistent."""
        attribute = self.engine.attribute
        value = values.get(attribute)
        if value is None:
            raise ConfigurationError(
                f"insert is missing the binned attribute {attribute!r}"
            )
        self._sync_layout()
        layout = self.engine.layout
        assert layout is not None

        known = (
            layout.locate_sensitive(value) is not None
            if sensitive
            else layout.locate_non_sensitive(value) is not None
        )
        if known:
            self.engine.insert(values, sensitive=sensitive)
            self.stats.existing_value_inserts += 1
            return

        placed = self._place_new_value(value, sensitive)
        if placed:
            self.engine.insert(values, sensitive=sensitive)
            self.stats.new_value_in_place += 1
            self._new_values_since_rebin += 1
            if self._new_values_since_rebin >= self.rebin_threshold:
                self.rebin()
            return

        # No capacity left: rebuild the layout from the current data and then
        # perform the insert (the rebuilt layout always has room).
        self.engine.insert(values, sensitive=sensitive)
        self.stats.new_value_rebins += 1
        self.rebin()

    def rebin(self) -> None:
        """Rebuild bins from the engine's current partition and re-outsource.

        Observation logs are cleared on every store the engine re-outsources
        to — the single reference server and, when attached, the whole
        sharded fleet — so the fleet-vs-reference parity invariants hold
        across a rebin exactly as they do from a fresh setup.

        For a sharded engine a rebin is also a fleet redeployment: the
        engine's ``setup()`` rebuilds the :class:`ShardRouter` as a pure
        function of (new bin counts, policy, fleet size, replication
        factor), so primary *and replica* placement of the rebuilt layout is
        deterministic, and every member — replicas included — receives its
        slices from scratch.  Members previously excluded as failed are
        therefore marked recovered (a deployment that re-outsources to a
        member has, by definition, replaced it); a member that is in fact
        still down is re-detected by the next batch's failover machinery.
        """
        self.engine.cloud.reset_observations()
        if self.engine.multi_cloud is not None:
            self.engine.multi_cloud.reset_observations()
            self.engine.multi_cloud.mark_all_recovered()
        self.engine.setup()
        self.stats.rebins_triggered += 1
        self._new_values_since_rebin = 0
        self._counted_layout = self.engine.layout

    # -- placement ---------------------------------------------------------------
    def _place_new_value(self, value: object, sensitive: bool) -> bool:
        """Try to place a previously unseen value into the existing layout."""
        layout = self.engine.layout
        assert layout is not None
        if sensitive:
            capacity = layout.num_non_sensitive_bins
            candidates = sorted(layout.sensitive_bins, key=lambda b: b.size)
            for bin_ in candidates:
                position = len(bin_.slots)
                if bin_.size < capacity and position < capacity:
                    bin_.append(value)
                    layout._rebuild_locations()
                    return True
            return False
        capacity = layout.num_sensitive_bins
        candidates = sorted(layout.non_sensitive_bins, key=lambda b: b.size)
        for bin_ in candidates:
            if bin_.size < capacity and len(bin_.slots) <= capacity:
                bin_.append(value)
                layout._rebuild_locations()
                return True
        return False
