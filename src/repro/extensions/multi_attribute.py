"""Multi-attribute search (column-level sensitivity, full-version extension).

The conference paper develops QB for a single searchable attribute; its full
version extends it to relations searched on several attributes, possibly with
different sensitivity on each column.  The practical construction is simple:
the owner maintains one bin layout (and one encrypted search index) *per
searchable attribute*, all referring to the same underlying rows.  A query on
attribute ``A`` uses ``A``'s bins; the adversarial views of different
attributes are independent because each attribute's sensitive bins are a
fresh secret permutation.

In this simulation each attribute gets its own cloud store so that the token
spaces and adversarial views stay cleanly separated; a production system would
store the encrypted relation once with one search tag per attribute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.server import CloudServer
from repro.core.engine import ExecutionTrace, QueryBinningEngine
from repro.crypto.base import EncryptedSearchScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import PartitionResult
from repro.data.relation import Row
from repro.exceptions import ConfigurationError, QueryError

SchemeFactory = Callable[[], EncryptedSearchScheme]


@dataclass
class AttributeBinding:
    """One searchable attribute's engine, scheme, and cloud store."""

    attribute: str
    engine: QueryBinningEngine
    scheme: EncryptedSearchScheme
    cloud: CloudServer


class MultiAttributeEngine:
    """QB over several searchable attributes of one partitioned relation."""

    def __init__(
        self,
        partition: PartitionResult,
        attributes: Sequence[str],
        scheme_factory: Optional[SchemeFactory] = None,
        permutation_seed: Optional[int] = None,
        add_fake_tuples: bool = True,
    ):
        if not attributes:
            raise ConfigurationError("at least one searchable attribute is required")
        self.partition = partition
        self.attributes = tuple(dict.fromkeys(attributes))
        self._scheme_factory = scheme_factory or NonDeterministicScheme
        self._permutation_seed = permutation_seed
        self._add_fake_tuples = add_fake_tuples
        self._bindings: Dict[str, AttributeBinding] = {}

    def setup(self) -> "MultiAttributeEngine":
        """Build bins and outsource once per searchable attribute."""
        for index, attribute in enumerate(self.attributes):
            if attribute not in self.partition.sensitive.schema and attribute not in (
                self.partition.non_sensitive.schema
            ):
                raise ConfigurationError(
                    f"attribute {attribute!r} is not part of the partitioned schema"
                )
            scheme = self._scheme_factory()
            cloud = CloudServer(name=f"cloud/{attribute}")
            rng = (
                random.Random(self._permutation_seed + index)
                if self._permutation_seed is not None
                else None
            )
            engine = QueryBinningEngine(
                partition=self.partition,
                attribute=attribute,
                scheme=scheme,
                cloud=cloud,
                add_fake_tuples=self._add_fake_tuples,
                rng=rng,
            )
            engine.setup()
            self._bindings[attribute] = AttributeBinding(
                attribute=attribute, engine=engine, scheme=scheme, cloud=cloud
            )
        return self

    # -- access ---------------------------------------------------------------------
    def binding(self, attribute: str) -> AttributeBinding:
        try:
            return self._bindings[attribute]
        except KeyError:
            raise QueryError(
                f"attribute {attribute!r} was not set up; available: "
                f"{sorted(self._bindings)}"
            ) from None

    def engine_for(self, attribute: str) -> QueryBinningEngine:
        return self.binding(attribute).engine

    # -- querying ---------------------------------------------------------------------
    def query(self, attribute: str, value: object) -> List[Row]:
        """Selection on one attribute through its own bins."""
        return self.engine_for(attribute).query(value)

    def query_with_trace(
        self, attribute: str, value: object
    ) -> Tuple[List[Row], ExecutionTrace]:
        return self.engine_for(attribute).query_with_trace(value)

    def conjunctive_query(self, predicates: Dict[str, object]) -> List[Row]:
        """Conjunction of equality predicates on several binned attributes.

        Each attribute is queried through its own bins and the owner
        intersects the results by row identity — the cloud never learns that
        the requests belong to the same conjunctive query.
        """
        if not predicates:
            raise QueryError("conjunctive_query needs at least one predicate")
        result_sets: List[Dict[int, Row]] = []
        for attribute, value in predicates.items():
            rows = self.query(attribute, value)
            result_sets.append({row.rid: row for row in rows})
        shared_rids = set(result_sets[0])
        for rows_by_rid in result_sets[1:]:
            shared_rids &= set(rows_by_rid)
        return [result_sets[0][rid] for rid in sorted(shared_rids)]

    # -- storage accounting ---------------------------------------------------------------
    def total_metadata_bytes(self) -> int:
        return sum(
            binding.engine.metadata.estimated_size_bytes()
            for binding in self._bindings.values()
            if binding.engine.metadata is not None
        )

    def total_encrypted_rows(self) -> int:
        return sum(binding.cloud.encrypted_row_count for binding in self._bindings.values())
