"""Range queries over a QB-protected attribute (full-version extension).

A range predicate ``low <= A <= high`` is answered by decomposing the range
into the domain values it covers — the owner knows the full value domain from
its metadata — and issuing the QB point retrieval for each covered value.
Because every point retrieval follows Algorithm 2, the joint adversarial view
is a union of bin-pair retrievals and leaks nothing beyond what the point
queries already don't: the cloud sees a set of bins being fetched, not the
range endpoints.

The executor deduplicates bin pairs (several covered values often map to the
same pair), so the number of cloud round trips is bounded by the number of
distinct bin pairs rather than by the width of the range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.engine import QueryBinningEngine
from repro.data.relation import Row, union_rows
from repro.exceptions import ConfigurationError, QueryError
from repro.query.predicates import RangePredicate


@dataclass
class RangeQueryTrace:
    """Accounting for one range query."""

    low: object
    high: object
    covered_values: int
    distinct_bin_pairs: int
    rows_returned: int


class RangeQueryExecutor:
    """Answer range predicates through an existing :class:`QueryBinningEngine`."""

    def __init__(self, engine: QueryBinningEngine):
        if engine.metadata is None or engine.retriever is None:
            raise ConfigurationError("the engine must be set up before range queries")
        self.engine = engine

    def _domain(self) -> List[object]:
        metadata = self.engine.metadata
        assert metadata is not None
        values = set(metadata.sensitive_counts) | set(metadata.non_sensitive_counts)
        try:
            return sorted(values)
        except TypeError as exc:
            raise QueryError(
                "the attribute domain is not totally ordered; range queries "
                "require comparable values"
            ) from exc

    def covered_values(self, low: object, high: object) -> List[object]:
        """Domain values inside ``[low, high]`` (inclusive on both ends)."""
        predicate = RangePredicate(self.engine.attribute, low=low, high=high)
        covered = []
        for value in self._domain():
            if (low is None or value >= low) and (high is None or value <= high):
                covered.append(value)
        # the predicate object is built above mostly for validation symmetry
        del predicate
        return covered

    def query_range(
        self, low: object, high: object
    ) -> Tuple[List[Row], RangeQueryTrace]:
        """Execute ``low <= attribute <= high`` and return rows plus a trace."""
        assert self.engine.retriever is not None
        covered = self.covered_values(low, high)
        seen_pairs: Set[Tuple[Optional[int], Optional[int]]] = set()
        rows_by_value: List[Row] = []
        for value in covered:
            decision = self.engine.retriever.retrieve(value)
            if decision.retrieves_anything:
                seen_pairs.add(
                    (decision.sensitive_bin_index, decision.non_sensitive_bin_index)
                )
            rows_by_value.extend(self.engine.query(value))
        merged = union_rows(rows_by_value)
        trace = RangeQueryTrace(
            low=low,
            high=high,
            covered_values=len(covered),
            distinct_bin_pairs=len(seen_pairs),
            rows_returned=len(merged),
        )
        return merged, trace
