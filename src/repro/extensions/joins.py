"""Equi-joins over a QB-protected attribute (full-version extension).

The join ``R ⋈_{A} T`` between two partitioned relations is executed entirely
through QB point retrievals: the owner enumerates the join-attribute values it
knows from the two engines' metadata, retrieves the matching rows from each
side through the usual bin machinery, and performs the join locally.  The
cloud therefore observes only the familiar bin-pair retrievals of selection
queries — never which values actually joined — so the join inherits QB's
partitioned-data-security guarantees.

This is deliberately an owner-side (semi-)join: the paper notes that
cloud-side encrypted joins (bilinear maps, Opaque's oblivious joins) are
orders of magnitude slower and support only restricted join types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import QueryBinningEngine
from repro.data.relation import Row
from repro.exceptions import ConfigurationError


@dataclass
class JoinedRow:
    """One output row of a binned equi-join."""

    value: object
    left: Row
    right: Row

    def as_dict(self, left_prefix: str = "L.", right_prefix: str = "R.") -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for name, item in self.left.values.items():
            merged[f"{left_prefix}{name}"] = item
        for name, item in self.right.values.items():
            merged[f"{right_prefix}{name}"] = item
        return merged


@dataclass
class JoinTrace:
    """Accounting for a binned join execution."""

    join_values_probed: int
    left_rows_fetched: int
    right_rows_fetched: int
    output_rows: int


class BinnedJoinExecutor:
    """Execute ``left ⋈ right`` on their (shared) binned attribute."""

    def __init__(
        self,
        left: QueryBinningEngine,
        right: QueryBinningEngine,
        join_values: Optional[Sequence[object]] = None,
    ):
        if left.metadata is None or right.metadata is None:
            raise ConfigurationError("both engines must be set up before joining")
        if left.attribute != right.attribute and join_values is None:
            raise ConfigurationError(
                "engines are binned on different attributes "
                f"({left.attribute!r} vs {right.attribute!r}); pass join_values "
                "explicitly if this is intended"
            )
        self.left = left
        self.right = right
        self._join_values = list(join_values) if join_values is not None else None

    def candidate_values(self) -> List[object]:
        """Join-attribute values that can possibly produce output rows.

        Only values present in *both* relations' metadata can join, so the
        owner intersects the two metadata domains — a purely local operation.
        """
        if self._join_values is not None:
            return list(self._join_values)
        assert self.left.metadata is not None and self.right.metadata is not None
        left_values = set(self.left.metadata.sensitive_counts) | set(
            self.left.metadata.non_sensitive_counts
        )
        right_values = set(self.right.metadata.sensitive_counts) | set(
            self.right.metadata.non_sensitive_counts
        )
        return sorted(left_values & right_values, key=repr)

    def execute(self) -> Tuple[List[JoinedRow], JoinTrace]:
        """Run the join and return the joined rows plus accounting."""
        output: List[JoinedRow] = []
        left_fetched = 0
        right_fetched = 0
        values = self.candidate_values()
        for value in values:
            left_rows = self.left.query(value)
            right_rows = self.right.query(value)
            left_fetched += len(left_rows)
            right_fetched += len(right_rows)
            for left_row in left_rows:
                for right_row in right_rows:
                    output.append(JoinedRow(value=value, left=left_row, right=right_row))
        trace = JoinTrace(
            join_values_probed=len(values),
            left_rows_fetched=left_fetched,
            right_rows_fetched=right_fetched,
            output_rows=len(output),
        )
        return output, trace
