"""Extensions described in the paper's full version (§I "Full version").

The conference paper defers several capabilities to its technical report:
range queries, equi-joins over the binned attribute, inserts, and
multi-attribute (column-level) search.  These modules implement practical
versions of each on top of the core QB engine so the reproduction covers the
paper's stated scope rather than only the headline selection path.
"""

from repro.extensions.range_queries import RangeQueryExecutor
from repro.extensions.joins import BinnedJoinExecutor
from repro.extensions.inserts import IncrementalInserter
from repro.extensions.multi_attribute import MultiAttributeEngine
from repro.extensions.aggregation import GroupByAggregator

__all__ = [
    "RangeQueryExecutor",
    "BinnedJoinExecutor",
    "IncrementalInserter",
    "MultiAttributeEngine",
    "GroupByAggregator",
]
