"""A CryptDB-style deterministic-encryption store.

CryptDB's DET onion (and any deterministic or order-preserving layer) lets the
cloud answer equality selections directly over ciphertexts, but equal
plaintexts map to equal ciphertexts, so the cloud sees the full frequency
histogram of the column — the leak behind the Naveed et al. inference attacks
the paper cites ([11], [12]).

This baseline outsources an *entire* relation under
:class:`~repro.crypto.deterministic.DeterministicScheme` and is used by the
security experiments as the frequency-count-attack victim, contrasted with the
same data protected by QB over a non-deterministic scheme.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.adversary.attacks import AttackOutcome, frequency_count_attack
from repro.cloud.server import CloudServer
from repro.crypto.base import EncryptedRow
from repro.crypto.deterministic import DeterministicScheme
from repro.data.relation import Relation, Row
from repro.exceptions import ConfigurationError


class DeterministicStoreBaseline:
    """Outsource everything under deterministic encryption; query by tag."""

    def __init__(
        self,
        relation: Relation,
        attribute: str,
        scheme: Optional[DeterministicScheme] = None,
        cloud: Optional[CloudServer] = None,
    ):
        self.relation = relation
        self.attribute = attribute
        self.scheme = scheme or DeterministicScheme()
        self.cloud = cloud or CloudServer()
        self._outsourced = False

    def setup(self) -> "DeterministicStoreBaseline":
        encrypted = self.scheme.encrypt_rows(list(self.relation.rows), self.attribute)
        self.cloud.store_sensitive(encrypted, self.scheme)
        self._outsourced = True
        return self

    def query(self, value: object) -> List[Row]:
        """Equality selection answered entirely by ciphertext-tag matching."""
        if not self._outsourced:
            raise ConfigurationError("call setup() before issuing queries")
        tokens = self.scheme.tokens_for_values([value], self.attribute)
        response = self.cloud.process_request(self.attribute, [], tokens)
        return self.scheme.decrypt_rows(response.encrypted_rows)

    def execute_workload(self, values: Iterable[object]) -> int:
        """Run a workload; returns the number of queries executed."""
        count = 0
        for value in values:
            self.query(value)
            count += 1
        return count

    # -- what the adversary gets -------------------------------------------------
    def stored_ciphertexts(self) -> Tuple[EncryptedRow, ...]:
        return self.cloud.stored_encrypted_rows

    def run_frequency_attack(self) -> AttackOutcome:
        """Mount the frequency-count attack against the stored ciphertexts."""
        true_counts = dict(self.relation.value_counts(self.attribute))
        return frequency_count_attack(self.stored_ciphertexts(), true_counts)
