"""Baselines QB is compared against in the paper's evaluation.

* :mod:`repro.baselines.full_encryption` — run the cryptographic technique
  over the *entire* dataset (no sensitivity partitioning), the denominator of
  the η ratio.
* :mod:`repro.baselines.opaque_sim` — a cost-calibrated simulator of Opaque
  (SGX-based oblivious scans), used by Table VI.
* :mod:`repro.baselines.jana_sim` — a cost-calibrated simulator of Jana
  (MPC-based query processing), used by Table VI.
* :mod:`repro.baselines.cryptdb_sim` — a deterministic-encryption store in the
  style of CryptDB's DET onion, the victim of the frequency-count attack.
"""

from repro.baselines.full_encryption import FullEncryptionBaseline
from repro.baselines.opaque_sim import OpaqueSimulator
from repro.baselines.jana_sim import JanaSimulator
from repro.baselines.cryptdb_sim import DeterministicStoreBaseline

__all__ = [
    "FullEncryptionBaseline",
    "OpaqueSimulator",
    "JanaSimulator",
    "DeterministicStoreBaseline",
]
