"""Cost-calibrated simulator of Jana (MPC-based private data as a service).

The paper reports that Jana answers a simple selection over a 116 MB /
1 M-tuple dataset in 1051 seconds — secure multi-party computation touches
every tuple.  Table VI's second row shows QB + Jana at different sensitivity
levels: the MPC engine only processes the sensitive fraction, while the
non-sensitive fraction is a cleartext probe, plus a per-query owner overhead
that is larger than Opaque's because MPC query submission/result assembly is
itself expensive.

The real Jana system is proprietary and requires an MPC deployment, so the
reproduction substitutes this calibrated simulator (see DESIGN.md); it keeps
the linear-in-α shape and the calibration point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ConfigurationError

#: The paper's reference measurement: 1051 s for a selection over 1 M tuples.
PAPER_FULL_SCAN_SECONDS = 1051.0
PAPER_DATASET_TUPLES = 1_000_000


@dataclass
class JanaSimulator:
    """Analytical cost simulator for Jana-style MPC selections.

    The default owner overhead (≈20 s) and the per-tuple MPC cost derived
    from the paper's calibration point reproduce Table VI's Jana row shape:
    22 / 80 / 270 / 505 / 749 seconds at 1 / 5 / 20 / 40 / 60 % sensitivity.
    """

    dataset_tuples: int = PAPER_DATASET_TUPLES
    full_scan_seconds: float = PAPER_FULL_SCAN_SECONDS
    reference_tuples: int = PAPER_DATASET_TUPLES
    owner_overhead_seconds: float = 20.0
    cleartext_seconds: float = 0.0002
    #: MPC result assembly cost grows mildly with the amount of secure work;
    #: expressed as a fraction of the secure-scan time.
    assembly_overhead_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.dataset_tuples <= 0 or self.reference_tuples <= 0:
            raise ConfigurationError("tuple counts must be positive")
        if self.full_scan_seconds <= 0:
            raise ConfigurationError("full_scan_seconds must be positive")

    @property
    def seconds_per_tuple(self) -> float:
        return self.full_scan_seconds / self.reference_tuples

    def full_encryption_seconds(self) -> float:
        """Selection time when the entire dataset is processed under MPC."""
        return self.seconds_per_tuple * self.dataset_tuples

    def qb_selection_seconds(self, sensitivity: float) -> float:
        """Selection time when only the sensitive fraction is processed under MPC."""
        if not 0.0 <= sensitivity <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        secure = self.seconds_per_tuple * self.dataset_tuples * sensitivity
        assembly = secure * self.assembly_overhead_fraction
        return self.owner_overhead_seconds + secure + assembly + self.cleartext_seconds

    def table6_row(self, sensitivities: Sequence[float] = (0.01, 0.05, 0.2, 0.4, 0.6)) -> Dict[float, float]:
        """The Table VI row for Jana: {sensitivity: seconds}."""
        return {alpha: self.qb_selection_seconds(alpha) for alpha in sensitivities}

    def speedup_over_full_encryption(self, sensitivity: float) -> float:
        return self.full_encryption_seconds() / self.qb_selection_seconds(sensitivity)
