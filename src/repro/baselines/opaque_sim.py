"""Cost-calibrated simulator of Opaque (SGX-based oblivious analytics).

The paper reports that Opaque answers a simple selection over a 700 MB /
6 M-tuple dataset in 89 seconds (the oblivious full scan dominates), while the
same query over cleartext takes ≈0.2 ms.  Table VI then shows the time of
QB + Opaque at different sensitivity levels: only the sensitive fraction of
the data is scanned obliviously, the non-sensitive fraction is processed in
cleartext, plus a roughly constant owner-side overhead (decryption, merging,
and bin bookkeeping).

The real Opaque needs SGX hardware and a Spark cluster, so the reproduction
substitutes this calibrated linear cost simulator (see DESIGN.md): its
per-tuple oblivious-scan cost is derived from the paper's 89 s / 6 M-tuple
measurement, which is sufficient to reproduce the *shape* of Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ConfigurationError

#: The paper's reference measurement: 89 s for a selection over 6 M tuples.
PAPER_FULL_SCAN_SECONDS = 89.0
PAPER_DATASET_TUPLES = 6_000_000
#: Cleartext selection over the same data (the paper quotes ~0.2 ms).
PAPER_CLEARTEXT_SECONDS = 0.0002


@dataclass
class OpaqueSimulator:
    """Analytical cost simulator for Opaque-style oblivious selections.

    Parameters
    ----------
    dataset_tuples:
        Number of tuples in the (sensitive + non-sensitive) dataset.
    full_scan_seconds:
        Time an oblivious scan of ``reference_tuples`` takes (calibration
        point; defaults to the paper's 89 s).
    reference_tuples:
        The dataset size the calibration point was measured at.
    owner_overhead_seconds:
        Fixed per-query owner-side cost when QB is used (bin lookup, token
        generation, decrypting and merging the returned bins).  The paper's
        Table VI shows ≈10 s of such overhead at low sensitivity.
    """

    dataset_tuples: int = PAPER_DATASET_TUPLES
    full_scan_seconds: float = PAPER_FULL_SCAN_SECONDS
    reference_tuples: int = PAPER_DATASET_TUPLES
    owner_overhead_seconds: float = 10.0
    cleartext_seconds: float = PAPER_CLEARTEXT_SECONDS

    def __post_init__(self) -> None:
        if self.dataset_tuples <= 0 or self.reference_tuples <= 0:
            raise ConfigurationError("tuple counts must be positive")
        if self.full_scan_seconds <= 0:
            raise ConfigurationError("full_scan_seconds must be positive")

    @property
    def seconds_per_tuple(self) -> float:
        """Per-tuple oblivious-scan cost implied by the calibration point."""
        return self.full_scan_seconds / self.reference_tuples

    # -- without QB ------------------------------------------------------------------
    def full_encryption_seconds(self) -> float:
        """Selection time when the whole dataset is processed obliviously."""
        return self.seconds_per_tuple * self.dataset_tuples

    # -- with QB ----------------------------------------------------------------------
    def qb_selection_seconds(self, sensitivity: float) -> float:
        """Selection time when only the sensitive fraction is oblivious.

        ``sensitivity`` is the paper's α: the fraction of tuples that are
        sensitive and therefore must be scanned inside the enclave.  The
        non-sensitive side costs a cleartext index probe, and the owner pays
        the fixed QB overhead.
        """
        if not 0.0 <= sensitivity <= 1.0:
            raise ConfigurationError("sensitivity must be in [0, 1]")
        oblivious = self.seconds_per_tuple * self.dataset_tuples * sensitivity
        return self.owner_overhead_seconds + oblivious + self.cleartext_seconds

    def table6_row(self, sensitivities: Sequence[float] = (0.01, 0.05, 0.2, 0.4, 0.6)) -> Dict[float, float]:
        """The Table VI row for Opaque: {sensitivity: seconds}."""
        return {alpha: self.qb_selection_seconds(alpha) for alpha in sensitivities}

    def speedup_over_full_encryption(self, sensitivity: float) -> float:
        """How many times faster QB + Opaque is than Opaque on everything."""
        return self.full_encryption_seconds() / self.qb_selection_seconds(sensitivity)
