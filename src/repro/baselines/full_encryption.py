"""The fully-encrypted baseline: no sensitivity partitioning at all.

Every tuple — sensitive or not — is encrypted with the chosen scheme and every
selection is answered by the scheme's encrypted search.  This is the
denominator of the paper's η ratio: QB is worthwhile exactly when its mixed
cleartext/encrypted execution beats this baseline.

Because pure-Python crypto timings would not be comparable to the paper's
server-grade numbers, the baseline reports both a *measured* execution (for
functional tests on small data) and a *modelled* cost derived from
:class:`~repro.model.parameters.CostParameters` (for the benchmark harness on
paper-scale tuple counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.cloud.server import CloudServer
from repro.crypto.base import EncryptedSearchScheme
from repro.data.relation import Relation, Row
from repro.exceptions import ConfigurationError
from repro.model.cost import cost_crypt
from repro.model.parameters import CostParameters
from repro.query.selection import SelectionQuery


@dataclass
class BaselineTrace:
    """Accounting for one baseline query."""

    value: object
    rows_returned: int
    tuples_scanned: int
    modelled_seconds: float


class FullEncryptionBaseline:
    """Encrypt-everything execution of selection queries."""

    def __init__(
        self,
        relation: Relation,
        attribute: str,
        scheme: EncryptedSearchScheme,
        cloud: Optional[CloudServer] = None,
        cost_parameters: Optional[CostParameters] = None,
    ):
        self.relation = relation
        self.attribute = attribute
        self.scheme = scheme
        # This baseline models the paper's "No-Ind" systems: every encrypted
        # selection touches every row.  Disable the cloud's encrypted indexes
        # (also on caller-supplied clouds) so measured behaviour matches the
        # modelled full-scan cost and the tuples_scanned accounting below.
        self.cloud = cloud or CloudServer(use_encrypted_indexes=False)
        self.cloud.use_encrypted_indexes = False
        self.params = cost_parameters or CostParameters.paper_defaults()
        self._outsourced = False

    def setup(self) -> "FullEncryptionBaseline":
        """Encrypt the whole relation and outsource it."""
        encrypted = self.scheme.encrypt_rows(list(self.relation.rows), self.attribute)
        self.cloud.store_sensitive(encrypted, self.scheme)
        self._outsourced = True
        return self

    def query(self, value: object) -> List[Row]:
        rows, _trace = self.query_with_trace(value)
        return rows

    def query_with_trace(self, value: object) -> Tuple[List[Row], BaselineTrace]:
        """Execute one encrypted selection and return rows plus accounting."""
        if not self._outsourced:
            raise ConfigurationError("call setup() before issuing queries")
        query = SelectionQuery(self.attribute, value)
        tokens = self.scheme.tokens_for_values([value], self.attribute)
        response = self.cloud.process_request(self.attribute, [], tokens)
        rows = [
            row
            for row in self.scheme.decrypt_rows(response.encrypted_rows)
            if row[self.attribute] == query.value
        ]
        trace = BaselineTrace(
            value=value,
            rows_returned=len(rows),
            tuples_scanned=len(self.relation),
            modelled_seconds=self.modelled_query_seconds(),
        )
        return rows, trace

    def execute_workload(self, values: Iterable[object]) -> List[BaselineTrace]:
        return [self.query_with_trace(value)[1] for value in values]

    # -- analytical cost -------------------------------------------------------------
    def modelled_query_seconds(self, num_probes: int = 1) -> float:
        """Cost of ``num_probes`` encrypted selections over the whole relation."""
        return cost_crypt(num_probes, len(self.relation), self.params)
