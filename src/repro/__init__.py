"""repro — a reproduction of "Partitioned Data Security on Outsourced
Sensitive and Non-sensitive Data" (Mehrotra, Sharma, Ullman, Mishra; ICDE 2019).

The library implements the paper's Query Binning (QB) technique end to end:

* a relational substrate with row-level sensitivity partitioning
  (:mod:`repro.data`),
* the cryptographic techniques QB can sit on top of (:mod:`repro.crypto`),
* an honest-but-curious public cloud that records adversarial views
  (:mod:`repro.cloud`),
* the QB bin-creation and bin-retrieval algorithms plus an end-to-end engine
  (:mod:`repro.core`),
* the trusted DB-owner façade (:mod:`repro.owner`),
* the attacks and the partitioned-data-security auditor
  (:mod:`repro.adversary`),
* the analytical cost model of §V (:mod:`repro.model`),
* workload generators, comparison baselines, and full-version extensions
  (:mod:`repro.workloads`, :mod:`repro.baselines`, :mod:`repro.extensions`).

Quickstart
----------
>>> from repro import DBOwner
>>> from repro.workloads.employee import build_employee_relation, employee_policy
>>> owner = DBOwner(build_employee_relation(), employee_policy())
>>> engine = owner.outsource("EId")
>>> sorted(row["Office"] for row in owner.query("EId", "E259"))
['2', '6']
"""

from repro.exceptions import (
    BinLookupError,
    BinningError,
    CloudError,
    ConfigurationError,
    CryptoError,
    IntegrityError,
    PartitioningError,
    QueryError,
    ReproError,
    SchemaError,
    SecurityViolation,
    UnknownAttributeError,
)
from repro.data import (
    Attribute,
    PartitionResult,
    Relation,
    Row,
    Schema,
    SensitivityPolicy,
    partition_relation,
)
from repro.core import (
    BinLayout,
    BinRetriever,
    NaivePartitionedEngine,
    OwnerMetadata,
    QueryBinningEngine,
    create_bins,
    create_general_bins,
    plan_binning,
)
from repro.owner import DBOwner, KeyStore
from repro.cloud import CloudServer, NetworkModel
from repro.adversary import PartitionedSecurityAuditor, SurvivingMatchAnalysis
from repro.model import CostParameters, eta_simplified

__version__ = "0.1.0"

__all__ = [
    # exceptions
    "ReproError",
    "SchemaError",
    "UnknownAttributeError",
    "PartitioningError",
    "BinningError",
    "BinLookupError",
    "QueryError",
    "CryptoError",
    "IntegrityError",
    "CloudError",
    "SecurityViolation",
    "ConfigurationError",
    # data
    "Attribute",
    "Schema",
    "Relation",
    "Row",
    "SensitivityPolicy",
    "PartitionResult",
    "partition_relation",
    # core
    "create_bins",
    "create_general_bins",
    "plan_binning",
    "BinLayout",
    "BinRetriever",
    "OwnerMetadata",
    "QueryBinningEngine",
    "NaivePartitionedEngine",
    # owner / cloud
    "DBOwner",
    "KeyStore",
    "CloudServer",
    "NetworkModel",
    # security & model
    "PartitionedSecurityAuditor",
    "SurvivingMatchAnalysis",
    "CostParameters",
    "eta_simplified",
    "__version__",
]
