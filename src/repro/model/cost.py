"""Cost functions and the η ratio of §V-A.

The model's structure:

* ``cost_plain(x, D)`` — cost of ``x`` cleartext selection probes over a
  ``D``-tuple relation plus shipping the matching tuples:
  ``x · (log(D) · Cp + ρ · D · Ccom)``.
* ``cost_crypt(x, D)`` — cost of ``x`` encrypted selections: one amortised
  encrypted pass over the data plus shipping the matches:
  ``Ce · D + ρ · x · D · Ccom``.
* ``eta_full`` — the exact ratio
  ``Costcrypt(|SB|, S)/Costcrypt(1, D) + Costplain(|NSB|, NS)/Costcrypt(1, D)``.
* ``eta_simplified`` — the paper's closed form ``η = α + ρ(|SB|+|NSB|)/γ``
  (valid because ρ/γ ≪ 1 and log(D)·|NSB|/(D·β) ≪ 1).
* ``break_even_alpha`` — the largest sensitivity fraction for which QB still
  beats full encryption: ``α < 1 − 2ρ√|NS|/γ``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.model.parameters import CostParameters


def cost_plain(num_probes: int, num_tuples: int, params: CostParameters) -> float:
    """Cost (seconds) of ``num_probes`` cleartext selections over ``num_tuples``."""
    if num_tuples <= 0:
        return 0.0
    log_term = math.log2(num_tuples) if num_tuples > 1 else 1.0
    per_probe = log_term * params.plaintext_cost + params.rho * num_tuples * params.communication_cost
    return num_probes * per_probe


def cost_crypt(num_probes: int, num_tuples: int, params: CostParameters) -> float:
    """Cost (seconds) of ``num_probes`` encrypted selections over ``num_tuples``.

    The encrypted pass is amortised over the probes (a single scan can test
    all of them), so processing does not scale with ``num_probes`` — only the
    shipped results do.
    """
    if num_tuples <= 0:
        return 0.0
    processing = params.encrypted_cost * num_tuples
    communication = params.rho * num_probes * num_tuples * params.communication_cost
    return processing + communication


def eta_full(
    sensitive_tuples: int,
    non_sensitive_tuples: int,
    sensitive_bin_width: int,
    non_sensitive_bin_width: int,
    params: CostParameters,
) -> float:
    """The exact η ratio from the component costs."""
    total = sensitive_tuples + non_sensitive_tuples
    if total <= 0:
        raise ConfigurationError("the dataset must contain at least one tuple")
    baseline = cost_crypt(1, total, params)
    qb_cost = cost_crypt(sensitive_bin_width, sensitive_tuples, params) + cost_plain(
        non_sensitive_bin_width, non_sensitive_tuples, params
    )
    return qb_cost / baseline


def eta_simplified(
    alpha: float,
    sensitive_bin_width: int,
    non_sensitive_bin_width: int,
    params: CostParameters,
) -> float:
    """The paper's closed form η = α + ρ(|SB| + |NSB|)/γ."""
    if not 0 <= alpha <= 1:
        raise ConfigurationError("alpha must be in [0, 1]")
    return alpha + params.rho * (sensitive_bin_width + non_sensitive_bin_width) / params.gamma


def break_even_alpha(num_non_sensitive_values: int, params: CostParameters) -> float:
    """Largest α for which QB beats the fully-encrypted baseline.

    Uses the uniform-distribution simplification ρ ≈ 1/|NS| of §V-A:
    α < 1 − 2 / (γ √|NS|).
    """
    if num_non_sensitive_values <= 0:
        raise ConfigurationError("need a positive number of non-sensitive values")
    return 1.0 - 2.0 / (params.gamma * math.sqrt(num_non_sensitive_values))


def eta_sweep(
    gammas: Sequence[float],
    alphas: Sequence[float],
    num_non_sensitive_values: int,
    rho: float = 0.10,
) -> Dict[float, List[Tuple[float, float]]]:
    """The Figure 6a sweep: η(γ) curves, one per α.

    Bin widths are set to the square-root heuristic |SB| = |NSB| = √|NS|
    (the optimum the paper identifies in Figure 6c).

    Returns ``{alpha: [(gamma, eta), ...]}``.
    """
    if num_non_sensitive_values <= 0:
        raise ConfigurationError("need a positive number of non-sensitive values")
    width = max(1, round(math.sqrt(num_non_sensitive_values)))
    curves: Dict[float, List[Tuple[float, float]]] = {}
    for alpha in alphas:
        points = []
        for gamma in gammas:
            params = CostParameters.from_ratios(gamma=gamma, selectivity=rho)
            points.append((gamma, eta_simplified(alpha, width, width, params)))
        curves[alpha] = points
    return curves


def crossover_gamma(
    alpha: float, num_non_sensitive_values: int, rho: float = 0.10
) -> float:
    """The γ above which QB wins (η < 1) for a given α and |NS|.

    Solving η = α + 2ρ√|NS|/γ = 1 for γ gives γ* = 2ρ√|NS| / (1 − α);
    undefined (infinite) for α ≥ 1.
    """
    if alpha >= 1.0:
        return math.inf
    width = math.sqrt(max(num_non_sensitive_values, 1))
    return 2.0 * rho * width / (1.0 - alpha)
