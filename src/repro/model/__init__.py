"""Analytical performance model of §V-A.

The model compares the cost of answering a selection query with QB (search a
sensitive bin cryptographically + a non-sensitive bin in cleartext + ship the
results) against running the cryptographic technique over the *entire*
dataset.  The headline quantity is η: QB wins whenever η < 1.
"""

from repro.model.parameters import CostParameters
from repro.model.cost import (
    break_even_alpha,
    cost_crypt,
    cost_plain,
    eta_full,
    eta_simplified,
    eta_sweep,
)

__all__ = [
    "CostParameters",
    "cost_plain",
    "cost_crypt",
    "eta_full",
    "eta_simplified",
    "eta_sweep",
    "break_even_alpha",
]
