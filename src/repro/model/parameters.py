"""Parameters of the analytical cost model.

Symbols follow the paper:

* ``Ccom`` — time to move one tuple between cloud and owner (seconds);
* ``Cp`` — time for one selection probe on cleartext data (seconds);
* ``Ce`` — time for one selection "pass" on encrypted data (seconds);
* ``alpha`` (α) — fraction of the dataset that is sensitive;
* ``beta`` (β) = Ce / Cp — overhead of the cryptographic technique;
* ``gamma`` (γ) = Ce / Ccom — crypto processing relative to communication;
* ``rho`` (ρ) — query selectivity (fraction of tuples matching a predicate).

The paper's worked numbers: secret-sharing search ≈ 10 ms, shipping one
≈ 200-byte tuple over 30 Mbps ≈ 4 µs, hence γ ≈ 2.5 × 10³-10⁴ and QB wins for
essentially every α.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CostParameters:
    """A consistent set of model parameters.

    Either construct directly from primitive costs (``Ccom``, ``Cp``, ``Ce``)
    or use :meth:`from_ratios` when only the paper's ratios are known.
    """

    communication_cost: float  # Ccom, seconds per tuple
    plaintext_cost: float      # Cp, seconds per probe
    encrypted_cost: float      # Ce, seconds per encrypted pass/probe
    selectivity: float = 0.01  # rho

    def __post_init__(self) -> None:
        if min(self.communication_cost, self.plaintext_cost, self.encrypted_cost) <= 0:
            raise ConfigurationError("all costs must be strictly positive")
        if not 0 < self.selectivity <= 1:
            raise ConfigurationError("selectivity must be in (0, 1]")

    # -- the paper's ratios ----------------------------------------------------
    @property
    def beta(self) -> float:
        """β = Ce / Cp — cryptographic overhead relative to cleartext."""
        return self.encrypted_cost / self.plaintext_cost

    @property
    def gamma(self) -> float:
        """γ = Ce / Ccom — cryptographic processing relative to communication."""
        return self.encrypted_cost / self.communication_cost

    @property
    def rho(self) -> float:
        return self.selectivity

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_ratios(
        cls,
        gamma: float,
        beta: float = 1000.0,
        communication_cost: float = 4e-6,
        selectivity: float = 0.01,
    ) -> "CostParameters":
        """Build parameters from the ratios the paper plots against.

        ``Ccom`` defaults to the paper's ≈4 µs per tuple; ``Ce`` and ``Cp``
        are derived from γ and β.
        """
        if gamma <= 0 or beta <= 0:
            raise ConfigurationError("gamma and beta must be positive")
        encrypted_cost = gamma * communication_cost
        plaintext_cost = encrypted_cost / beta
        return cls(
            communication_cost=communication_cost,
            plaintext_cost=plaintext_cost,
            encrypted_cost=encrypted_cost,
            selectivity=selectivity,
        )

    @classmethod
    def paper_defaults(cls, selectivity: float = 0.01) -> "CostParameters":
        """The parameter point the paper quotes for secret-sharing search."""
        return cls(
            communication_cost=4e-6,   # ~200 B tuple over ~30 Mbps
            plaintext_cost=1e-5,       # cleartext index probe
            encrypted_cost=1e-2,       # ~10 ms secret-sharing search
            selectivity=selectivity,
        )

    def with_selectivity(self, selectivity: float) -> "CostParameters":
        return CostParameters(
            communication_cost=self.communication_cost,
            plaintext_cost=self.plaintext_cost,
            encrypted_cost=self.encrypted_cost,
            selectivity=selectivity,
        )
