"""Row-level sensitivity partitioning (the paper's §II).

The trusted DB owner divides a relation ``R`` into a sensitive sub-relation
``Rs`` and a non-sensitive sub-relation ``Rns``.  Sensitivity may come from:

* a user-supplied predicate over rows (e.g. ``Dept == "Defense"``),
* an explicit set of sensitive values of some attribute,
* the per-row ``sensitive`` flag already present on the rows, or
* a column-level sensitive attribute, which is split vertically into its own
  relation (the paper's ``Employee1`` holding only ``EId, SSN``).

The result mirrors Figure 2 of the paper: ``Employee1`` (vertical split of the
sensitive columns), ``Employee2`` (sensitive rows), ``Employee3``
(non-sensitive rows).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Collection, Dict, Iterable, List, Optional, Sequence

from repro.data.relation import Relation, Row
from repro.data.schema import Schema
from repro.exceptions import PartitioningError


RowPredicate = Callable[[Row], bool]


# -- shard-assignment policies -------------------------------------------------
#
# Horizontal sharding (spreading bins across the servers of a
# :class:`~repro.cloud.multi_cloud.MultiCloud`) needs a deterministic
# item → shard assignment.  Two policies are provided; both are pure functions
# of their inputs, so re-running setup — or rebalancing onto a different
# server count — always reproduces the same placement.


def stable_item_hash(item: object) -> int:
    """A process-independent hash of ``item`` (Python's ``hash`` is salted).

    CRC32 over the ``repr`` is stable across runs and platforms, which is all
    shard routing needs — this is a placement function, not a cryptographic
    commitment.
    """
    return zlib.crc32(repr(item).encode("utf-8"))


def hash_shard_assignment(
    items: Sequence[object], num_shards: int
) -> Dict[object, int]:
    """Assign each item to ``stable_item_hash(item) % num_shards``.

    Placement of one item is independent of the rest of the item set, so
    inserts that introduce new items never move existing ones.
    """
    if num_shards < 1:
        raise PartitioningError(f"need at least one shard, got {num_shards}")
    return {item: stable_item_hash(item) % num_shards for item in items}


def range_shard_assignment(
    items: Sequence[object], num_shards: int
) -> Dict[object, int]:
    """Split ``items`` (in the given order) into ``num_shards`` contiguous,
    near-even ranges.

    The first ``len(items) % num_shards`` ranges take one extra item, which
    keeps shard loads within one item of each other — the classic range
    partitioning used when items carry a meaningful order (bin indexes do:
    consecutive bins were built from consecutive permutation slices).
    """
    if num_shards < 1:
        raise PartitioningError(f"need at least one shard, got {num_shards}")
    items = list(items)
    base, remainder = divmod(len(items), num_shards)
    assignment: Dict[object, int] = {}
    cursor = 0
    for shard in range(num_shards):
        width = base + (1 if shard < remainder else 0)
        for item in items[cursor : cursor + width]:
            assignment[item] = shard
        cursor += width
    return assignment


SHARD_POLICIES: Dict[str, Callable[[Sequence[object], int], Dict[object, int]]] = {
    "hash": hash_shard_assignment,
    "range": range_shard_assignment,
}


def rendezvous_order(item: object, members: Collection[int]) -> tuple:
    """Order ``members`` by highest-random-weight for ``item``.

    Classic rendezvous (HRW) hashing: every (item, member) pair gets an
    independent stable weight and members are ranked by descending weight, so
    each item picks its own winner and, when a member disappears, only the
    items it was winning move — spread across *all* survivors in proportion
    to their weights instead of piling onto one deterministic successor.
    The shard router uses this to order a bin's cleartext failover
    candidates; a pure function of its inputs, so any two coordinators (or
    re-runs) agree on the order.
    """
    return tuple(
        sorted(members, key=lambda member: (-stable_item_hash((item, member)), member))
    )


@lru_cache(maxsize=4096)
def replica_chain(
    primary: int, num_shards: int, replication_factor: int
) -> tuple:
    """The ordered members holding one slice under k-way replication.

    The chain is the primary followed by its successors on the member ring —
    a pure function of ``(primary, num_shards, replication_factor)``, so
    replica placement is as deterministic (and as rebuild-safe) as primary
    placement — which also makes it safely memoisable: batch planning calls
    this once per request half, and the key space is tiny (members ×
    replication factors), so the cache turns ring construction into a dict
    probe on the hot routing path.  Keeping replicas *contiguous after the
    primary* is what lets the shard router carve the ring into a token
    segment and a cleartext segment per sensitive bin: every replica stays
    inside the token segment, so replication can never co-locate a bin's
    token slice with its paired cleartext traffic (see
    :class:`repro.cloud.multi_cloud.ShardRouter`).
    """
    if replication_factor < 1:
        raise PartitioningError(
            f"replication_factor must be at least 1, got {replication_factor}"
        )
    if replication_factor > num_shards:
        raise PartitioningError(
            f"cannot place {replication_factor} replicas on {num_shards} shards"
        )
    return tuple(
        (primary + step) % num_shards for step in range(replication_factor)
    )


@dataclass
class SensitivityPolicy:
    """Declarative description of what makes a row or a column sensitive.

    Parameters
    ----------
    row_predicate:
        Callable returning ``True`` for sensitive rows.
    sensitive_values:
        Mapping from attribute name to the collection of values whose rows
        are sensitive (e.g. ``{"Dept": {"Defense"}}``).
    sensitive_attributes:
        Column-level sensitive attributes that must be split vertically and
        always encrypted (``SSN`` in the paper).
    key_attribute:
        The attribute retained alongside vertically-split sensitive columns
        so their values can later be re-joined at the owner (``EId``).
    use_row_flags:
        Whether to honour the ``Row.sensitive`` flag in addition to the other
        criteria.
    """

    row_predicate: Optional[RowPredicate] = None
    sensitive_values: Dict[str, Collection[object]] = field(default_factory=dict)
    sensitive_attributes: Sequence[str] = ()
    key_attribute: Optional[str] = None
    use_row_flags: bool = True

    def is_sensitive_row(self, row: Row) -> bool:
        """Decide whether a single row is sensitive under this policy."""
        if self.use_row_flags and row.sensitive:
            return True
        if self.row_predicate is not None and self.row_predicate(row):
            return True
        for attribute, values in self.sensitive_values.items():
            if row.get(attribute) in values:
                return True
        return False


@dataclass
class PartitionResult:
    """Outcome of partitioning a relation under a :class:`SensitivityPolicy`.

    Attributes
    ----------
    sensitive:
        ``Rs`` — rows classified sensitive, to be encrypted before
        outsourcing.
    non_sensitive:
        ``Rns`` — rows classified non-sensitive, outsourced in cleartext.
    vertical:
        Optional vertical split of column-level sensitive attributes
        (``Employee1`` in the paper), always treated as sensitive.
    policy:
        The policy that produced the partition, kept for provenance.
    """

    sensitive: Relation
    non_sensitive: Relation
    vertical: Optional[Relation] = None
    policy: Optional[SensitivityPolicy] = None

    @property
    def total_rows(self) -> int:
        return len(self.sensitive) + len(self.non_sensitive)

    @property
    def sensitivity_fraction(self) -> float:
        """The paper's α restricted to row counts: |Rs| / |R|."""
        total = self.total_rows
        if total == 0:
            return 0.0
        return len(self.sensitive) / total

    def sensitive_values(self, attribute: str) -> List[object]:
        """Distinct sensitive values of ``attribute`` (QB input ``S``)."""
        return self.sensitive.distinct_values(attribute)

    def non_sensitive_values(self, attribute: str) -> List[object]:
        """Distinct non-sensitive values of ``attribute`` (QB input ``NS``)."""
        return self.non_sensitive.distinct_values(attribute)


def partition_relation(
    relation: Relation,
    policy: SensitivityPolicy,
    sensitive_name: Optional[str] = None,
    non_sensitive_name: Optional[str] = None,
) -> PartitionResult:
    """Split ``relation`` into sensitive and non-sensitive sub-relations.

    The horizontal split preserves row identifiers so that the adversary's
    view of returned encrypted tuples matches the paper's ``E(t_i)``
    notation.  When the policy names column-level sensitive attributes, those
    columns are removed from both horizontal partitions and placed in a
    separate, always-sensitive vertical relation together with the policy's
    ``key_attribute``.
    """
    sensitive_name = sensitive_name or f"{relation.name}_sensitive"
    non_sensitive_name = non_sensitive_name or f"{relation.name}_non_sensitive"

    vertical = _vertical_split(relation, policy)

    horizontal_schema = relation.schema
    drop = [a for a in policy.sensitive_attributes if a in relation.schema]
    if drop:
        horizontal_schema = relation.schema.drop(drop)

    sensitive = Relation(sensitive_name, horizontal_schema)
    non_sensitive = Relation(non_sensitive_name, horizontal_schema)
    kept = horizontal_schema.names
    for row in relation:
        projected = row.project(kept)
        if policy.is_sensitive_row(row):
            sensitive._add_row(projected.with_sensitivity(True), validate=False)
        else:
            non_sensitive._add_row(projected.with_sensitivity(False), validate=False)

    return PartitionResult(
        sensitive=sensitive,
        non_sensitive=non_sensitive,
        vertical=vertical,
        policy=policy,
    )


def _vertical_split(relation: Relation, policy: SensitivityPolicy) -> Optional[Relation]:
    """Build the vertical relation of column-level sensitive attributes."""
    columns = [a for a in policy.sensitive_attributes if a in relation.schema]
    if not columns:
        return None
    key = policy.key_attribute
    if key is None:
        raise PartitioningError(
            "a key_attribute is required when sensitive_attributes are declared"
        )
    if key not in relation.schema:
        raise PartitioningError(f"key attribute {key!r} not in schema")
    projected_names = [key] + [c for c in columns if c != key]
    schema = relation.schema.project(projected_names)
    vertical = Relation(f"{relation.name}_vertical", schema)
    seen = set()
    for row in relation:
        key_value = row[key]
        signature = tuple(row[name] for name in projected_names)
        if signature in seen:
            continue
        seen.add(signature)
        vertical.insert(
            {name: row[name] for name in projected_names},
            sensitive=True,
            validate=False,
        )
    return vertical


def partition_by_fraction(
    relation: Relation,
    attribute: str,
    sensitivity_fraction: float,
    name_prefix: Optional[str] = None,
) -> PartitionResult:
    """Partition ``relation`` so that roughly ``sensitivity_fraction`` of the
    *distinct values* of ``attribute`` (and all their rows) are sensitive.

    This is the knob the paper's experiments sweep (α ∈ {1 %, 5 %, ... 60 %}).
    Values are taken in first-appearance order, which keeps the construction
    deterministic for reproducible benchmarks.
    """
    if not 0.0 <= sensitivity_fraction <= 1.0:
        raise PartitioningError(
            f"sensitivity_fraction must be in [0, 1], got {sensitivity_fraction}"
        )
    values = relation.distinct_values(attribute)
    cutoff = int(round(len(values) * sensitivity_fraction))
    sensitive_values = set(values[:cutoff])
    policy = SensitivityPolicy(sensitive_values={attribute: sensitive_values})
    prefix = name_prefix or relation.name
    return partition_relation(
        relation,
        policy,
        sensitive_name=f"{prefix}_s",
        non_sensitive_name=f"{prefix}_ns",
    )
