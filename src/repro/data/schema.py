"""Schema objects describing the attributes of a relation.

A :class:`Schema` is an ordered collection of :class:`Attribute` objects.
Schemas are deliberately lightweight: the library stores rows as mappings
from attribute name to value, and the schema is used for validation,
projection, and pretty-printing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.exceptions import SchemaError, UnknownAttributeError


@dataclass(frozen=True)
class Attribute:
    """A single named attribute (column) of a relation.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"EId"``.
    dtype:
        Python type the attribute values are expected to have.  Values are
        validated against this type when rows are inserted with
        ``validate=True``.
    sensitive:
        Whether the *attribute itself* is sensitive (column-level
        sensitivity, as for ``SSN`` in the paper's Example 1).  Row-level
        sensitivity is handled separately by the partitioner.
    searchable:
        Whether the attribute may appear in selection predicates.  Query
        Binning builds bin metadata only for searchable attributes.
    """

    name: str
    dtype: type = str
    sensitive: bool = False
    searchable: bool = True

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` when ``value`` has the wrong type.

        ``None`` is always accepted (SQL-style NULL); ints are accepted for
        float attributes.
        """
        if value is None:
            return
        if self.dtype is float and isinstance(value, int):
            return
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


class Schema:
    """An ordered, immutable collection of :class:`Attribute` objects."""

    def __init__(self, attributes: Iterable[Attribute]):
        attrs: Tuple[Attribute, ...] = tuple(attributes)
        names = [a.name for a in attrs]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if not attrs:
            raise SchemaError("a schema must contain at least one attribute")
        self._attributes = attrs
        self._by_name = {a.name: a for a in attrs}

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        dtype: type = str,
        sensitive: Sequence[str] = (),
    ) -> "Schema":
        """Build a schema where every attribute shares a single ``dtype``."""
        sensitive_set = set(sensitive)
        unknown = sensitive_set - set(names)
        if unknown:
            raise SchemaError(f"sensitive attributes not in schema: {sorted(unknown)}")
        return cls(
            Attribute(name, dtype=dtype, sensitive=name in sensitive_set)
            for name in names
        )

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.names)})"

    # -- accessors -----------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def sensitive_names(self) -> Tuple[str, ...]:
        """Names of column-level sensitive attributes."""
        return tuple(a.name for a in self._attributes if a.sensitive)

    @property
    def searchable_names(self) -> Tuple[str, ...]:
        """Names of attributes that may appear in selection predicates."""
        return tuple(a.name for a in self._attributes if a.searchable)

    # -- derived schemas -----------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a new schema without the attributes in ``names``."""
        dropped = set(names)
        for name in dropped:
            self[name]  # raises UnknownAttributeError for bad names
        remaining = [a for a in self._attributes if a.name not in dropped]
        if not remaining:
            raise SchemaError("cannot drop every attribute of a schema")
        return Schema(remaining)

    def validate_row(self, row: "dict[str, object]") -> None:
        """Validate that ``row`` has exactly the schema's attributes."""
        missing = set(self.names) - set(row)
        extra = set(row) - set(self.names)
        if missing or extra:
            raise SchemaError(
                f"row keys do not match schema: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for attribute in self._attributes:
            attribute.validate(row[attribute.name])


def common_schema(first: Schema, second: Schema) -> Optional[Schema]:
    """Return the shared schema of two relations, or ``None`` if they differ.

    Two schemas are compatible when they declare the same attribute names in
    the same order; sensitivity flags are allowed to differ (the sensitive
    partition typically keeps extra flags).
    """
    if first.names != second.names:
        return None
    return first
