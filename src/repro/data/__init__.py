"""Relational data substrate: schemas, relations, rows, and partitioning.

The paper's setting is a single relation ``R`` that the trusted DB owner
splits by *row-level sensitivity* into a sensitive sub-relation ``Rs`` and a
non-sensitive sub-relation ``Rns``.  This package provides the in-memory
relational building blocks the rest of the library operates on.
"""

from repro.data.schema import Attribute, Schema
from repro.data.relation import Relation, Row
from repro.data.partition import PartitionResult, SensitivityPolicy, partition_relation

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "Row",
    "PartitionResult",
    "SensitivityPolicy",
    "partition_relation",
]
