"""CSV import/export for relations.

The reproduction ships synthetic workload generators, but downstream users
will typically want to load their own tables; CSV is the lowest common
denominator.  Values are stored as strings unless the schema declares a
numeric dtype, in which case they are parsed on load.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError

PathLike = Union[str, Path]


def write_csv(relation: Relation, path: PathLike, include_rid: bool = False) -> None:
    """Write ``relation`` to ``path`` as a CSV file with a header row."""
    path = Path(path)
    fieldnames = list(relation.schema.names)
    if include_rid:
        fieldnames = ["__rid__"] + fieldnames
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in relation:
            record = {name: row[name] for name in relation.schema.names}
            if include_rid:
                record["__rid__"] = row.rid
            writer.writerow(record)


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    schema: Optional[Schema] = None,
    sensitive: bool = False,
) -> Relation:
    """Load a CSV file into a :class:`Relation`.

    When ``schema`` is omitted, one is inferred from the header with all
    attributes typed as ``str``.  A ``__rid__`` column produced by
    :func:`write_csv` is honoured and restored as the row identifier.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SchemaError(f"CSV file {path} has no header row")
        header = [f for f in reader.fieldnames if f != "__rid__"]
        has_rid = "__rid__" in reader.fieldnames
        if schema is None:
            schema = Schema(Attribute(name=f, dtype=str) for f in header)
        relation = Relation(name or path.stem, schema)
        for record in reader:
            values = {
                attr.name: _coerce(record.get(attr.name), attr.dtype)
                for attr in schema
            }
            rid = int(record["__rid__"]) if has_rid else None
            relation.insert(values, sensitive=sensitive, rid=rid)
    return relation


def _coerce(raw: Optional[str], dtype: type) -> object:
    """Convert a raw CSV string to the schema's dtype."""
    if raw is None or raw == "":
        return None
    if dtype is str:
        return raw
    if dtype is int:
        return int(raw)
    if dtype is float:
        return float(raw)
    if dtype is bool:
        return raw.strip().lower() in {"1", "true", "yes"}
    return raw


def round_trip_equal(first: Relation, second: Relation) -> bool:
    """Check that two relations contain the same rows (ignoring order).

    Utility used by tests to verify CSV round-trips.
    """
    if first.schema.names != second.schema.names:
        return False
    left = sorted(map(_row_key, first.to_dicts()))
    right = sorted(map(_row_key, second.to_dicts()))
    return left == right


def _row_key(values: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in values.items()))
