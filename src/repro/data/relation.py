"""In-memory relations (tables) used as the storage substrate.

The cloud in the paper is a conventional DBMS; for the reproduction we model
relations as ordered collections of rows.  Rows keep a stable ``rid`` (the
``t_i`` identifiers of the paper's figures), which is what an adversary
observes when encrypted tuples are returned: the *address* of the tuple, not
its content.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError, UnknownAttributeError


@dataclass(frozen=True)
class Row:
    """A single tuple of a relation.

    Attributes
    ----------
    rid:
        Stable row identifier, unique within its relation.  This is the
        "tuple address" the adversary observes for encrypted rows.
    values:
        Mapping from attribute name to value.
    sensitive:
        Row-level sensitivity flag assigned by the DB owner's policy.
    """

    rid: int
    values: Mapping[str, object]
    sensitive: bool = False

    def __getitem__(self, attribute: str) -> object:
        try:
            return self.values[attribute]
        except KeyError:
            raise UnknownAttributeError(
                f"row {self.rid} has no attribute {attribute!r}"
            ) from None

    def get(self, attribute: str, default: object = None) -> object:
        return self.values.get(attribute, default)

    def project(self, attributes: Sequence[str]) -> "Row":
        """Return a copy of the row restricted to ``attributes``."""
        return Row(
            rid=self.rid,
            values={name: self[name] for name in attributes},
            sensitive=self.sensitive,
        )

    def with_sensitivity(self, sensitive: bool) -> "Row":
        """Return a copy of the row with the sensitivity flag replaced."""
        return Row(rid=self.rid, values=dict(self.values), sensitive=sensitive)

    def as_dict(self) -> Dict[str, object]:
        return dict(self.values)


class Relation:
    """A named, schema-validated, ordered collection of :class:`Row` objects.

    The class intentionally provides only the operations the reproduction
    needs: insertion, scanning, selection by predicate or by value, projection,
    and simple statistics (value frequencies) that feed the DB-owner metadata
    and the adversary's auxiliary knowledge.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row] = (),
        validate: bool = True,
    ):
        self.name = name
        self.schema = schema
        self._rows: List[Row] = []
        self._by_rid: Dict[int, Row] = {}
        self._rid_counter = itertools.count()
        for row in rows:
            self._add_row(row, validate=validate)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema,
        dicts: Iterable[Mapping[str, object]],
        sensitive: bool = False,
        validate: bool = True,
    ) -> "Relation":
        """Build a relation from plain dictionaries, assigning fresh rids."""
        relation = cls(name, schema)
        for values in dicts:
            relation.insert(values, sensitive=sensitive, validate=validate)
        return relation

    def _next_rid(self) -> int:
        rid = next(self._rid_counter)
        while rid in self._by_rid:
            rid = next(self._rid_counter)
        return rid

    def _add_row(self, row: Row, validate: bool = True) -> None:
        if validate:
            self.schema.validate_row(dict(row.values))
        if row.rid in self._by_rid:
            raise SchemaError(f"duplicate rid {row.rid} in relation {self.name!r}")
        self._rows.append(row)
        self._by_rid[row.rid] = row

    def insert(
        self,
        values: Mapping[str, object],
        sensitive: bool = False,
        rid: Optional[int] = None,
        validate: bool = True,
    ) -> Row:
        """Insert a new row and return it.

        When ``rid`` is omitted a fresh identifier is assigned.
        """
        if rid is None:
            rid = self._next_rid()
        row = Row(rid=rid, values=dict(values), sensitive=sensitive)
        self._add_row(row, validate=validate)
        return row

    def extend(
        self,
        dicts: Iterable[Mapping[str, object]],
        sensitive: bool = False,
        validate: bool = True,
    ) -> List[Row]:
        """Insert many rows at once; returns the created rows."""
        return [self.insert(d, sensitive=sensitive, validate=validate) for d in dicts]

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, rid: object) -> bool:
        return rid in self._by_rid

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self)} rows, schema={self.schema!r})"

    # -- access -----------------------------------------------------------------
    @property
    def rows(self) -> Tuple[Row, ...]:
        return tuple(self._rows)

    @property
    def rids(self) -> Tuple[int, ...]:
        return tuple(row.rid for row in self._rows)

    def row(self, rid: int) -> Row:
        try:
            return self._by_rid[rid]
        except KeyError:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no row with rid {rid}"
            ) from None

    # -- relational operators ----------------------------------------------------
    def scan(self) -> Iterator[Row]:
        """Full scan of the relation (a generator over rows)."""
        return iter(self._rows)

    def select(self, predicate: Callable[[Row], bool]) -> List[Row]:
        """Return the rows for which ``predicate(row)`` is true."""
        return [row for row in self._rows if predicate(row)]

    def select_equals(self, attribute: str, value: object) -> List[Row]:
        """Selection ``attribute = value`` (the paper's selection queries)."""
        self.schema[attribute]
        return [row for row in self._rows if row[attribute] == value]

    def select_in(self, attribute: str, values: Iterable[object]) -> List[Row]:
        """Selection ``attribute IN values`` — the shape QB bins produce."""
        self.schema[attribute]
        wanted = set(values)
        return [row for row in self._rows if row[attribute] in wanted]

    def project(self, attributes: Sequence[str]) -> "Relation":
        """Return a new relation restricted to ``attributes``."""
        projected_schema = self.schema.project(attributes)
        projected = Relation(f"{self.name}_proj", projected_schema)
        for row in self._rows:
            projected._add_row(row.project(attributes), validate=False)
        return projected

    def filter_new(self, name: str, predicate: Callable[[Row], bool]) -> "Relation":
        """Return a new relation containing the rows matching ``predicate``.

        Row identifiers are preserved so the sensitive/non-sensitive
        partitions keep the original ``t_i`` addresses (as in Figure 2).
        """
        result = Relation(name, self.schema)
        for row in self._rows:
            if predicate(row):
                result._add_row(row, validate=False)
        return result

    # -- statistics ----------------------------------------------------------------
    def value_counts(self, attribute: str) -> Counter:
        """Frequency of each distinct value of ``attribute``.

        This is exactly the metadata the DB owner stores ("searchable values
        and their frequency counts") and part of the adversary's auxiliary
        knowledge for the non-sensitive relation.
        """
        self.schema[attribute]
        return Counter(row[attribute] for row in self._rows)

    def distinct_values(self, attribute: str) -> List[Hashable]:
        """Distinct values of ``attribute`` in first-appearance order."""
        self.schema[attribute]
        seen: Dict[Hashable, None] = {}
        for row in self._rows:
            seen.setdefault(row[attribute], None)
        return list(seen)

    def estimated_size_bytes(self, bytes_per_value: int = 25) -> int:
        """A crude size estimate used by the network/cost model."""
        return len(self._rows) * len(self.schema) * bytes_per_value

    def to_dicts(self) -> List[Dict[str, object]]:
        """Materialise the relation as a list of plain dictionaries."""
        return [row.as_dict() for row in self._rows]


def union_rows(*row_groups: Iterable[Row]) -> List[Row]:
    """Union row groups by rid, preserving first-seen order.

    Used by ``qmerge``: the final answer of a partitioned query is the union
    of the rows returned by the sensitive and the non-sensitive sub-queries.
    """
    seen: Dict[int, Row] = {}
    for group in row_groups:
        for row in group:
            seen.setdefault(row.rid, row)
    return list(seen.values())
