"""The trusted DB-owner façade.

:class:`DBOwner` is the highest-level API of the library.  It wires together
the pieces a real deployment would need:

1. partition the relation under a :class:`SensitivityPolicy`;
2. pick (or accept) a cryptographic scheme per searchable attribute;
3. run QB setup (bin creation, encryption, fake-tuple padding, outsourcing);
4. answer selection queries by rewriting them through the bins and merging
   the results;
5. optionally audit the cloud's recorded views against the partitioned data
   security definition.

Example
-------
>>> from repro.owner import DBOwner
>>> from repro.workloads.employee import build_employee_relation, employee_policy
>>> owner = DBOwner(build_employee_relation(), employee_policy())
>>> owner.outsource("EId")
>>> [row["LastName"] for row in owner.query("EId", "E259")]
['Williams', 'Williams']
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.auditor import PartitionedSecurityAuditor, SecurityReport
from repro.cloud.lifecycle import FleetLifecycleManager
from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.server import CloudServer
from repro.core.engine import ExecutionTrace, QueryBinningEngine
from repro.crypto.base import EncryptedSearchScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import PartitionResult, SensitivityPolicy, partition_relation
from repro.data.relation import Relation, Row
from repro.exceptions import ConfigurationError, QueryError
from repro.owner.keystore import KeyStore

SchemeFactory = Callable[[], EncryptedSearchScheme]


class DBOwner:
    """The trusted party that owns the data and the keys."""

    def __init__(
        self,
        relation: Relation,
        policy: SensitivityPolicy,
        keystore: Optional[KeyStore] = None,
        scheme_factory: Optional[SchemeFactory] = None,
        cloud: Optional[CloudServer] = None,
        permutation_seed: Optional[int] = None,
        num_clouds: Optional[int] = None,
        shard_policy: str = "hash",
        shard_max_workers: Optional[int] = None,
        replication_factor: int = 1,
        storage_backend: str = "memory",
        storage_dir: Optional[str] = None,
    ):
        """``num_clouds`` (≥2) outsources every attribute to a sharded
        :class:`MultiCloud` fleet of that size in addition to the reference
        server, unlocking ``execute_workload(..., placement="sharded")``;
        ``shard_policy`` picks how bins map to members (``"hash"`` or
        ``"range"``) and ``shard_max_workers`` bounds the fleet's service
        threads (default: one per member).  ``replication_factor`` (≥1, at
        most ``num_clouds - 1``) stores each sensitive bin's slice on that
        many members so sharded execution survives member failures; replica
        placement respects the non-collusion rules (a bin's replica never
        lands on a member serving its paired cleartext traffic)."""
        self.relation = relation
        self.policy = policy
        self.keystore = keystore or KeyStore()
        #: every cloud-side store this owner creates — the reference server,
        #: per-attribute servers, fleet members — uses this storage engine
        #: (``"memory"`` or ``"sqlite"``; see :mod:`repro.cloud.storage`).
        self._storage_backend = storage_backend
        self._storage_dir = storage_dir
        self.cloud = cloud or CloudServer(
            storage_backend=storage_backend, storage_dir=storage_dir
        )
        self._scheme_factory = scheme_factory
        self._permutation_seed = permutation_seed
        self._num_clouds = num_clouds
        self._shard_policy = shard_policy
        self._shard_max_workers = shard_max_workers
        self._replication_factor = replication_factor
        self.partition: PartitionResult = partition_relation(relation, policy)
        self._engines: Dict[str, QueryBinningEngine] = {}
        self._schemes: Dict[str, EncryptedSearchScheme] = {}
        self._multi_clouds: Dict[str, MultiCloud] = {}
        #: guards the owner's own structural state — the engine/scheme/fleet
        #: registries and the shared relation object mutated by inserts.
        #: Queries deliberately run outside it (each engine has its own
        #: lock), so one attribute's slow workload never blocks another's.
        self._lock = threading.RLock()
        self._closed = False

    # -- setup ------------------------------------------------------------------
    def _make_scheme(self, attribute: str) -> EncryptedSearchScheme:
        if self._scheme_factory is not None:
            return self._scheme_factory()
        return NonDeterministicScheme(key=self.keystore.scheme_key(attribute))

    def outsource(
        self,
        attribute: str,
        scheme: Optional[EncryptedSearchScheme] = None,
        add_fake_tuples: bool = True,
    ) -> QueryBinningEngine:
        """Run QB setup for ``attribute`` and outsource both partitions.

        Returns the engine, which is also cached so subsequent
        :meth:`query` calls for the attribute reuse it.
        """
        with self._lock:
            return self._outsource_locked(attribute, scheme, add_fake_tuples)

    def _outsource_locked(
        self,
        attribute: str,
        scheme: Optional[EncryptedSearchScheme],
        add_fake_tuples: bool,
    ) -> QueryBinningEngine:
        if attribute in self._engines:
            return self._engines[attribute]
        chosen_scheme = scheme or self._make_scheme(attribute)
        rng = (
            random.Random(self._permutation_seed)
            if self._permutation_seed is not None
            else None
        )
        # Each attribute gets its own cloud-side store: a deployment would
        # keep one encrypted copy of the relation with per-attribute search
        # tags, but separating the stores keeps the per-attribute adversarial
        # views and token spaces independent in the simulation.
        attribute_cloud = self.cloud if not self._engines else CloudServer(
            name=f"{self.cloud.name}/{attribute}",
            storage_backend=self._storage_backend,
            storage_dir=self._storage_dir,
        )
        # Each attribute likewise gets its own fleet: sharding is a function
        # of the attribute's bin layout, so fleets cannot be shared.  Members
        # mirror the reference server's index configuration so fleet and
        # reference serve requests through the same search paths.
        multi_cloud = (
            MultiCloud(
                self._num_clouds,
                use_indexes=attribute_cloud.use_indexes,
                use_encrypted_indexes=attribute_cloud.use_encrypted_indexes,
                storage_backend=self._storage_backend,
                storage_dir=self._storage_dir,
            )
            if self._num_clouds is not None
            else None
        )
        engine = QueryBinningEngine(
            partition=self.partition,
            attribute=attribute,
            scheme=chosen_scheme,
            cloud=attribute_cloud,
            add_fake_tuples=add_fake_tuples,
            rng=rng,
            multi_cloud=multi_cloud,
            shard_policy=self._shard_policy,
            shard_max_workers=self._shard_max_workers,
            replication_factor=self._replication_factor,
        )
        engine.setup()
        self._engines[attribute] = engine
        self._schemes[attribute] = chosen_scheme
        if multi_cloud is not None:
            self._multi_clouds[attribute] = multi_cloud
        return engine

    def engine_for(self, attribute: str) -> QueryBinningEngine:
        try:
            return self._engines[attribute]
        except KeyError:
            raise ConfigurationError(
                f"attribute {attribute!r} has not been outsourced yet; call outsource()"
            ) from None

    # -- querying -----------------------------------------------------------------
    def query(self, attribute: str, value: object) -> List[Row]:
        """Answer ``SELECT * WHERE attribute = value`` through QB."""
        return self.engine_for(attribute).query(value)

    def query_with_trace(
        self, attribute: str, value: object
    ) -> Tuple[List[Row], ExecutionTrace]:
        return self.engine_for(attribute).query_with_trace(value)

    def execute_workload(
        self,
        attribute: str,
        values: Iterable[object],
        batched: bool = True,
        placement: Optional[str] = None,
    ) -> List[ExecutionTrace]:
        """Run a workload; ``batched=False`` forces per-query execution
        (identical observables, but no cross-query retrieval deduplication —
        use it when timing individual queries).  ``placement="sharded"``
        fans the workload out across the attribute's :class:`MultiCloud`
        fleet (requires ``num_clouds`` at construction)."""
        return self.engine_for(attribute).execute_workload(
            values, batched=batched, placement=placement
        )

    def multi_cloud_for(self, attribute: str) -> MultiCloud:
        """The sharded fleet serving ``attribute`` (requires ``num_clouds``)."""
        try:
            return self._multi_clouds[attribute]
        except KeyError:
            raise ConfigurationError(
                f"attribute {attribute!r} has no sharded fleet; construct the "
                "owner with num_clouds >= 2 and outsource the attribute first"
            ) from None

    def lifecycle_for(self, attribute: str) -> "FleetLifecycleManager":
        """The lifecycle manager for ``attribute``'s fleet (membership ops).

        Convenience pass-through to
        :meth:`QueryBinningEngine.fleet_lifecycle`; router changes the
        manager performs are adopted by the attribute's engine immediately.
        """
        return self.engine_for(attribute).fleet_lifecycle()

    def insert(self, values: Dict[str, object]) -> None:
        """Insert a new row, classifying it under the owner's policy."""
        with self._lock:
            probe = Row(rid=-1, values=dict(values), sensitive=False)
            sensitive = self.policy.is_sensitive_row(probe)
            self.relation.insert(values, sensitive=sensitive, validate=False)
            for engine in self._engines.values():
                engine.insert(values, sensitive=sensitive)

    def insert_many(self, rows: Sequence[Dict[str, object]]) -> None:
        """Insert many rows with one batched call per outsourced attribute.

        Classifies every row under the owner's policy, then forwards the
        whole batch to each engine's
        :meth:`~repro.core.engine.QueryBinningEngine.insert_many`, which
        encrypts and ships the sensitive rows as one batch instead of one
        RPC-and-cache-flush per row.  Stored state is identical to calling
        :meth:`insert` per row, in order.
        """
        with self._lock:
            classified: List[Tuple[Dict[str, object], bool]] = []
            for values in rows:
                probe = Row(rid=-1, values=dict(values), sensitive=False)
                sensitive = self.policy.is_sensitive_row(probe)
                self.relation.insert(values, sensitive=sensitive, validate=False)
                classified.append((values, sensitive))
            for engine in self._engines.values():
                engine.insert_many(classified)

    # -- lifecycle ------------------------------------------------------------------
    def close(self) -> None:
        """Release every cloud-side resource this owner created.

        Closes each outsourced attribute's fleet (worker processes under the
        process backend) and cloud server (a SQLite backend's database
        file), then the reference server.  Idempotent; the service layer's
        graceful shutdown drains in-flight work before calling this.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for fleet in self._multi_clouds.values():
                fleet.close()
            for engine in self._engines.values():
                engine.cloud.close()
            self.cloud.close()

    def __enter__(self) -> "DBOwner":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- security auditing ----------------------------------------------------------
    def audit(self, attribute: str, full_domain_queried: bool = False) -> SecurityReport:
        """Audit the cloud's recorded views for ``attribute``'s engine."""
        engine = self.engine_for(attribute)
        if engine.metadata is None or engine.layout is None:
            raise QueryError("engine is not set up")
        auditor = PartitionedSecurityAuditor(
            num_non_sensitive_values=engine.metadata.num_non_sensitive_values,
            layout=engine.layout,
            sensitive_counts=engine.metadata.sensitive_counts,
        )
        return auditor.audit(engine.cloud.view_log, full_domain_queried=full_domain_queried)

    # -- introspection -----------------------------------------------------------------
    def searchable_attributes(self) -> Tuple[str, ...]:
        return self.relation.schema.searchable_names

    def metadata_size_bytes(self) -> int:
        """Total owner-side metadata footprint across outsourced attributes."""
        return sum(
            engine.metadata.estimated_size_bytes()
            for engine in self._engines.values()
            if engine.metadata is not None
        )
