"""Key management for the DB owner.

A single master key is derived (per purpose and per attribute) into the keys
the cryptographic schemes and the secret bin permutation need.  Keys never
leave the owner; the cloud only ever sees ciphertexts and search tokens.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.primitives import SecretKey


class KeyStore:
    """Derives and caches purpose-specific keys from one master key."""

    def __init__(self, master_key: Optional[SecretKey] = None):
        self._master = master_key or SecretKey.generate()
        self._cache: Dict[str, SecretKey] = {}

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "KeyStore":
        return cls(SecretKey.from_passphrase(passphrase))

    def key_for(self, purpose: str) -> SecretKey:
        """A deterministic sub-key for ``purpose`` (e.g. ``"scheme/EId"``)."""
        if purpose not in self._cache:
            self._cache[purpose] = self._master.derive(purpose)
        return self._cache[purpose]

    def scheme_key(self, attribute: str) -> SecretKey:
        """The encryption key used by the search scheme for ``attribute``."""
        return self.key_for(f"scheme/{attribute}")

    def permutation_key(self, attribute: str) -> SecretKey:
        """The secret-permutation key for ``attribute``'s bin creation."""
        return self.key_for(f"permutation/{attribute}")

    def rotate(self) -> None:
        """Forget all derived keys and the master key (e.g. on compromise)."""
        self._master = SecretKey.generate()
        self._cache.clear()
