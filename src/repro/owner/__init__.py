"""The trusted DB owner.

The owner partitions the relation, manages keys, runs QB setup for each
searchable attribute, rewrites queries, and merges results.  The
:class:`~repro.owner.db_owner.DBOwner` façade is the highest-level entry point
of the library — the examples use it almost exclusively.
"""

from repro.owner.keystore import KeyStore
from repro.owner.db_owner import DBOwner

__all__ = ["KeyStore", "DBOwner"]
