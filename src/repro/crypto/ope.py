"""A simple order-preserving encoder (OPE).

The paper cites order-preserving encryption as the canonical example of a
technique that trades security for functionality: ciphertext order equals
plaintext order, which — combined with deterministic encryption and low-entropy
domains — lets an adversary recover the data by frequency/order analysis
(refs [11], [12]).

This module implements a keyed, stateful, order-preserving *encoding* over an
explicit domain: each plaintext is mapped to a code drawn from monotonically
increasing pseudo-random gaps.  It is used only to demonstrate attacks and to
contrast with QB; it is **not** a secure primitive and says so loudly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence

from repro.crypto.primitives import SecretKey, encode_value, prf_int
from repro.exceptions import CryptoError


class OrderPreservingEncoder:
    """Keyed order-preserving encoding over a fixed, sortable domain.

    Parameters
    ----------
    key:
        Secret key; determines the pseudo-random gaps.
    max_gap:
        Upper bound (exclusive) for the random gap inserted between
        consecutive codes.  Larger gaps hide less about value spacing but the
        scheme remains order-revealing by construction.
    """

    def __init__(self, key: SecretKey | None = None, max_gap: int = 1 << 16):
        if max_gap < 2:
            raise CryptoError("max_gap must be at least 2")
        self._key = key or SecretKey.generate()
        self._max_gap = max_gap
        self._encode_map: Dict[object, int] = {}
        self._decode_sorted: List[tuple] = []  # (code, value) sorted by code
        self._domain: List[object] = []

    @property
    def is_built(self) -> bool:
        return bool(self._encode_map)

    def build(self, domain: Sequence[object]) -> None:
        """Assign codes to every value in ``domain`` (sorted ascending)."""
        values = sorted(set(domain))
        if not values:
            raise CryptoError("cannot build an OPE table over an empty domain")
        code = 0
        encode_map: Dict[object, int] = {}
        for value in values:
            gap = 1 + prf_int(self._key.material, b"ope|" + encode_value(value), self._max_gap)
            code += gap
            encode_map[value] = code
        self._encode_map = encode_map
        self._decode_sorted = sorted((c, v) for v, c in encode_map.items())
        self._domain = values

    def encode(self, value: object) -> int:
        """Order-preserving code of ``value``; raises for unknown values."""
        try:
            return self._encode_map[value]
        except KeyError:
            raise CryptoError(f"value {value!r} is not in the OPE domain") from None

    def decode(self, code: int) -> object:
        """Exact inverse of :meth:`encode`."""
        index = bisect_left(self._decode_sorted, (code, ))
        if index < len(self._decode_sorted) and self._decode_sorted[index][0] == code:
            return self._decode_sorted[index][1]
        raise CryptoError(f"code {code} does not correspond to any domain value")

    def encode_many(self, values: Sequence[object]) -> List[int]:
        return [self.encode(value) for value in values]

    def order_preserved(self) -> bool:
        """Sanity check: encoding is strictly monotone over the domain."""
        codes = [self._encode_map[value] for value in self._domain]
        return all(a < b for a, b in zip(codes, codes[1:]))
