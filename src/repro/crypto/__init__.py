"""Cryptographic substrates used by the reproduction.

The paper layers Query Binning on top of *existing* cryptographic search
techniques.  This package implements functional equivalents of the families
the paper discusses:

* non-deterministic (probabilistic) encryption — AES-GCM (`nondeterministic`),
* deterministic encryption — HMAC-based (`deterministic`),
* order-preserving encoding — for attack demonstrations (`ope`),
* searchable symmetric encryption — PRF-token search (`searchable`),
* Arx-style indexable encryption — value‖counter ciphertexts (`arx_index`),
* secret sharing — Shamir and additive shares over a prime field
  (`secret_sharing`),
* additively homomorphic encryption — Paillier (`homomorphic`),
* distributed point functions — two-party GGM-style DPF (`dpf`).

All schemes expose a common :class:`~repro.crypto.base.EncryptedSearchScheme`
interface so the cloud server and the QB engine can be parameterised by the
underlying technique, exactly as the paper intends ("QB ... can be built on
top of any cryptographic technique").
"""

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import SecretKey, constant_time_equals, prf, random_bytes
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.ope import OrderPreservingEncoder
from repro.crypto.secret_sharing import (
    AdditiveSecretSharing,
    ShamirSecretSharing,
    SecretSharingScheme,
)
from repro.crypto.homomorphic import PaillierKeyPair, PaillierScheme
from repro.crypto.dpf import DistributedPointFunction
from repro.crypto.oram import ObliviousRowStore, PathORAM
from repro.crypto.pir import TwoServerPIR

__all__ = [
    "EncryptedRow",
    "EncryptedSearchScheme",
    "LeakageProfile",
    "SearchToken",
    "SecretKey",
    "prf",
    "random_bytes",
    "constant_time_equals",
    "NonDeterministicScheme",
    "DeterministicScheme",
    "SSEScheme",
    "ArxIndexScheme",
    "OrderPreservingEncoder",
    "ShamirSecretSharing",
    "AdditiveSecretSharing",
    "SecretSharingScheme",
    "PaillierKeyPair",
    "PaillierScheme",
    "DistributedPointFunction",
    "PathORAM",
    "ObliviousRowStore",
    "TwoServerPIR",
]
