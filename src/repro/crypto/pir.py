"""Two-server private information retrieval (PIR) built on the DPF.

The paper lists PIR among the access-pattern-hiding techniques that QB can be
combined with.  This module implements the classic two-server PIR from
distributed point functions: the client secret-shares the point function
``f_{α,1}`` between two non-colluding servers, each server returns the inner
product of its share vector with the database, and the client adds the two
responses to obtain record α — while neither server learns anything about α.

Records are arbitrary byte strings; they are transported as chunks of
7 bytes so each chunk fits comfortably below the DPF's 61-bit output modulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.dpf import DPFKey, DistributedPointFunction, OUTPUT_MODULUS
from repro.exceptions import CryptoError

_CHUNK_BYTES = 7


def _pad_length(record_size: int) -> int:
    """Number of chunks needed for records of ``record_size`` bytes."""
    return (record_size + _CHUNK_BYTES - 1) // _CHUNK_BYTES


def _encode_record(record: bytes, record_size: int) -> List[int]:
    """Split a record into fixed-size integer chunks (with length prefix)."""
    if len(record) > record_size:
        raise CryptoError(
            f"record of {len(record)} bytes exceeds the fixed record size {record_size}"
        )
    padded = record.ljust(record_size, b"\x00")
    return [
        int.from_bytes(padded[offset : offset + _CHUNK_BYTES], "big")
        for offset in range(0, record_size, _CHUNK_BYTES)
    ]


def _decode_record(chunks: Sequence[int], record_size: int) -> bytes:
    blob = b"".join(
        chunk.to_bytes(min(_CHUNK_BYTES, record_size - index * _CHUNK_BYTES), "big")
        for index, chunk in enumerate(chunks)
    )
    return blob


@dataclass
class PIRServer:
    """One of the two non-colluding servers: holds the full (public-to-it)
    encoded database and answers DPF-share queries."""

    encoded_records: List[List[int]]
    domain_bits: int

    def answer(self, key: DPFKey) -> List[int]:
        """Inner product of the DPF share vector with every chunk column."""
        dpf = DistributedPointFunction(self.domain_bits)
        shares = dpf.evaluate_full(key)
        num_chunks = len(self.encoded_records[0]) if self.encoded_records else 0
        response = [0] * num_chunks
        for index, record_chunks in enumerate(self.encoded_records):
            share = shares[index]
            if share == 0:
                continue
            for chunk_index, chunk in enumerate(record_chunks):
                response[chunk_index] = (
                    response[chunk_index] + share * chunk
                ) % OUTPUT_MODULUS
        return response


class TwoServerPIR:
    """Client-side orchestration of the two-server DPF-based PIR."""

    def __init__(self, records: Sequence[bytes], record_size: Optional[int] = None):
        if not records:
            raise CryptoError("the PIR database must contain at least one record")
        self.record_size = record_size or max(len(record) for record in records)
        if self.record_size < 1:
            raise CryptoError("records must be at least one byte long")
        if max(len(record) for record in records) > self.record_size:
            raise CryptoError("a record exceeds the declared record size")
        self.num_records = len(records)
        self.domain_bits = max(1, (self.num_records - 1).bit_length())
        encoded = [_encode_record(record, self.record_size) for record in records]
        # Pad the domain to a power of two with all-zero records.
        zero = [0] * _pad_length(self.record_size)
        while len(encoded) < (1 << self.domain_bits):
            encoded.append(list(zero))
        self.servers: Tuple[PIRServer, PIRServer] = (
            PIRServer(encoded_records=encoded, domain_bits=self.domain_bits),
            PIRServer(encoded_records=encoded, domain_bits=self.domain_bits),
        )
        self._dpf = DistributedPointFunction(self.domain_bits)
        self.queries_issued = 0

    def retrieve(self, index: int) -> bytes:
        """Privately retrieve record ``index``."""
        if not 0 <= index < self.num_records:
            raise CryptoError(
                f"record index {index} outside the database [0, {self.num_records})"
            )
        key0, key1 = self._dpf.generate(alpha=index, beta=1)
        response0 = self.servers[0].answer(key0)
        response1 = self.servers[1].answer(key1)
        chunks = [
            (a + b) % OUTPUT_MODULUS for a, b in zip(response0, response1)
        ]
        self.queries_issued += 1
        return _decode_record(chunks, self.record_size)

    def retrieve_many(self, indexes: Sequence[int]) -> List[bytes]:
        """Retrieve several records (one independent PIR query each)."""
        return [self.retrieve(index) for index in indexes]
