"""Paillier additively-homomorphic encryption (pure Python).

Fully/partially homomorphic encryption is the paper's running example of a
technique with "strong security guarantees [but] high computational overhead"
(§I).  The reproduction implements Paillier — additively homomorphic, which is
sufficient for the selection-by-encrypted-difference protocol used in the
baselines — with textbook key generation, encryption, decryption, homomorphic
addition, and scalar multiplication.

Key sizes default to 512-bit moduli so the test suite runs quickly; the
benchmark harness uses the same keys because the *relative* cost (γ, β) is
what the paper's model consumes.
"""

from __future__ import annotations

import math
import pickle
import secrets
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    encode_value,
    prf,
)
from repro.data.relation import Row
from repro.exceptions import CryptoError

_SMALL_PRIMES = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67]


def _is_probable_prime(candidate: int, rounds: int = 20) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    if candidate in (2, 3):
        return True
    if candidate % 2 == 0:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(candidate - 3) + 2
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    """Generate a random prime of the requested bit length."""
    if bits < 8:
        raise CryptoError("prime size too small")
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int
    g: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    def encrypt(self, plaintext: int) -> int:
        """Probabilistic encryption of ``plaintext`` (mod n)."""
        plaintext %= self.n
        while True:
            r = secrets.randbelow(self.n)
            if r > 0 and math.gcd(r, self.n) == 1:
                break
        n2 = self.n_squared
        return (pow(self.g, plaintext, n2) * pow(r, self.n, n2)) % n2

    def add(self, first: int, second: int) -> int:
        """Homomorphic addition: Enc(a) ⊕ Enc(b) = Enc(a + b)."""
        return (first * second) % self.n_squared

    def add_plain(self, ciphertext: int, plaintext: int) -> int:
        """Enc(a) ⊕ b = Enc(a + b)."""
        return (ciphertext * pow(self.g, plaintext % self.n, self.n_squared)) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Enc(a) ⊗ k = Enc(a * k)."""
        return pow(ciphertext, scalar % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        n = self.public.n
        x = pow(ciphertext, self.lam, self.public.n_squared)
        l_value = (x - 1) // n
        return (l_value * self.mu) % n


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    private: PaillierPrivateKey

    @classmethod
    def generate(cls, bits: int = 512) -> "PaillierKeyPair":
        """Generate a key pair with an RSA-style modulus of ``bits`` bits."""
        half = bits // 2
        while True:
            p = _random_prime(half)
            q = _random_prime(half)
            if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
                break
        n = p * q
        lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
        g = n + 1
        x = pow(g, lam, n * n)
        l_value = (x - 1) // n
        mu = pow(l_value, -1, n)
        public = PaillierPublicKey(n=n, g=g)
        private = PaillierPrivateKey(public=public, lam=lam, mu=mu)
        return cls(public=public, private=private)


class PaillierScheme(EncryptedSearchScheme):
    """Selection over Paillier-encrypted value fingerprints.

    The searchable attribute value of each row is fingerprinted (PRF into the
    plaintext space) and stored Paillier-encrypted.  To search for ``w``, the
    owner sends ``Enc(-fp(w))``; the cloud homomorphically adds it to every
    stored fingerprint ciphertext and returns the (re-randomised) differences;
    the owner decrypts and keeps the rows whose difference is zero.  As with
    every strong scheme in the paper's model, the cloud touches every row.

    The simulated protocol is collapsed into :meth:`search` for convenience;
    ``homomorphic_ops`` counts the cloud-side operations for cost accounting.
    """

    name = "paillier"
    # search() increments homomorphic_ops — not safe to run from several
    # cloud servers sharing this object at once.
    concurrent_search_safe = False

    def __init__(self, keypair: PaillierKeyPair | None = None, key: SecretKey | None = None):
        self._keypair = keypair or PaillierKeyPair.generate(bits=256)
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._fp_key = self._key.derive("fingerprint")
        self._value_ciphertexts: dict[int, int] = {}
        self.homomorphic_ops = 0

    @property
    def public_key(self) -> PaillierPublicKey:
        return self._keypair.public

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,
            leaks_order=False,
            leaks_access_pattern=False,
            deterministic=False,
        )

    def _fingerprint(self, attribute: str, value: object) -> int:
        digest = prf(self._fp_key.material, attribute.encode() + b"|" + encode_value(value))
        return int.from_bytes(digest[:8], "big")

    # -- owner side ------------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            fingerprint = self._fingerprint(attribute, row[attribute])
            self._value_ciphertexts[row.rid] = self._keypair.public.encrypt(fingerprint)
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=b"",
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        tokens: List[SearchToken] = []
        for value in values:
            fingerprint = self._fingerprint(attribute, value)
            negative = self._keypair.public.encrypt(-fingerprint)
            tokens.append(SearchToken(payload=pickle.dumps(negative)))
        return tokens

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    # -- simulated cloud + owner protocol ------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        matches: List[EncryptedRow] = []
        negatives = [pickle.loads(token.payload) for token in tokens]
        for row in stored:
            value_ciphertext = self._value_ciphertexts.get(row.rid)
            if value_ciphertext is None:
                continue
            for negative in negatives:
                difference = self._keypair.public.add(value_ciphertext, negative)
                self.homomorphic_ops += 1
                if self._keypair.private.decrypt(difference) == 0:
                    matches.append(row)
                    break
        return matches
