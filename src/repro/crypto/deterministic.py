"""Deterministic encryption (the CryptDB "DET onion" analogue).

Every occurrence of a value produces the same search tag, so the cloud can
build an equality index and answer selections without owner help — but the
ciphertexts leak the full frequency histogram of the attribute, the classic
weakness exploited by Naveed et al.'s inference attacks (paper refs [11],
[12]).  The reproduction uses this scheme as the *victim* in frequency-count
attack demonstrations and to show that QB removes the signal.
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    encode_value,
    encrypt_many,
    prf,
    prf_many,
)
from repro.data.relation import Row


class DeterministicScheme(EncryptedSearchScheme):
    """HMAC-based deterministic tagging plus probabilistic row payloads.

    The row payload itself is still probabilistically encrypted (so the cloud
    cannot read non-searched attributes); determinism is confined to the
    per-attribute search tag, mirroring how practical systems deploy DET
    encryption on selected columns.
    """

    name = "deterministic"

    #: Tags are a deterministic function of (attribute, value), so the cloud
    #: can serve searches from an exact-match tag index; the base-class
    #: ``index_key`` / ``token_index_key`` defaults (search tag / token
    #: payload) are exactly right.
    supports_tag_index = True

    #: Batched tagging/encryption/decryption; tags stay bit-identical to the
    #: scalar path (HMAC is deterministic) — the parity suite pins it.
    supports_batch = True

    def __init__(self, key: SecretKey | None = None):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._tag_key = self._key.derive("tag")

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=True,
            leaks_order=False,
            leaks_access_pattern=True,
            deterministic=True,
        )

    def _tag(self, attribute: str, value: object) -> bytes:
        return prf(self._tag_key.material, attribute.encode() + b"|" + encode_value(value))

    def _tag_many(self, attribute: str, values: Sequence[object]) -> List[bytes]:
        """Batch :meth:`_tag`: one HMAC key schedule for the whole batch."""
        prefix = attribute.encode() + b"|"
        return prf_many(
            self._tag_key.material, [prefix + encode_value(value) for value in values]
        )

    # -- owner side -----------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return self._encrypt_rows_scalar(rows, attribute)
        self.batch_calls += 1
        rows = list(rows)
        payloads = [
            pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            for row in rows
        ]
        ciphertexts = encrypt_many(self._row_key, payloads)
        tags = self._tag_many(attribute, [row[attribute] for row in rows])
        return [
            EncryptedRow(rid=row.rid, ciphertext=ciphertext, search_tag=tag)
            for row, ciphertext, tag in zip(rows, ciphertexts, tags)
        ]

    def _encrypt_rows_scalar(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Scalar reference loop (parity baseline for the batch path)."""
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=self._tag(attribute, row[attribute]),
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return [SearchToken(payload=self._tag(attribute, value)) for value in values]
        self.batch_calls += 1
        return [
            SearchToken(payload=tag) for tag in self._tag_many(attribute, values)
        ]

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    def decrypt_rows_many(self, encrypted: Sequence[EncryptedRow]) -> List[Row]:
        if not self.use_batch:
            return super().decrypt_rows_many(encrypted)
        self.batch_calls += 1
        return self._decrypt_row_payloads(self._row_key, encrypted)

    # -- cloud side -------------------------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        wanted = {token.payload for token in tokens}
        return [row for row in stored if row.search_tag in wanted]
