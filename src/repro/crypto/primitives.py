"""Low-level cryptographic primitives shared by the schemes in this package.

The primitives are intentionally standard: HMAC-SHA256 as a PRF, a
Fisher-Yates keyed permutation for the secret value permutation QB requires
(Algorithm 1, line 2), and AES-GCM (when the ``cryptography`` package is
available) or an HMAC-derived stream cipher fallback for probabilistic
encryption.  The fallback keeps the library importable in constrained
environments; it is clearly marked and only used when AES is unavailable.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import secrets
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import CryptoError, IntegrityError

try:  # pragma: no cover - availability depends on the environment
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM

    _HAS_AESGCM = True
except Exception:  # pragma: no cover
    AESGCM = None  # type: ignore[assignment]
    _HAS_AESGCM = False


DEFAULT_KEY_BYTES = 32
NONCE_BYTES = 12


def random_bytes(length: int = DEFAULT_KEY_BYTES) -> bytes:
    """Cryptographically secure random bytes."""
    return secrets.token_bytes(length)


@dataclass(frozen=True)
class SecretKey:
    """A symmetric key with domain-separated sub-key derivation."""

    material: bytes

    @classmethod
    def generate(cls, length: int = DEFAULT_KEY_BYTES) -> "SecretKey":
        return cls(random_bytes(length))

    @classmethod
    def from_passphrase(cls, passphrase: str, salt: bytes = b"repro-qb") -> "SecretKey":
        """Derive a key from a passphrase (PBKDF2-HMAC-SHA256)."""
        material = hashlib.pbkdf2_hmac("sha256", passphrase.encode(), salt, 100_000)
        return cls(material)

    def derive(self, purpose: str) -> "SecretKey":
        """Derive an independent sub-key for ``purpose`` (domain separation).

        Derivations are memoised per instance: schemes derive the same
        ``"row"`` / ``"tag"`` sub-keys on every operation, and the fallback
        cipher re-derives ``"enc"`` / ``"mac"`` per row, so caching turns a
        per-row HMAC into a dict probe.  The cache never enters pickles
        (each side re-derives on demand) and never affects equality, which
        compares ``material`` only.
        """
        cache = self.__dict__.get("_derived")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_derived", cache)
        sub = cache.get(purpose)
        if sub is None:
            sub = SecretKey(prf(self.material, purpose.encode()))
            cache[purpose] = sub
        return sub

    def __getstate__(self):
        return {"material": self.material}

    def __setstate__(self, state):
        object.__setattr__(self, "material", state["material"])

    def __repr__(self) -> str:  # avoid leaking key material in logs
        return f"SecretKey(<{len(self.material)} bytes>)"


def prf(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 pseudo-random function."""
    return hmac.new(key, message, hashlib.sha256).digest()


def hmac_template(key: bytes) -> "hmac.HMAC":
    """A reusable HMAC-SHA256 object for ``key`` (no message absorbed yet).

    ``template.copy().update(message)`` evaluates the PRF without re-running
    the HMAC key schedule (two SHA-256 compressions of the padded key), which
    is the dominant per-call cost for short messages.  The copies produce
    digests bit-identical to :func:`prf`.
    """
    return hmac.new(key, digestmod=hashlib.sha256)


def prf_many(key: bytes, messages: Iterable[bytes]) -> List[bytes]:
    """HMAC-SHA256 over many messages under one key, amortising key setup.

    One key schedule for the whole batch; each message costs a state copy
    plus the digest over the message itself.  Output is element-wise
    identical to ``[prf(key, m) for m in messages]``.
    """
    copy = hmac.new(key, digestmod=hashlib.sha256).copy
    digests: List[bytes] = []
    append = digests.append
    for message in messages:
        mac = copy()
        mac.update(message)
        append(mac.digest())
    return digests


def prf_int(key: bytes, message: bytes, modulus: int) -> int:
    """PRF output reduced modulo ``modulus`` (used by keyed permutations)."""
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    return int.from_bytes(prf(key, message), "big") % modulus


def constant_time_equals(first: bytes, second: bytes) -> bool:
    """Constant-time byte comparison."""
    return hmac.compare_digest(first, second)


def encode_value(value: object) -> bytes:
    """Serialise an arbitrary (picklable) value for encryption or hashing.

    Strings and integers get a stable, canonical encoding so that tokens are
    reproducible across processes; other objects fall back to pickle.
    """
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return b"b:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f:" + repr(value).encode("ascii")
    if value is None:
        return b"n:"
    return b"p:" + pickle.dumps(value)


def decode_value(blob: bytes) -> object:
    """Inverse of :func:`encode_value`."""
    if len(blob) < 2 or blob[1:2] != b":":
        raise CryptoError("malformed encoded value")
    tag, payload = blob[:1], blob[2:]
    if tag == b"s":
        return payload.decode("utf-8")
    if tag == b"b":
        return payload == b"1"
    if tag == b"i":
        return int(payload)
    if tag == b"f":
        return float(payload)
    if tag == b"n":
        return None
    if tag == b"p":
        return pickle.loads(payload)
    raise CryptoError(f"unknown value encoding tag {tag!r}")


def keyed_permutation(items: Sequence[object], key: SecretKey) -> List[object]:
    """Deterministically permute ``items`` under ``key`` (Fisher-Yates).

    QB requires the DB owner to secretly permute the sensitive values before
    assigning them to bins so the adversary cannot recompute the layout from
    public value order (Algorithm 1, line 2 and footnote 4).
    """
    permuted = list(items)
    for i in range(len(permuted) - 1, 0, -1):
        j = prf_int(key.material, f"perm|{i}".encode(), i + 1)
        permuted[i], permuted[j] = permuted[j], permuted[i]
    return permuted


# ---------------------------------------------------------------------------
# Authenticated probabilistic encryption
# ---------------------------------------------------------------------------

#: Cached AESGCM instances per key material.  Constructing an ``AESGCM``
#: runs the AES key schedule; schemes encrypt and decrypt thousands of rows
#: under a handful of long-lived row keys, so the schedule is paid once per
#: key instead of once per row.  Bounded FIFO (dicts iterate in insertion
#: order) so pathological many-key workloads cannot grow it without limit.
_AESGCM_CACHE_MAX = 64
_aesgcm_cache: dict = {}


def _aesgcm_for(material: bytes):
    """The cached ``AESGCM`` instance for ``material`` (first 32 bytes)."""
    aes_key = material[:32]
    cipher = _aesgcm_cache.get(aes_key)
    if cipher is None:
        cipher = AESGCM(aes_key)
        if len(_aesgcm_cache) >= _AESGCM_CACHE_MAX:
            _aesgcm_cache.pop(next(iter(_aesgcm_cache)))
        _aesgcm_cache[aes_key] = cipher
    return cipher


def aead_encrypt(key: SecretKey, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Probabilistic authenticated encryption of ``plaintext``.

    Uses AES-GCM when available; otherwise an HMAC-SHA256 stream construction
    (CTR-style keystream + encrypt-then-MAC).  Ciphertexts embed the nonce so
    they are self-contained, and the two constructions are distinguished by a
    one-byte header.
    """
    nonce = random_bytes(NONCE_BYTES)
    if _HAS_AESGCM:
        ciphertext = _aesgcm_for(key.material).encrypt(nonce, plaintext, associated_data)
        return b"\x01" + nonce + ciphertext
    return b"\x02" + nonce + _fallback_encrypt(key, nonce, plaintext, associated_data)


def aead_decrypt(key: SecretKey, blob: bytes, associated_data: bytes = b"") -> bytes:
    """Decrypt and authenticate a ciphertext produced by :func:`aead_encrypt`."""
    if len(blob) < 1 + NONCE_BYTES:
        raise IntegrityError("ciphertext too short")
    header, nonce, body = blob[:1], blob[1 : 1 + NONCE_BYTES], blob[1 + NONCE_BYTES :]
    if header == b"\x01":
        if not _HAS_AESGCM:  # pragma: no cover - environment mismatch
            raise CryptoError("AES-GCM ciphertext but AES-GCM is unavailable")
        try:
            return _aesgcm_for(key.material).decrypt(nonce, body, associated_data)
        except Exception as exc:
            raise IntegrityError("AES-GCM authentication failed") from exc
    if header == b"\x02":
        return _fallback_decrypt(key, nonce, body, associated_data)
    raise CryptoError(f"unknown ciphertext header {header!r}")


def encrypt_many(
    key: SecretKey, plaintexts: Sequence[bytes], associated_data: bytes = b""
) -> List[bytes]:
    """Batch :func:`aead_encrypt`: one key schedule, one nonce draw.

    Ciphertexts are format-identical to the scalar path (header byte,
    embedded per-item nonce) — a batch-encrypted blob decrypts through
    either entry point.  The batch draws all nonces in a single
    ``os.urandom`` call and reuses the cached cipher object for every item.
    """
    plaintexts = list(plaintexts)
    if not plaintexts:
        return []
    nonces = os.urandom(NONCE_BYTES * len(plaintexts))
    out: List[bytes] = []
    append = out.append
    offset = 0
    if _HAS_AESGCM:
        encrypt = _aesgcm_for(key.material).encrypt
        for plaintext in plaintexts:
            nonce = nonces[offset : offset + NONCE_BYTES]
            offset += NONCE_BYTES
            append(b"\x01" + nonce + encrypt(nonce, plaintext, associated_data))
        return out
    for plaintext in plaintexts:  # sub-key derivations are memoised on `key`
        nonce = nonces[offset : offset + NONCE_BYTES]
        offset += NONCE_BYTES
        append(b"\x02" + nonce + _fallback_encrypt(key, nonce, plaintext, associated_data))
    return out


def decrypt_many(
    key: SecretKey, blobs: Sequence[bytes], associated_data: bytes = b""
) -> List[bytes]:
    """Batch :func:`aead_decrypt` under one key, amortising cipher setup.

    Element-wise identical (results *and* raised errors) to the scalar
    loop: the first malformed or tampered blob raises, exactly as the
    per-row path would at that position.
    """
    cipher = _aesgcm_for(key.material) if _HAS_AESGCM else None
    if cipher is not None and all(
        len(blob) >= 1 + NONCE_BYTES and blob[0] == 1 for blob in blobs
    ):
        # fast path: every blob is well-formed AES-GCM, so the per-blob
        # header dispatch collapses to one comprehension (this is the bin
        # decryption hot loop); the first tampered blob still raises the
        # same error the scalar path would at that position
        decrypt = cipher.decrypt
        try:
            return [
                decrypt(blob[1 : 1 + NONCE_BYTES], blob[1 + NONCE_BYTES :], associated_data)
                for blob in blobs
            ]
        except Exception as exc:
            raise IntegrityError("AES-GCM authentication failed") from exc
    out: List[bytes] = []
    append = out.append
    for blob in blobs:
        if len(blob) < 1 + NONCE_BYTES:
            raise IntegrityError("ciphertext too short")
        header = blob[:1]
        nonce = blob[1 : 1 + NONCE_BYTES]
        body = blob[1 + NONCE_BYTES :]
        if header == b"\x01":
            if cipher is None:  # pragma: no cover - environment mismatch
                raise CryptoError("AES-GCM ciphertext but AES-GCM is unavailable")
            try:
                append(cipher.decrypt(nonce, body, associated_data))
            except Exception as exc:
                raise IntegrityError("AES-GCM authentication failed") from exc
        elif header == b"\x02":
            append(_fallback_decrypt(key, nonce, body, associated_data))
        else:
            raise CryptoError(f"unknown ciphertext header {header!r}")
    return out


def _keystream(key: SecretKey, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(prf(key.material, b"stream|" + nonce + counter.to_bytes(8, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def _fallback_encrypt(
    key: SecretKey, nonce: bytes, plaintext: bytes, associated_data: bytes
) -> bytes:
    stream = _keystream(key.derive("enc"), nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = prf(key.derive("mac").material, nonce + associated_data + body)
    return body + tag


def _fallback_decrypt(
    key: SecretKey, nonce: bytes, blob: bytes, associated_data: bytes
) -> bytes:
    if len(blob) < 32:
        raise IntegrityError("ciphertext too short for authentication tag")
    body, tag = blob[:-32], blob[-32:]
    expected = prf(key.derive("mac").material, nonce + associated_data + body)
    if not constant_time_equals(tag, expected):
        raise IntegrityError("authentication tag mismatch")
    stream = _keystream(key.derive("enc"), nonce, len(body))
    return bytes(c ^ s for c, s in zip(body, stream))


def has_hardware_aes() -> bool:
    """Whether AES-GCM from ``cryptography`` is available in this environment."""
    return _HAS_AESGCM
