"""Common interface for encrypted-search schemes.

QB is a *meta* technique: it rewrites queries into bins and hands the
sensitive bin to whatever cryptographic search scheme protects ``Rs``.  Every
scheme in this package therefore implements the same, small interface:

* ``encrypt_rows`` — the DB owner encrypts the sensitive rows before
  outsourcing them;
* ``tokens_for_values`` — the DB owner turns the sensitive bin ``Ws`` into
  search tokens;
* ``search`` — the (untrusted) cloud matches tokens against stored
  ciphertexts and returns matching :class:`EncryptedRow` objects;
* ``decrypt_row`` — the DB owner recovers the plaintext row.

Each scheme also advertises a :class:`LeakageProfile` describing which
attacks it is susceptible to on its own; the security benchmarks use this to
demonstrate that QB removes the size / frequency / workload-skew signals even
when the underlying scheme leaks them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.relation import Row
from repro.exceptions import CryptoError


@dataclass(frozen=True)
class SearchToken:
    """An opaque token the owner sends to the cloud to search ``Rs``.

    ``payload`` is scheme-specific (a PRF output, a ciphertext, a share...).
    ``hint`` carries scheme-specific routing information (e.g. the Arx
    counter index); it must not reveal the plaintext value.
    """

    payload: bytes
    hint: Optional[int] = None


@dataclass(frozen=True)
class EncryptedRow:
    """A sensitive row as stored at the cloud.

    Attributes
    ----------
    rid:
        The tuple address.  The adversary sees this (access pattern), which is
        exactly the paper's adversarial-view granularity for sensitive data.
    ciphertext:
        Probabilistically encrypted full row payload.
    search_tag:
        Scheme-specific searchable tag for the binned attribute (may be
        empty for schemes that search by owner-side decryption).
    is_fake:
        True for the padding tuples added by the general-case binning.
    """

    rid: int
    ciphertext: bytes
    search_tag: bytes = b""
    is_fake: bool = False


@dataclass(frozen=True)
class LeakageProfile:
    """Which classical attacks a scheme is vulnerable to *on its own*."""

    name: str
    leaks_output_size: bool = True
    leaks_frequency: bool = False
    leaks_order: bool = False
    leaks_access_pattern: bool = True
    deterministic: bool = False

    def vulnerable_attacks(self) -> Tuple[str, ...]:
        attacks = []
        if self.leaks_output_size:
            attacks.append("size")
        if self.leaks_frequency:
            attacks.append("frequency-count")
        if self.leaks_output_size or self.leaks_frequency:
            attacks.append("workload-skew")
        if self.leaks_access_pattern:
            attacks.append("access-pattern")
        if self.leaks_order:
            attacks.append("order")
        return tuple(attacks)


class EncryptedSearchScheme(abc.ABC):
    """Abstract base class for all encrypted-search schemes."""

    #: human-readable scheme name, set by subclasses
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def leakage(self) -> LeakageProfile:
        """The scheme's standalone leakage profile."""

    @abc.abstractmethod
    def encrypt_rows(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Encrypt sensitive rows for outsourcing, tagging ``attribute``."""

    @abc.abstractmethod
    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        """Build the search tokens for the sensitive bin ``Ws``."""

    @abc.abstractmethod
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Cloud-side matching of tokens against stored ciphertexts."""

    @abc.abstractmethod
    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        """Owner-side decryption of a returned ciphertext."""

    # -- conveniences shared by all schemes ---------------------------------
    def decrypt_rows(self, encrypted: Iterable[EncryptedRow]) -> List[Row]:
        """Decrypt many rows, silently dropping padding (fake) tuples."""
        plain: List[Row] = []
        for item in encrypted:
            if item.is_fake:
                continue
            plain.append(self.decrypt_row(item))
        return plain

    def make_fake_row(self, attribute: str, template: Row) -> EncryptedRow:
        """Create an indistinguishable padding tuple for bin equalisation.

        The default implementation encrypts a copy of ``template`` with a
        sentinel rid of ``-1`` family; schemes may override for tighter
        constructions.  Fake rows are never returned to the application: the
        owner drops them during decryption.
        """
        encrypted = self.encrypt_rows([template], attribute)
        if not encrypted:
            raise CryptoError("scheme produced no ciphertext for the fake row")
        first = encrypted[0]
        return EncryptedRow(
            rid=first.rid,
            ciphertext=first.ciphertext,
            search_tag=first.search_tag,
            is_fake=True,
        )
