"""Common interface for encrypted-search schemes.

QB is a *meta* technique: it rewrites queries into bins and hands the
sensitive bin to whatever cryptographic search scheme protects ``Rs``.  Every
scheme in this package therefore implements the same, small interface:

* ``encrypt_rows`` — the DB owner encrypts the sensitive rows before
  outsourcing them;
* ``tokens_for_values`` — the DB owner turns the sensitive bin ``Ws`` into
  search tokens;
* ``search`` — the (untrusted) cloud matches tokens against stored
  ciphertexts and returns matching :class:`EncryptedRow` objects;
* ``decrypt_row`` — the DB owner recovers the plaintext row.

Each scheme also advertises a :class:`LeakageProfile` describing which
attacks it is susceptible to on its own; the security benchmarks use this to
demonstrate that QB removes the size / frequency / workload-skew signals even
when the underlying scheme leaks them.

Schemes whose rows carry a *stable* per-row search key additionally opt into
cloud-side indexing by setting :attr:`EncryptedSearchScheme.supports_tag_index`
and (when the key is not simply ``search_tag`` / ``token.payload``) overriding
the :meth:`~EncryptedSearchScheme.index_key` /
:meth:`~EncryptedSearchScheme.token_index_key` hooks.  The cloud then serves
their queries from an :class:`~repro.cloud.indexes.EncryptedTagIndex` instead
of scanning the whole encrypted relation; schemes that must examine rows to
match (trial decryption, PRF testing) keep ``supports_tag_index = False`` and
are served from the cloud's bin-addressed store when Query Binning supplies a
bin assignment.  Indexing changes nothing in the adversarial view: the index
is built from exactly the (tag, rid) pairs the adversary already stores.
"""

from __future__ import annotations

import abc
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.primitives import SecretKey, decrypt_many
from repro.data.relation import Row
from repro.exceptions import CryptoError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (indexes imports base)
    from repro.cloud.indexes import EncryptedTagIndex


@dataclass(frozen=True)
class SearchToken:
    """An opaque token the owner sends to the cloud to search ``Rs``.

    ``payload`` is scheme-specific (a PRF output, a ciphertext, a share...).
    ``hint`` carries scheme-specific routing information (e.g. the Arx
    counter index); it must not reveal the plaintext value.

    Tokens are interned by the owner per sensitive bin and re-sent for every
    retrieval of the bin, so the same token objects are hashed over and over
    (request interning keys on token tuples); the hash is computed once and
    cached on the instance (and excluded from pickles — process-backed
    members receive tokens over a pipe).
    """

    payload: bytes
    hint: Optional[int] = None

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.payload, self.hint))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass(frozen=True)
class EncryptedRow:
    """A sensitive row as stored at the cloud.

    Attributes
    ----------
    rid:
        The tuple address.  The adversary sees this (access pattern), which is
        exactly the paper's adversarial-view granularity for sensitive data.
    ciphertext:
        Probabilistically encrypted full row payload.
    search_tag:
        Scheme-specific searchable tag for the binned attribute (may be
        empty for schemes that search by owner-side decryption).
    is_fake:
        True for the padding tuples added by the general-case binning.
    """

    rid: int
    ciphertext: bytes
    search_tag: bytes = b""
    is_fake: bool = False


@dataclass(frozen=True)
class LeakageProfile:
    """Which classical attacks a scheme is vulnerable to *on its own*."""

    name: str
    leaks_output_size: bool = True
    leaks_frequency: bool = False
    leaks_order: bool = False
    leaks_access_pattern: bool = True
    deterministic: bool = False

    def vulnerable_attacks(self) -> Tuple[str, ...]:
        attacks = []
        if self.leaks_output_size:
            attacks.append("size")
        if self.leaks_frequency:
            attacks.append("frequency-count")
        if self.leaks_output_size or self.leaks_frequency:
            attacks.append("workload-skew")
        if self.leaks_access_pattern:
            attacks.append("access-pattern")
        if self.leaks_order:
            attacks.append("order")
        return tuple(attacks)


class EncryptedSearchScheme(abc.ABC):
    """Abstract base class for all encrypted-search schemes."""

    #: human-readable scheme name, set by subclasses
    name: str = "abstract"

    #: True when every stored row carries a stable key (:meth:`index_key`)
    #: that search tokens can be mapped onto (:meth:`token_index_key`), so the
    #: cloud may answer ``search`` with exact-match index probes instead of a
    #: scan.  Schemes that must *examine* rows to match (trial decryption, PRF
    #: testing) leave this False and rely on the bin-addressed store.
    supports_tag_index: bool = False

    #: True when the cloud-side matching path (``search`` /
    #: ``indexed_search``) touches no shared mutable state, so several cloud
    #: servers holding the *same* scheme object may search concurrently
    #: (sharded multi-cloud execution).  Schemes that mutate work counters
    #: inside ``search`` (e.g. Paillier's ``homomorphic_ops``) must set this
    #: False; the fleet then serialises member searches instead of losing
    #: increments to the non-atomic ``+=``.
    concurrent_search_safe: bool = True

    # -- batch execution contract -------------------------------------------
    #
    # The ``*_many`` hooks (``encrypt_rows`` batch bodies, ``search`` batch
    # bodies, :meth:`decrypt_rows_many`, :meth:`index_keys`) amortise
    # per-call crypto setup (HMAC key schedules, AES-GCM cipher objects,
    # sub-key derivations) over whole row batches.  They are required to be
    # *observably identical* to the scalar reference loops: same tags and
    # tokens bit-for-bit for deterministic constructions, same match sets
    # and error behaviour for all, same work-counter increments on every
    # index they touch.  The parity suite pins this.

    #: Batch-path master switch.  ``True`` routes vector-capable operations
    #: through the ``*_many`` hooks; setting it ``False`` (per instance or
    #: subclass) forces every operation through the scalar reference loops —
    #: the parity tests and the benchmark's scalar baseline use exactly this
    #: toggle, so both paths stay exercised forever.
    use_batch: bool = True

    #: True when the scheme ships vectorized ``*_many`` overrides; schemes
    #: that leave it False keep working unchanged through the scalar
    #: fallbacks (the perfsmoke tripwires only police vector-capable
    #: schemes).
    supports_batch: bool = False

    #: How many times a batch hook ran (class-level zero; ``+=`` creates the
    #: instance counter on first use).  Perfsmoke tripwires assert this is
    #: positive after a workload so refactors cannot silently drop back to
    #: the scalar path.
    batch_calls: int = 0

    #: How many times a vector-capable operation fell back to its scalar
    #: reference loop (``use_batch = False`` or a base-class default).  Must
    #: stay zero for vector-capable schemes on the hot path.
    scalar_fallback_calls: int = 0

    @property
    @abc.abstractmethod
    def leakage(self) -> LeakageProfile:
        """The scheme's standalone leakage profile."""

    @abc.abstractmethod
    def encrypt_rows(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Encrypt sensitive rows for outsourcing, tagging ``attribute``."""

    @abc.abstractmethod
    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        """Build the search tokens for the sensitive bin ``Ws``."""

    @abc.abstractmethod
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Cloud-side matching of tokens against stored ciphertexts."""

    @abc.abstractmethod
    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        """Owner-side decryption of a returned ciphertext."""

    # -- cloud-side indexing hooks ------------------------------------------
    def index_key(self, row: EncryptedRow) -> Optional[bytes]:
        """The stable key the cloud indexes ``row`` under, or ``None``.

        Only consulted when :attr:`supports_tag_index` is True.  The default
        uses the row's search tag, which is correct for every scheme whose
        tag is a deterministic function of the (attribute, value) pair.
        """
        return row.search_tag or None

    def token_index_key(self, token: SearchToken) -> Optional[bytes]:
        """The index key a search token probes for, or ``None``."""
        return token.payload

    def index_keys(self, rows: Sequence[EncryptedRow]) -> List[Optional[bytes]]:
        """Batch :meth:`index_key` (tag-index ingest builds from this).

        The default simply loops; schemes whose key derivation does real
        crypto work may override with a vectorized pass.  Must stay
        element-wise identical to the scalar hook.
        """
        index_key = self.index_key
        return [index_key(row) for row in rows]

    def indexed_search(
        self, index: "EncryptedTagIndex", tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Answer ``search`` from a cloud-side tag index.

        The default mirrors the membership-test scans used by most schemes:
        each stored row is returned at most once, in storage order, if any
        token probes its key.  Schemes whose linear ``search`` has different
        multiplicity/order semantics (e.g. Arx's per-token probing) override
        this so the indexed and linear paths stay bit-identical.

        Probes go through the index's batch entry point when it has one
        (``probe_many``), which charges the same per-key ``probe_count`` /
        ``rows_examined`` increments as a per-key loop would.
        """
        token_index_key = self.token_index_key
        keys = [key for key in map(token_index_key, tokens) if key is not None]
        matched: Dict[int, EncryptedRow] = {}
        update = matched.update  # bulk-insert each bucket (positions are unique)
        probe_many = getattr(index, "probe_many", None)
        if probe_many is not None:
            for bucket in probe_many(keys):
                update(bucket)
        else:  # pragma: no cover - index without a batch probe surface
            for key in keys:
                update(index.probe(key))
        return [row for _position, row in sorted(matched.items())]

    # -- conveniences shared by all schemes ---------------------------------
    def decrypt_rows(self, encrypted: Iterable[EncryptedRow]) -> List[Row]:
        """Decrypt many rows, silently dropping padding (fake) tuples."""
        real = [item for item in encrypted if not item.is_fake]
        if not real:
            return []
        return self.decrypt_rows_many(real)

    def decrypt_rows_many(self, encrypted: Sequence[EncryptedRow]) -> List[Row]:
        """Decrypt a batch of (non-fake) rows.

        The base implementation is the scalar reference loop; schemes whose
        payloads share one row key override it with a single
        :func:`~repro.crypto.primitives.decrypt_many` pass (via
        :meth:`_decrypt_row_payloads`).  Row order and raised errors are
        identical either way.
        """
        self.scalar_fallback_calls += 1
        decrypt_row = self.decrypt_row
        return [decrypt_row(item) for item in encrypted]

    def _decrypt_row_payloads(
        self, row_key: SecretKey, encrypted: Sequence[EncryptedRow]
    ) -> List[Row]:
        """One-pass batch decryption of the standard pickled row payload.

        Shared by every scheme that stores rows as
        ``aead_encrypt(row_key, pickle({rid, values, sensitive}))`` — which
        is all four built-in schemes — so their ``decrypt_rows_many``
        overrides are one-liners.
        """
        payloads = decrypt_many(row_key, [item.ciphertext for item in encrypted])
        loads = pickle.loads
        return [
            Row(rid=data["rid"], values=data["values"], sensitive=data["sensitive"])
            for data in map(loads, payloads)
        ]

    def make_fake_row(self, attribute: str, template: Row) -> EncryptedRow:
        """Create an indistinguishable padding tuple for bin equalisation.

        The default implementation encrypts a copy of ``template`` with a
        sentinel rid of ``-1`` family; schemes may override for tighter
        constructions.  Fake rows are never returned to the application: the
        owner drops them during decryption.
        """
        fakes = self.make_fake_rows(attribute, [template])
        return fakes[0]

    def make_fake_rows(
        self, attribute: str, templates: Sequence[Row]
    ) -> List[EncryptedRow]:
        """Create many padding tuples with a single ``encrypt_rows`` call.

        Bin equalisation can require thousands of fake tuples; encrypting
        them in one batch amortises per-call overhead (key schedules, counter
        lookups) instead of paying it once per deficit unit.
        """
        templates = list(templates)
        if not templates:
            return []
        encrypted = self.encrypt_rows(templates, attribute)
        if len(encrypted) != len(templates):
            raise CryptoError(
                "scheme produced "
                f"{len(encrypted)} ciphertexts for {len(templates)} fake rows"
            )
        return [
            EncryptedRow(
                rid=item.rid,
                ciphertext=item.ciphertext,
                search_tag=item.search_tag,
                is_fake=True,
            )
            for item in encrypted
        ]
