"""Searchable symmetric encryption (SSE) in the style of Song-Wagner-Perrig.

Ciphertexts are probabilistic at rest (per-row nonces), so the stored data
does not leak frequencies.  A search token for a value lets the cloud test
every stored row for a match, revealing — per query — which rows matched
(access pattern) and how many (output size), and repeated queries for the
same value produce the same token (workload-skew signal).
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    NONCE_BYTES,
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    constant_time_equals,
    encode_value,
    encrypt_many,
    hmac_template,
    prf,
    prf_many,
    random_bytes,
)
from repro.data.relation import Row
from repro.exceptions import CryptoError


class SSEScheme(EncryptedSearchScheme):
    """Token-tested searchable encryption.

    Each stored row carries ``nonce || PRF(token_v, nonce)`` for its value of
    the searched attribute, where ``token_v = PRF(k, v)``.  The cloud matches
    a query token by recomputing the PRF over each stored nonce.
    """

    name = "sse"

    #: Tags embed a per-row nonce, so the cloud cannot index them: matching
    #: requires recomputing the PRF per (row, token) pair.  Under QB the
    #: cloud's bin-addressed store confines that trial-testing to one bin.
    supports_tag_index = False

    #: Batched tagging and — the part that matters — batched trial testing:
    #: ``search`` runs a bin slice as one pass with per-token HMAC templates
    #: instead of a fresh key schedule per (row, token) pair.
    supports_batch = True

    def __init__(self, key: SecretKey | None = None):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._token_key = self._key.derive("token")

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,
            leaks_order=False,
            leaks_access_pattern=True,
            deterministic=False,
        )

    def _value_token(self, attribute: str, value: object) -> bytes:
        return prf(
            self._token_key.material, attribute.encode() + b"|" + encode_value(value)
        )

    # -- owner side -------------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return self._encrypt_rows_scalar(rows, attribute)
        self.batch_calls += 1
        rows = list(rows)
        payloads = [
            pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            for row in rows
        ]
        ciphertexts = encrypt_many(self._row_key, payloads)
        # One value token per *distinct* value (hot-key batches repeat
        # values), then one HMAC template per token: tagging a row costs a
        # state copy over its nonce instead of two key schedules.
        prefix = attribute.encode() + b"|"
        distinct = {row[attribute]: None for row in rows}
        value_tokens = prf_many(
            self._token_key.material,
            [prefix + encode_value(value) for value in distinct],
        )
        templates = {
            value: hmac_template(token)
            for value, token in zip(distinct, value_tokens)
        }
        nonces = random_bytes(NONCE_BYTES * len(rows))
        encrypted: List[EncryptedRow] = []
        append = encrypted.append
        offset = 0
        for row, ciphertext in zip(rows, ciphertexts):
            nonce = nonces[offset : offset + NONCE_BYTES]
            offset += NONCE_BYTES
            mac = templates[row[attribute]].copy()
            mac.update(nonce)
            append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=ciphertext,
                    search_tag=nonce + mac.digest(),
                )
            )
        return encrypted

    def _encrypt_rows_scalar(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Scalar reference loop (parity baseline for the batch path)."""
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            nonce = random_bytes(NONCE_BYTES)
            token = self._value_token(attribute, row[attribute])
            tag = prf(token, nonce)
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=nonce + tag,
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return [
                SearchToken(payload=self._value_token(attribute, value))
                for value in values
            ]
        self.batch_calls += 1
        prefix = attribute.encode() + b"|"
        return [
            SearchToken(payload=token)
            for token in prf_many(
                self._token_key.material,
                [prefix + encode_value(value) for value in values],
            )
        ]

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    def decrypt_rows_many(self, encrypted: Sequence[EncryptedRow]) -> List[Row]:
        if not self.use_batch:
            return super().decrypt_rows_many(encrypted)
        self.batch_calls += 1
        return self._decrypt_row_payloads(self._row_key, encrypted)

    # -- cloud side ----------------------------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Trial-test every stored row against every token (CPU-bound).

        This loop *is* the cloud's per-query cost for SSE — one PRF
        evaluation per (row, token) pair until a match — and the reason
        process-backed fleet members exist: under Query Binning each member
        trial-decrypts only its own bins' slices, and only separate
        processes let those slices be tested in parallel.

        The batch pass runs the whole bin slice in one sweep with one HMAC
        template per token: each (row, token) trial costs a state copy plus
        a digest over the 12-byte nonce instead of a fresh ``hmac.new`` key
        schedule, while the matching semantics stay exactly the scalar
        loop's — storage order, first matching token wins, same
        ``CryptoError`` on a malformed tag.
        """
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return self._search_scalar(stored, tokens)
        self.batch_calls += 1
        matches: List[EncryptedRow] = []
        append = matches.append
        equals = constant_time_equals
        nonce_bytes = NONCE_BYTES
        templates = [hmac_template(token.payload) for token in tokens]
        for row in stored:
            search_tag = row.search_tag
            if len(search_tag) < nonce_bytes:
                raise CryptoError("malformed SSE search tag")
            nonce = search_tag[:nonce_bytes]
            tag = search_tag[nonce_bytes:]
            for template in templates:
                mac = template.copy()
                mac.update(nonce)
                if equals(mac.digest(), tag):
                    append(row)
                    break
        return matches

    def _search_scalar(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """The per-pair ``hmac.new`` reference loop (parity baseline)."""
        matches: List[EncryptedRow] = []
        append = matches.append
        prf_local = prf
        equals = constant_time_equals
        payloads = [token.payload for token in tokens]
        for row in stored:
            search_tag = row.search_tag
            if len(search_tag) < NONCE_BYTES:
                raise CryptoError("malformed SSE search tag")
            nonce = search_tag[:NONCE_BYTES]
            tag = search_tag[NONCE_BYTES:]
            for payload in payloads:
                if equals(prf_local(payload, nonce), tag):
                    append(row)
                    break
        return matches
