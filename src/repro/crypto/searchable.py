"""Searchable symmetric encryption (SSE) in the style of Song-Wagner-Perrig.

Ciphertexts are probabilistic at rest (per-row nonces), so the stored data
does not leak frequencies.  A search token for a value lets the cloud test
every stored row for a match, revealing — per query — which rows matched
(access pattern) and how many (output size), and repeated queries for the
same value produce the same token (workload-skew signal).
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    NONCE_BYTES,
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    constant_time_equals,
    encode_value,
    prf,
    random_bytes,
)
from repro.data.relation import Row
from repro.exceptions import CryptoError


class SSEScheme(EncryptedSearchScheme):
    """Token-tested searchable encryption.

    Each stored row carries ``nonce || PRF(token_v, nonce)`` for its value of
    the searched attribute, where ``token_v = PRF(k, v)``.  The cloud matches
    a query token by recomputing the PRF over each stored nonce.
    """

    name = "sse"

    #: Tags embed a per-row nonce, so the cloud cannot index them: matching
    #: requires recomputing the PRF per (row, token) pair.  Under QB the
    #: cloud's bin-addressed store confines that trial-testing to one bin.
    supports_tag_index = False

    def __init__(self, key: SecretKey | None = None):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._token_key = self._key.derive("token")

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,
            leaks_order=False,
            leaks_access_pattern=True,
            deterministic=False,
        )

    def _value_token(self, attribute: str, value: object) -> bytes:
        return prf(
            self._token_key.material, attribute.encode() + b"|" + encode_value(value)
        )

    # -- owner side -------------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            nonce = random_bytes(NONCE_BYTES)
            token = self._value_token(attribute, row[attribute])
            tag = prf(token, nonce)
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=nonce + tag,
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        return [
            SearchToken(payload=self._value_token(attribute, value)) for value in values
        ]

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    # -- cloud side ----------------------------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Trial-test every stored row against every token (CPU-bound).

        This loop *is* the cloud's per-query cost for SSE — one PRF
        evaluation per (row, token) pair until a match — and the reason
        process-backed fleet members exist: under Query Binning each member
        trial-decrypts only its own bins' slices, and only separate
        processes let those slices be tested in parallel.  The loop body
        binds its globals locally and hoists the token payloads; with tags
        of ``nonce || PRF(token, nonce)`` per row, that keeps the pure-Python
        overhead per PRF evaluation minimal.
        """
        matches: List[EncryptedRow] = []
        append = matches.append
        prf_local = prf
        equals = constant_time_equals
        payloads = [token.payload for token in tokens]
        for row in stored:
            search_tag = row.search_tag
            if len(search_tag) < NONCE_BYTES:
                raise CryptoError("malformed SSE search tag")
            nonce = search_tag[:NONCE_BYTES]
            tag = search_tag[NONCE_BYTES:]
            for payload in payloads:
                if equals(prf_local(payload, nonce), tag):
                    append(row)
                    break
        return matches
