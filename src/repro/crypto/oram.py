"""Path ORAM — hiding access patterns on the (simulated) cloud.

The paper repeatedly notes that QB does not hide *access patterns* (which
encrypted tuple addresses are touched) and that ORAM/PIR can be layered on the
sensitive side to close that channel, at a cost QB then amortises.  This
module provides a textbook Path ORAM (Stefanov et al.) over an untrusted block
store:

* the server stores a complete binary tree of buckets, each holding up to
  ``bucket_size`` encrypted blocks (real or dummy);
* the client keeps a position map (block id → leaf) and a stash;
* every access reads one root-to-leaf path, remaps the block to a fresh random
  leaf, and greedily writes blocks back as deep as their (new) positions allow.

From the server's point of view every access is a uniformly random path of
freshly re-encrypted buckets, so reads are indistinguishable from writes and
repeated accesses to the same block are indistinguishable from accesses to
different blocks.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.primitives import SecretKey, aead_decrypt, aead_encrypt
from repro.exceptions import CryptoError

DUMMY_BLOCK_ID = -1


@dataclass
class Block:
    """A logical ORAM block (plaintext form, only ever seen by the client)."""

    block_id: int
    data: bytes


class PathORAMServer:
    """The untrusted block store: a complete binary tree of encrypted buckets.

    The server only ever sees opaque ciphertexts and path indexes; it records
    how many bucket reads/writes it served so tests can confirm that accesses
    touch exactly one path.
    """

    def __init__(self, num_buckets: int):
        if num_buckets < 1:
            raise CryptoError("the ORAM tree needs at least one bucket")
        self._buckets: List[List[bytes]] = [[] for _ in range(num_buckets)]
        self.bucket_reads = 0
        self.bucket_writes = 0

    def read_bucket(self, index: int) -> List[bytes]:
        self.bucket_reads += 1
        return list(self._buckets[index])

    def write_bucket(self, index: int, ciphertexts: List[bytes]) -> None:
        self.bucket_writes += 1
        self._buckets[index] = list(ciphertexts)

    def __len__(self) -> int:
        return len(self._buckets)


@dataclass
class ORAMStatistics:
    """Client-side accounting."""

    accesses: int = 0
    stash_peak: int = 0


class PathORAM:
    """Path ORAM client.

    Parameters
    ----------
    capacity:
        Maximum number of distinct logical blocks the ORAM must hold.
    key:
        Client secret key used to encrypt blocks before they reach the server.
    bucket_size:
        Blocks per bucket (the classic construction uses 4).
    server:
        Optionally share a server instance; a fresh one is created otherwise.
    """

    def __init__(
        self,
        capacity: int,
        key: Optional[SecretKey] = None,
        bucket_size: int = 4,
        server: Optional[PathORAMServer] = None,
    ):
        if capacity < 1:
            raise CryptoError("ORAM capacity must be at least 1")
        if bucket_size < 1:
            raise CryptoError("bucket_size must be at least 1")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self._key = (key or SecretKey.generate()).derive("path-oram")
        # Tree height: enough leaves to give each block its own leaf on average.
        self._height = max(1, math.ceil(math.log2(max(2, capacity))))
        self._num_leaves = 1 << self._height
        num_buckets = 2 * self._num_leaves - 1
        self.server = server or PathORAMServer(num_buckets)
        if len(self.server) != num_buckets:
            raise CryptoError("shared server has the wrong tree size")
        self._position: Dict[int, int] = {}
        self._stash: Dict[int, bytes] = {}
        self.stats = ORAMStatistics()
        self._initialise_tree()

    # -- tree geometry ---------------------------------------------------------
    def _leaf_to_node(self, leaf: int) -> int:
        return leaf + self._num_leaves - 1

    def _path_nodes(self, leaf: int) -> List[int]:
        """Bucket indexes from the leaf up to the root."""
        node = self._leaf_to_node(leaf)
        path = [node]
        while node > 0:
            node = (node - 1) // 2
            path.append(node)
        return path

    def _initialise_tree(self) -> None:
        """Fill every bucket with encrypted dummy blocks."""
        for index in range(len(self.server)):
            self.server.write_bucket(
                index, [self._encrypt_block(Block(DUMMY_BLOCK_ID, b"")) for _ in range(self.bucket_size)]
            )

    # -- block encryption ----------------------------------------------------------
    def _encrypt_block(self, block: Block) -> bytes:
        payload = block.block_id.to_bytes(8, "big", signed=True) + block.data
        return aead_encrypt(self._key, payload)

    def _decrypt_block(self, ciphertext: bytes) -> Block:
        payload = aead_decrypt(self._key, ciphertext)
        block_id = int.from_bytes(payload[:8], "big", signed=True)
        return Block(block_id=block_id, data=payload[8:])

    # -- the access protocol ----------------------------------------------------------
    def _access(self, block_id: int, new_data: Optional[bytes]) -> Optional[bytes]:
        if not 0 <= block_id < self.capacity:
            raise CryptoError(
                f"block id {block_id} outside ORAM capacity [0, {self.capacity})"
            )
        self.stats.accesses += 1

        leaf = self._position.get(block_id)
        if leaf is None:
            leaf = secrets.randbelow(self._num_leaves)
        # Remap to a fresh random leaf *before* reading (standard Path ORAM).
        self._position[block_id] = secrets.randbelow(self._num_leaves)

        # Read the whole path into the stash.
        path = self._path_nodes(leaf)
        for node in path:
            for ciphertext in self.server.read_bucket(node):
                block = self._decrypt_block(ciphertext)
                if block.block_id != DUMMY_BLOCK_ID:
                    self._stash.setdefault(block.block_id, block.data)

        result = self._stash.get(block_id)
        if new_data is not None:
            self._stash[block_id] = new_data
            result = new_data

        self._write_back(path)
        self.stats.stash_peak = max(self.stats.stash_peak, len(self._stash))
        return result

    def _write_back(self, path: List[int]) -> None:
        """Greedily push stash blocks as deep as their positions allow."""
        for node in path:  # path is ordered leaf -> root, i.e. deepest first
            eligible = [
                block_id
                for block_id in self._stash
                if node in self._path_nodes(self._position[block_id])
            ]
            chosen = eligible[: self.bucket_size]
            bucket = [
                self._encrypt_block(Block(block_id, self._stash.pop(block_id)))
                for block_id in chosen
            ]
            while len(bucket) < self.bucket_size:
                bucket.append(self._encrypt_block(Block(DUMMY_BLOCK_ID, b"")))
            self.server.write_bucket(node, bucket)

    # -- public API ----------------------------------------------------------------------
    def write(self, block_id: int, data: bytes) -> None:
        """Store ``data`` under ``block_id``."""
        self._access(block_id, data)

    def read(self, block_id: int) -> Optional[bytes]:
        """Return the data stored under ``block_id`` (``None`` if never written)."""
        return self._access(block_id, None)

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    @property
    def path_length(self) -> int:
        """Buckets touched per access (tree height + 1)."""
        return self._height + 1


class ObliviousRowStore:
    """Convenience layer: store/retrieve relation rows by rid through Path ORAM.

    Used to demonstrate the paper's remark that QB composes with
    access-pattern-hiding techniques: the sensitive bin's tuples can be
    fetched through ORAM so the cloud does not even learn which encrypted
    rows were touched.
    """

    def __init__(self, capacity: int, key: Optional[SecretKey] = None):
        self._oram = PathORAM(capacity=capacity, key=key)
        self._rid_to_block: Dict[int, int] = {}

    def store_row(self, rid: int, payload: bytes) -> None:
        block_id = self._rid_to_block.setdefault(rid, len(self._rid_to_block))
        if block_id >= self._oram.capacity:
            raise CryptoError("oblivious store capacity exceeded")
        self._oram.write(block_id, payload)

    def fetch_row(self, rid: int) -> Optional[bytes]:
        block_id = self._rid_to_block.get(rid)
        if block_id is None:
            # Perform a dummy access so misses are indistinguishable from hits.
            self._oram.read(secrets.randbelow(max(1, len(self._rid_to_block) or 1)))
            return None
        return self._oram.read(block_id)

    @property
    def accesses(self) -> int:
        return self._oram.stats.accesses

    @property
    def server(self) -> PathORAMServer:
        return self._oram.server
