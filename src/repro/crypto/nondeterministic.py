"""Non-deterministic (probabilistic) row encryption.

This is the scheme the paper assumes protects the sensitive relation by
default: ciphertext indistinguishability means two occurrences of the same
value (e.g. ``E152`` in Example 1) have different ciphertexts, so the cloud
cannot match values on its own.

Search therefore works the way the paper's experimental section describes for
the "No-Ind" systems: the DB owner resolves the bin's values to tuple
addresses using its own metadata (built at encryption time), sends the
addresses, and the cloud returns the ciphertexts stored at those addresses.
The adversary consequently observes only (a) how many addresses were probed
and (b) which ciphertexts were returned — the access pattern — which is the
adversarial view QB is designed to neutralise.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import Dict, List, Sequence

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    encode_value,
    encrypt_many,
    prf,
    prf_many,
)
from repro.data.relation import Row
from repro.exceptions import CryptoError


def _address_list() -> "defaultdict[object, List[int]]":
    """Module-level factory so scheme instances stay picklable.

    Process-backed fleet members receive their scheme copy over a pipe; a
    ``defaultdict(lambda: ...)`` would make every instance unpicklable.
    """
    return defaultdict(list)


class NonDeterministicScheme(EncryptedSearchScheme):
    """AES-GCM (or HMAC-stream fallback) probabilistic row encryption.

    Parameters
    ----------
    key:
        The owner's secret key; derived sub-keys are used for row encryption
        and address blinding.
    """

    name = "non-deterministic"

    #: Search resolves tokens to tuple addresses, so the cloud can keep an
    #: address → row index instead of scanning (the index reveals nothing
    #: beyond the rids the adversary already observes as the access pattern).
    supports_tag_index = True

    #: Batched row encryption/decryption and batched address blinding.
    supports_batch = True

    def __init__(self, key: SecretKey | None = None):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._addr_key = self._key.derive("addr")
        # Owner-side metadata: attribute -> value -> [rid, ...]
        self._address_book: Dict[str, Dict[object, List[int]]] = defaultdict(
            _address_list
        )

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,
            leaks_order=False,
            leaks_access_pattern=True,
            deterministic=False,
        )

    # -- owner side -----------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return self._encrypt_rows_scalar(rows, attribute)
        self.batch_calls += 1
        rows = list(rows)
        payloads: List[bytes] = []
        book = self._address_book[attribute]
        for row in rows:
            payloads.append(
                pickle.dumps(
                    {
                        "rid": row.rid,
                        "values": dict(row.values),
                        "sensitive": row.sensitive,
                    }
                )
            )
            book[row[attribute]].append(row.rid)
        ciphertexts = encrypt_many(self._row_key, payloads)
        return [
            EncryptedRow(rid=row.rid, ciphertext=ciphertext, search_tag=b"")
            for row, ciphertext in zip(rows, ciphertexts)
        ]

    def _encrypt_rows_scalar(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Scalar reference loop (parity baseline for the batch path)."""
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            ciphertext = aead_encrypt(self._row_key, payload)
            self._address_book[attribute][row[attribute]].append(row.rid)
            encrypted.append(
                EncryptedRow(rid=row.rid, ciphertext=ciphertext, search_tag=b"")
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        """Resolve values to blinded address tokens using owner metadata."""
        book = self._address_book.get(attribute, {})
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            tokens: List[SearchToken] = []
            for value in values:
                for rid in book.get(value, []):
                    blinded = prf(self._addr_key.material, encode_value(rid))
                    tokens.append(SearchToken(payload=blinded, hint=rid))
            return tokens
        self.batch_calls += 1
        rids = [rid for value in values for rid in book.get(value, [])]
        blinded_many = prf_many(
            self._addr_key.material, [encode_value(rid) for rid in rids]
        )
        return [
            SearchToken(payload=blinded, hint=rid)
            for blinded, rid in zip(blinded_many, rids)
        ]

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    def decrypt_rows_many(self, encrypted: Sequence[EncryptedRow]) -> List[Row]:
        if not self.use_batch:
            return super().decrypt_rows_many(encrypted)
        self.batch_calls += 1
        return self._decrypt_row_payloads(self._row_key, encrypted)

    # -- cloud side -------------------------------------------------------------
    def index_key(self, row: EncryptedRow) -> bytes:
        """Index rows by tuple address (the ``hint`` tokens carry)."""
        return encode_value(row.rid)

    def token_index_key(self, token: SearchToken) -> bytes | None:
        return encode_value(token.hint) if token.hint is not None else None

    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Return the ciphertexts at the requested (blinded) addresses."""
        wanted = {token.hint for token in tokens if token.hint is not None}
        return [row for row in stored if row.rid in wanted]

    # -- maintenance --------------------------------------------------------------
    def forget_metadata(self, attribute: str) -> None:
        """Drop the owner's address book for ``attribute`` (testing hook)."""
        self._address_book.pop(attribute, None)

    def known_values(self, attribute: str) -> List[object]:
        """Values for which the owner holds address metadata."""
        return list(self._address_book.get(attribute, {}))
