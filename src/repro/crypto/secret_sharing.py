"""Secret sharing over a prime field: Shamir and additive schemes.

The paper's cost model treats secret-sharing-based search (Emekçi et al.,
ref [5]) as the exemplar "strong but slow" technique (≈10 ms per search).
This module provides:

* :class:`ShamirSecretSharing` — (t, n) threshold sharing with Lagrange
  reconstruction;
* :class:`AdditiveSecretSharing` — n-out-of-n sharing by random summands;
* :class:`SecretSharingScheme` — an :class:`EncryptedSearchScheme` that
  distributes the searchable attribute as shares across simulated
  non-colluding servers and answers selections by a share-space linear scan.

Values are mapped into the field through a keyed PRF ("value fingerprints"),
so equality of fingerprints implies equality of values with overwhelming
probability without revealing the values to any single server.
"""

from __future__ import annotations

import pickle
import secrets
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    encode_value,
    prf,
)
from repro.data.relation import Row
from repro.exceptions import CryptoError

#: A 127-bit Mersenne prime — large enough that PRF fingerprints essentially
#: never collide, small enough that arithmetic stays fast in pure Python.
DEFAULT_PRIME = (1 << 127) - 1


@dataclass(frozen=True)
class Share:
    """A single share: the evaluation point ``x`` and the value ``y``."""

    x: int
    y: int


class ShamirSecretSharing:
    """(threshold, parties) Shamir secret sharing over ``GF(prime)``."""

    def __init__(self, threshold: int, parties: int, prime: int = DEFAULT_PRIME):
        if threshold < 1:
            raise CryptoError("threshold must be at least 1")
        if parties < threshold:
            raise CryptoError("need at least `threshold` parties")
        if prime <= parties:
            raise CryptoError("prime must exceed the number of parties")
        self.threshold = threshold
        self.parties = parties
        self.prime = prime

    def share(self, secret: int) -> List[Share]:
        """Split ``secret`` into ``parties`` shares (degree ``threshold-1``)."""
        secret %= self.prime
        coefficients = [secret] + [
            secrets.randbelow(self.prime) for _ in range(self.threshold - 1)
        ]
        return [
            Share(x=x, y=self._evaluate(coefficients, x))
            for x in range(1, self.parties + 1)
        ]

    def _evaluate(self, coefficients: Sequence[int], x: int) -> int:
        result = 0
        for coefficient in reversed(coefficients):
            result = (result * x + coefficient) % self.prime
        return result

    def reconstruct(self, shares: Sequence[Share]) -> int:
        """Recover the secret from at least ``threshold`` distinct shares."""
        if len({s.x for s in shares}) < self.threshold:
            raise CryptoError(
                f"need {self.threshold} distinct shares, got {len(shares)}"
            )
        points = list(shares)[: self.threshold]
        secret = 0
        for i, share_i in enumerate(points):
            numerator, denominator = 1, 1
            for j, share_j in enumerate(points):
                if i == j:
                    continue
                numerator = (numerator * (-share_j.x)) % self.prime
                denominator = (denominator * (share_i.x - share_j.x)) % self.prime
            lagrange = numerator * pow(denominator, -1, self.prime)
            secret = (secret + share_i.y * lagrange) % self.prime
        return secret

    def add_shares(self, first: Sequence[Share], second: Sequence[Share]) -> List[Share]:
        """Pointwise addition of two sharings (shares of the sum)."""
        by_x = {s.x: s.y for s in second}
        return [
            Share(x=s.x, y=(s.y + by_x[s.x]) % self.prime)
            for s in first
            if s.x in by_x
        ]


class AdditiveSecretSharing:
    """n-out-of-n additive sharing: shares sum to the secret mod prime."""

    def __init__(self, parties: int, prime: int = DEFAULT_PRIME):
        if parties < 2:
            raise CryptoError("additive sharing needs at least 2 parties")
        self.parties = parties
        self.prime = prime

    def share(self, secret: int) -> List[int]:
        secret %= self.prime
        shares = [secrets.randbelow(self.prime) for _ in range(self.parties - 1)]
        last = (secret - sum(shares)) % self.prime
        return shares + [last]

    def reconstruct(self, shares: Sequence[int]) -> int:
        if len(shares) != self.parties:
            raise CryptoError(
                f"additive reconstruction needs all {self.parties} shares"
            )
        return sum(shares) % self.prime


class SecretSharingScheme(EncryptedSearchScheme):
    """Selection over secret-shared fingerprints across simulated servers.

    The searchable attribute value of every sensitive row is fingerprinted
    with a PRF, the fingerprint is Shamir-shared, and each simulated server
    stores one share per row.  A selection for value ``w`` shares the
    fingerprint of ``w``; each server subtracts its query share from its row
    shares, and the owner reconstructs the differences — a difference of zero
    marks a match.  Every query touches every row (linear scan), which is the
    behaviour the paper's cost model assumes for strong techniques.
    """

    name = "secret-sharing"
    # search() increments scan_count — not safe to run from several cloud
    # servers sharing this object at once.
    concurrent_search_safe = False

    def __init__(
        self,
        key: SecretKey | None = None,
        parties: int = 3,
        threshold: int = 2,
        prime: int = DEFAULT_PRIME,
    ):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._fp_key = self._key.derive("fingerprint")
        self.sharing = ShamirSecretSharing(threshold, parties, prime)
        # share storage: rid -> list of Share (one per server)
        self._row_shares: Dict[int, List[Share]] = {}
        self.scan_count = 0  # rows touched by searches (cost accounting)

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,
            leaks_order=False,
            leaks_access_pattern=False,  # linear scan touches everything
            deterministic=False,
        )

    def _fingerprint(self, attribute: str, value: object) -> int:
        digest = prf(self._fp_key.material, attribute.encode() + b"|" + encode_value(value))
        return int.from_bytes(digest[:16], "big") % self.sharing.prime

    # -- owner side ----------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        encrypted: List[EncryptedRow] = []
        for row in rows:
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            fingerprint = self._fingerprint(attribute, row[attribute])
            self._row_shares[row.rid] = self.sharing.share(fingerprint)
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=b"",
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        tokens: List[SearchToken] = []
        for value in values:
            fingerprint = self._fingerprint(attribute, value)
            shares = self.sharing.share(fingerprint)
            tokens.append(SearchToken(payload=pickle.dumps(shares)))
        return tokens

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    # -- simulated multi-server search ------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        matches: List[EncryptedRow] = []
        for row in stored:
            self.scan_count += 1
            row_shares = self._row_shares.get(row.rid)
            if row_shares is None:
                continue
            for token in tokens:
                query_shares: List[Share] = pickle.loads(token.payload)
                negated = [
                    Share(x=s.x, y=(-s.y) % self.sharing.prime) for s in query_shares
                ]
                difference = self.sharing.add_shares(row_shares, negated)
                if self.sharing.reconstruct(difference) == 0:
                    matches.append(row)
                    break
        return matches
