"""Arx-style indexable encryption (paper §VI).

Arx encrypts the *i*-th occurrence of a value ``v`` as a deterministic
function of the pair ``(v, i)``, so no two ciphertexts are equal and the
stored data leaks no frequencies, yet the cloud can still build an exact-match
index over the tags.  To query, the DB owner — who keeps the per-value
occurrence counters — generates the tags for every occurrence of the wanted
value and probes the index.

On its own the technique leaks the output size, the query's frequency-count
(the number of probes equals the value's multiplicity), and the workload skew.
The paper's §VI shows that wrapping it in QB removes those signals; the
security benchmarks reproduce that claim.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import Dict, List, Sequence

from repro.crypto.base import (
    EncryptedRow,
    EncryptedSearchScheme,
    LeakageProfile,
    SearchToken,
)
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    encode_value,
    encrypt_many,
    prf,
    prf_many,
)
from repro.data.relation import Row


def _occurrence_counter() -> "defaultdict[object, int]":
    """Module-level factory so scheme instances stay picklable.

    Process-backed fleet members receive their scheme copy over a pipe; a
    ``defaultdict(lambda: ...)`` would make every Arx instance unpicklable.
    """
    return defaultdict(int)


class ArxIndexScheme(EncryptedSearchScheme):
    """Counter-based indexable encryption with owner-side occurrence counters."""

    name = "arx-index"

    #: The whole point of Arx: ``(value, occurrence)`` tags are stable, so
    #: the cloud maintains a regular exact-match index over them.
    supports_tag_index = True

    #: Batched tag computation (one HMAC key schedule per batch) and batched
    #: row encryption/decryption; tags stay bit-identical to the scalar path.
    supports_batch = True

    #: Relative search-cost factor vs cleartext (the paper measures β ≈ 1.4-2.5
    #: for Arx because the cloud uses a regular index).
    beta_estimate = 2.0

    def __init__(self, key: SecretKey | None = None):
        self._key = key or SecretKey.generate()
        self._row_key = self._key.derive("row")
        self._tag_key = self._key.derive("tag")
        # Owner-side metadata: attribute -> value -> number of occurrences seen.
        self._counters: Dict[str, Dict[object, int]] = defaultdict(
            _occurrence_counter
        )

    @property
    def leakage(self) -> LeakageProfile:
        return LeakageProfile(
            name=self.name,
            leaks_output_size=True,
            leaks_frequency=False,  # not at rest; only at query time
            leaks_order=False,
            leaks_access_pattern=True,
            deterministic=False,
        )

    def _tag(self, attribute: str, value: object, occurrence: int) -> bytes:
        material = (
            attribute.encode()
            + b"|"
            + encode_value(value)
            + b"|"
            + occurrence.to_bytes(8, "big")
        )
        return prf(self._tag_key.material, material)

    def _tag_material(self, attribute: str, value: object, occurrence: int) -> bytes:
        return (
            attribute.encode()
            + b"|"
            + encode_value(value)
            + b"|"
            + occurrence.to_bytes(8, "big")
        )

    # -- owner side -------------------------------------------------------------
    def encrypt_rows(self, rows: Sequence[Row], attribute: str) -> List[EncryptedRow]:
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            return self._encrypt_rows_scalar(rows, attribute)
        self.batch_calls += 1
        rows = list(rows)
        counters = self._counters[attribute]
        materials: List[bytes] = []
        payloads: List[bytes] = []
        for row in rows:
            value = row[attribute]
            occurrence = counters[value]
            counters[value] = occurrence + 1
            materials.append(self._tag_material(attribute, value, occurrence))
            payloads.append(
                pickle.dumps(
                    {
                        "rid": row.rid,
                        "values": dict(row.values),
                        "sensitive": row.sensitive,
                    }
                )
            )
        ciphertexts = encrypt_many(self._row_key, payloads)
        tags = prf_many(self._tag_key.material, materials)
        return [
            EncryptedRow(rid=row.rid, ciphertext=ciphertext, search_tag=tag)
            for row, ciphertext, tag in zip(rows, ciphertexts, tags)
        ]

    def _encrypt_rows_scalar(
        self, rows: Sequence[Row], attribute: str
    ) -> List[EncryptedRow]:
        """Scalar reference loop (parity baseline for the batch path)."""
        encrypted: List[EncryptedRow] = []
        counters = self._counters[attribute]
        for row in rows:
            value = row[attribute]
            occurrence = counters[value]
            counters[value] = occurrence + 1
            payload = pickle.dumps(
                {"rid": row.rid, "values": dict(row.values), "sensitive": row.sensitive}
            )
            encrypted.append(
                EncryptedRow(
                    rid=row.rid,
                    ciphertext=aead_encrypt(self._row_key, payload),
                    search_tag=self._tag(attribute, value, occurrence),
                )
            )
        return encrypted

    def tokens_for_values(
        self, values: Sequence[object], attribute: str
    ) -> List[SearchToken]:
        """Generate one token per stored occurrence of each requested value."""
        counters = self._counters.get(attribute, {})
        if not self.use_batch:
            self.scalar_fallback_calls += 1
            tokens: List[SearchToken] = []
            for value in values:
                for occurrence in range(counters.get(value, 0)):
                    tokens.append(
                        SearchToken(
                            payload=self._tag(attribute, value, occurrence),
                            hint=occurrence,
                        )
                    )
            return tokens
        self.batch_calls += 1
        materials: List[bytes] = []
        hints: List[int] = []
        for value in values:
            for occurrence in range(counters.get(value, 0)):
                materials.append(self._tag_material(attribute, value, occurrence))
                hints.append(occurrence)
        return [
            SearchToken(payload=payload, hint=hint)
            for payload, hint in zip(prf_many(self._tag_key.material, materials), hints)
        ]

    def decrypt_row(self, encrypted: EncryptedRow) -> Row:
        payload = pickle.loads(aead_decrypt(self._row_key, encrypted.ciphertext))
        return Row(
            rid=payload["rid"], values=payload["values"], sensitive=payload["sensitive"]
        )

    def decrypt_rows_many(self, encrypted: Sequence[EncryptedRow]) -> List[Row]:
        if not self.use_batch:
            return super().decrypt_rows_many(encrypted)
        self.batch_calls += 1
        return self._decrypt_row_payloads(self._row_key, encrypted)

    # -- cloud side ----------------------------------------------------------------
    def search(
        self, stored: Sequence[EncryptedRow], tokens: Sequence[SearchToken]
    ) -> List[EncryptedRow]:
        """Exact-match probes against a tag index (built lazily per call)."""
        index: Dict[bytes, List[EncryptedRow]] = defaultdict(list)
        for row in stored:
            index[row.search_tag].append(row)
        matches: List[EncryptedRow] = []
        for token in tokens:
            matches.extend(index.get(token.payload, ()))
        return matches

    def indexed_search(self, index, tokens: Sequence[SearchToken]) -> List[EncryptedRow]:
        """Per-token probes (Arx returns one row per token, in token order).

        Uses the index's batch probe when available; token order and
        multiplicity — and the per-key work counters — are identical to the
        per-token loop.
        """
        matches: List[EncryptedRow] = []
        extend = matches.extend
        probe_many = getattr(index, "probe_many", None)
        if probe_many is not None:
            for bucket in probe_many([token.payload for token in tokens]):
                extend(row for _position, row in bucket)
        else:  # pragma: no cover - index without a batch probe surface
            for token in tokens:
                extend(row for _position, row in index.probe(token.payload))
        return matches

    # -- metadata accessors -----------------------------------------------------
    def occurrence_count(self, attribute: str, value: object) -> int:
        """The owner's histogram entry for ``value`` (metadata size driver)."""
        return self._counters.get(attribute, {}).get(value, 0)
