"""Two-party Distributed Point Functions (DPF), Boyle-Gilboa-Ishai style.

A DPF splits the point function ``f_{α,β}(x) = β if x == α else 0`` into two
keys such that each key alone reveals nothing about ``α`` or ``β``, while the
sum of both parties' evaluations at any point equals ``f_{α,β}(x)``.  The
paper lists DPF (ref [6]) among the strong secret-sharing-based techniques QB
is designed to accelerate: two non-colluding servers can privately test every
record against the hidden point, at the price of evaluating the whole domain.

The implementation follows the classic GGM-tree construction with per-level
correction words; the PRG is instantiated from HMAC-SHA256.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.primitives import prf, random_bytes
from repro.exceptions import CryptoError

_SEED_BYTES = 16
#: Output group modulus: a 61-bit Mersenne prime keeps arithmetic fast.
OUTPUT_MODULUS = (1 << 61) - 1


def _expand(seed: bytes) -> Tuple[bytes, int, bytes, int]:
    """PRG: one 16-byte seed -> (left seed, left bit, right seed, right bit)."""
    block = prf(seed, b"dpf-expand")
    bits = prf(seed, b"dpf-bits")[0]
    return block[:_SEED_BYTES], bits & 1, block[_SEED_BYTES:], (bits >> 1) & 1


def _xor(first: bytes, second: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(first, second))


def _convert(seed: bytes, modulus: int) -> int:
    """Map a seed into the output group."""
    return int.from_bytes(prf(seed, b"dpf-convert")[:8], "big") % modulus


@dataclass(frozen=True)
class CorrectionWord:
    seed: bytes
    t_left: int
    t_right: int


@dataclass(frozen=True)
class DPFKey:
    """One party's key: its identity, root seed, and the correction words."""

    party: int
    root_seed: bytes
    corrections: Tuple[CorrectionWord, ...]
    final_correction: int
    domain_bits: int


class DistributedPointFunction:
    """Generator/evaluator for two-party DPFs over a ``2**domain_bits`` domain."""

    def __init__(self, domain_bits: int, modulus: int = OUTPUT_MODULUS):
        if domain_bits < 1:
            raise CryptoError("domain_bits must be at least 1")
        if modulus < 2:
            raise CryptoError("modulus must be at least 2")
        self.domain_bits = domain_bits
        self.modulus = modulus

    @property
    def domain_size(self) -> int:
        return 1 << self.domain_bits

    def generate(self, alpha: int, beta: int = 1) -> Tuple[DPFKey, DPFKey]:
        """Produce the two keys hiding the point ``(alpha, beta)``."""
        if not 0 <= alpha < self.domain_size:
            raise CryptoError(
                f"alpha {alpha} outside domain [0, {self.domain_size})"
            )
        root_seeds = [random_bytes(_SEED_BYTES), random_bytes(_SEED_BYTES)]
        seeds = list(root_seeds)
        bits = [0, 1]
        corrections: List[CorrectionWord] = []

        for level in range(self.domain_bits):
            alpha_bit = (alpha >> (self.domain_bits - 1 - level)) & 1
            left0, t_left0, right0, t_right0 = _expand(seeds[0])
            left1, t_left1, right1, t_right1 = _expand(seeds[1])

            if alpha_bit == 0:
                seed_cw = _xor(right0, right1)  # make the "lose" (right) path agree
            else:
                seed_cw = _xor(left0, left1)
            t_left_cw = t_left0 ^ t_left1 ^ alpha_bit ^ 1
            t_right_cw = t_right0 ^ t_right1 ^ alpha_bit
            corrections.append(
                CorrectionWord(seed=seed_cw, t_left=t_left_cw, t_right=t_right_cw)
            )

            keep = (
                ((left0, t_left0), (left1, t_left1))
                if alpha_bit == 0
                else ((right0, t_right0), (right1, t_right1))
            )
            keep_cw = t_left_cw if alpha_bit == 0 else t_right_cw
            new_seeds, new_bits = [], []
            for party in (0, 1):
                seed_keep, t_keep = keep[party]
                if bits[party]:
                    seed_keep = _xor(seed_keep, seed_cw)
                    t_keep ^= keep_cw
                new_seeds.append(seed_keep)
                new_bits.append(t_keep)
            seeds, bits = new_seeds, new_bits

        sign = -1 if bits[1] else 1
        final = (
            sign
            * (beta - _convert(seeds[0], self.modulus) + _convert(seeds[1], self.modulus))
        ) % self.modulus

        return (
            DPFKey(0, root_seeds[0], tuple(corrections), final, self.domain_bits),
            DPFKey(1, root_seeds[1], tuple(corrections), final, self.domain_bits),
        )

    def evaluate(self, key: DPFKey, x: int) -> int:
        """Evaluate one party's share of ``f(x)``."""
        if key.domain_bits != self.domain_bits:
            raise CryptoError("key domain does not match evaluator domain")
        if not 0 <= x < self.domain_size:
            raise CryptoError(f"x {x} outside domain [0, {self.domain_size})")
        seed = key.root_seed
        t_bit = key.party
        for level, correction in enumerate(key.corrections):
            left, t_left, right, t_right = _expand(seed)
            if t_bit:
                left = _xor(left, correction.seed)
                right = _xor(right, correction.seed)
                t_left ^= correction.t_left
                t_right ^= correction.t_right
            x_bit = (x >> (self.domain_bits - 1 - level)) & 1
            seed, t_bit = (left, t_left) if x_bit == 0 else (right, t_right)
        share = (_convert(seed, self.modulus) + t_bit * key.final_correction) % self.modulus
        if key.party == 1:
            share = (-share) % self.modulus
        return share

    def evaluate_full(self, key: DPFKey) -> List[int]:
        """Evaluate one key over the whole domain (what a DPF server does)."""
        return [self.evaluate(key, x) for x in range(self.domain_size)]

    def reconstruct(self, share0: int, share1: int) -> int:
        """Combine both parties' shares into the point-function output."""
        return (share0 + share1) % self.modulus
