"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in environments without the ``wheel`` package
or network access (``pip install -e . --no-build-isolation --no-use-pep517``
or ``python setup.py develop``).
"""

from setuptools import setup

setup()
