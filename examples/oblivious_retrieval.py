#!/usr/bin/env python3
"""Composing QB with access-pattern-hiding techniques (ORAM / PIR) and the
group-by aggregation extension.

The paper points out that QB does not hide *which* encrypted tuples are
returned (the access pattern) and suggests layering ORAM or PIR on the
sensitive side.  This example shows both compositions on the Employee data:

1. the sensitive rows are additionally stored in a Path ORAM, so fetching a
   bin touches a uniformly random tree path instead of named addresses;
2. alternatively, single rows are fetched by index through a two-server PIR
   built on distributed point functions;
3. finally, the group-by aggregation extension computes per-department
   statistics through the ordinary QB machinery.

Run with:  python examples/oblivious_retrieval.py
"""

import pickle
import random

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.oram import ObliviousRowStore
from repro.crypto.pir import TwoServerPIR
from repro.data.partition import SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.extensions.aggregation import GroupByAggregator


def payroll_relation() -> Relation:
    schema = Schema(
        [Attribute("dept"), Attribute("salary", dtype=int), Attribute("employee")]
    )
    relation = Relation("payroll", schema)
    rng = random.Random(5)
    departments = ["defense", "design", "it", "hr"]
    for index in range(48):
        dept = departments[index % len(departments)]
        relation.insert(
            {
                "dept": dept,
                "salary": 50_000 + rng.randrange(0, 60_000, 1000),
                "employee": f"emp{index:02d}",
            },
            sensitive=(dept == "defense"),
        )
    return relation


def main() -> None:
    relation = payroll_relation()
    partition = partition_relation(relation, SensitivityPolicy())
    engine = QueryBinningEngine(
        partition=partition,
        attribute="dept",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(11),
    ).setup()

    # 1. Path ORAM over the sensitive rows -------------------------------------
    sensitive_rows = list(partition.sensitive.rows)
    store = ObliviousRowStore(capacity=len(sensitive_rows) * 2)
    for row in sensitive_rows:
        store.store_row(row.rid, pickle.dumps(row.as_dict()))
    binned = engine.rewrite("defense")
    fetched = [
        pickle.loads(store.fetch_row(row.rid))
        for row in sensitive_rows
        if row["dept"] in binned.sensitive_values
    ]
    print(
        f"Path ORAM: fetched {len(fetched)} sensitive rows for the defense bin via "
        f"{store.accesses} oblivious accesses "
        f"({store.server.bucket_reads} bucket reads — the cloud saw only random paths)"
    )

    # 2. Two-server PIR over the encrypted sensitive rows ------------------------
    records = [pickle.dumps(row.as_dict()) for row in sensitive_rows]
    pir = TwoServerPIR(records)
    target = 3
    record = pickle.loads(pir.retrieve(target).rstrip(b"\x00"))
    print(
        f"Two-server PIR: privately retrieved record #{target} "
        f"({record['employee']}, {record['dept']}) without revealing the index "
        f"to either server"
    )

    # 3. Group-by aggregation through QB -------------------------------------------
    aggregator = GroupByAggregator(engine)
    results, trace = aggregator.aggregate(
        measure="salary", functions=("count", "avg", "max")
    )
    print(
        f"\nGroup-by aggregation over the binned attribute "
        f"({trace.cloud_round_trips} cloud round trips for {trace.groups} groups):"
    )
    for result in sorted(results, key=lambda r: str(r.group)):
        print(
            f"  {result.group:<10} count={result.count:>2}  "
            f"avg salary={result.avg:>9.0f}  max={result.max}"
        )


if __name__ == "__main__":
    main()
