#!/usr/bin/env python3
"""Selection queries over a TPC-H-shaped LINEITEM table with Query Binning.

Mirrors the paper's §V experimental setup at laptop scale: a synthetic
LINEITEM relation is partitioned by sensitivity fraction α, outsourced through
QB, and queried on ``L_PARTKEY``.  The script reports the measured retrieval
footprint, the owner's metadata size, and the analytical η ratio against a
fully-encrypted baseline for several values of α.

Run with:  python examples/tpch_selection.py [num_rows]
"""

import random
import sys
import time

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import partition_by_fraction
from repro.model.cost import eta_simplified
from repro.model.parameters import CostParameters
from repro.workloads.tpch import estimated_metadata_bytes, generate_lineitem


def run_for_alpha(lineitem, alpha: float, params: CostParameters) -> None:
    partition = partition_by_fraction(lineitem, "L_PARTKEY", alpha)
    engine = QueryBinningEngine(
        partition=partition,
        attribute="L_PARTKEY",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(3),
    ).setup()

    values = lineitem.distinct_values("L_PARTKEY")
    sample = random.Random(1).sample(values, min(50, len(values)))
    start = time.perf_counter()
    # batched=False: this prints *per-query* latency, which batch-level
    # deduplication of repeated bin-pair retrievals would understate.
    traces = engine.execute_workload(sample, batched=False)
    elapsed = time.perf_counter() - start

    avg_rows = sum(t.total_rows_returned for t in traces) / len(traces)
    eta = eta_simplified(
        engine.metadata.alpha,
        engine.layout.max_sensitive_bin_size,
        engine.layout.max_non_sensitive_bin_size,
        params,
    )
    print(
        f"  alpha={alpha:4.0%}  bins={engine.layout.num_sensitive_bins}x"
        f"{engine.layout.num_non_sensitive_bins}"
        f"  avg rows/query={avg_rows:6.1f}"
        f"  measured {elapsed / len(sample) * 1e3:6.2f} ms/query"
        f"  analytical eta={eta:.3f} (<1 means QB beats full encryption)"
    )


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"Generating a LINEITEM-shaped relation with {num_rows} rows ...")
    lineitem = generate_lineitem(num_rows=num_rows, seed=42)
    print(
        f"  {len(lineitem.distinct_values('L_PARTKEY'))} distinct L_PARTKEY values, "
        f"owner metadata ≈ {estimated_metadata_bytes(lineitem, 'L_PARTKEY') / 1024:.1f} KiB"
    )

    params = CostParameters.from_ratios(gamma=25_000, beta=1_000, selectivity=0.01)
    print(
        "\nQB vs fully-encrypted execution (strong crypto, gamma=25000) at "
        "different sensitivity levels:"
    )
    for alpha in (0.01, 0.05, 0.20, 0.40, 0.60):
        run_for_alpha(lineitem, alpha, params)

    print(
        "\nAs in the paper's Figure 6b, eta stays below 1 for every sensitivity "
        "fraction: avoiding cryptographic processing of the non-sensitive part "
        "more than pays for the wider (binned) requests."
    )


if __name__ == "__main__":
    main()
