#!/usr/bin/env python3
"""Attack demonstrations: what leaks without QB and what QB prevents (§VI).

Three scenarios over the same skewed dataset and skewed query workload:

1. a CryptDB-style deterministic store — the frequency-count attack recovers
   the exact value histogram from ciphertext equality;
2. naive partitioned execution over a non-deterministic scheme — the size and
   workload-skew attacks identify heavy values and hot queries;
3. Query Binning over the same scheme — the whole attack battery fails.

Run with:  python examples/security_attacks.py
"""

import random

from repro.adversary.attacks import run_all_attacks
from repro.baselines.cryptdb_sim import DeterministicStoreBaseline
from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.workloads.generator import generate_partitioned_dataset
from repro.workloads.queries import skewed_workload


def report(title: str, outcomes) -> None:
    print(f"\n{title}")
    for outcome in outcomes:
        status = "SUCCEEDED" if outcome.succeeded else "failed"
        print(f"  {outcome.name:<18} {status:<10} advantage={outcome.advantage:.3f}")


def main() -> None:
    dataset = generate_partitioned_dataset(
        num_values=80,
        sensitivity_fraction=0.4,
        association_fraction=0.5,
        tuples_per_value=6,
        skew_exponent=1.1,
        seed=101,
    )
    workload = skewed_workload(dataset.all_values, num_queries=300, exponent=1.4, seed=7)
    print(
        f"Dataset: {dataset.total_tuples} tuples over {len(dataset.all_values)} values "
        f"(alpha={dataset.alpha:.0%}); workload: {len(workload)} Zipf-skewed queries"
    )

    # 1. deterministic encryption of everything --------------------------------
    det = DeterministicStoreBaseline(dataset.relation, dataset.attribute).setup()
    det.execute_workload(workload[:50])
    outcomes = run_all_attacks(
        det.cloud.view_log,
        det.stored_ciphertexts(),
        num_non_sensitive_values=len(dataset.non_sensitive_counts),
        true_counts=dict(dataset.relation.value_counts(dataset.attribute)),
    )
    report("1) Deterministic encryption (CryptDB-style DET column)", outcomes)

    # 2. naive partitioned execution --------------------------------------------
    naive = NaivePartitionedEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
    ).setup()
    naive.execute_workload(workload)
    outcomes = run_all_attacks(
        naive.cloud.view_log,
        naive.cloud.stored_encrypted_rows,
        num_non_sensitive_values=len(dataset.non_sensitive_counts),
        true_counts=dataset.sensitive_counts,
    )
    report("2) Partitioned execution WITHOUT query binning", outcomes)

    # 3. query binning ------------------------------------------------------------
    qb = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(5),
    ).setup()
    qb.execute_workload(workload)
    outcomes = run_all_attacks(
        qb.cloud.view_log,
        qb.cloud.stored_encrypted_rows,
        num_non_sensitive_values=len(dataset.non_sensitive_counts),
        true_counts=dataset.sensitive_counts,
    )
    report("3) Partitioned execution WITH query binning", outcomes)

    print(
        "\nQB answers the same workload while defeating the size, frequency-count, "
        "workload-skew, and association attacks (the paper's §VI claim)."
    )


if __name__ == "__main__":
    main()
