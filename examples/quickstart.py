#!/usr/bin/env python3
"""Quickstart: Query Binning over the paper's Employee example.

Walks through the full life-cycle of the library's highest-level API:

1. build the Employee relation of Figure 1;
2. declare the sensitivity policy (SSN column + Defense rows);
3. outsource through the DB owner (partition, bin, encrypt, upload);
4. run the selection queries of Example 2;
5. audit the cloud's adversarial views against partitioned data security.

Run with:  python examples/quickstart.py
"""

from repro import DBOwner
from repro.workloads.employee import (
    build_employee_relation,
    employee_policy,
    paper_example_queries,
)


def main() -> None:
    relation = build_employee_relation()
    print(f"Original relation: {relation}")

    owner = DBOwner(relation, employee_policy(), permutation_seed=7)
    print(
        f"Partitioned into {len(owner.partition.sensitive)} sensitive and "
        f"{len(owner.partition.non_sensitive)} non-sensitive rows "
        f"(+ {len(owner.partition.vertical)} vertical SSN rows)"
    )

    engine = owner.outsource("EId")
    print("\nBin layout built by Algorithm 1:")
    print(engine.layout.describe())

    print("\nSelection queries (Example 2):")
    for value in paper_example_queries():
        rows, trace = owner.query_with_trace("EId", value)
        offices = sorted(row["Office"] for row in rows)
        print(
            f"  EId = {value}: {len(rows)} rows (offices {offices}); "
            f"request expanded to {trace.sensitive_values_requested} encrypted + "
            f"{trace.non_sensitive_values_requested} cleartext values"
        )

    # Query every domain value so the audit can check full bin-pair coverage.
    domain = sorted(
        set(owner.partition.sensitive.distinct_values("EId"))
        | set(owner.partition.non_sensitive.distinct_values("EId"))
    )
    owner.execute_workload("EId", domain)
    report = owner.audit("EId", full_domain_queried=True)
    print(
        f"\nPartitioned-data-security audit over {report.details['views_audited']} "
        f"adversarial views: secure={report.secure}"
    )
    if report.violations:
        for violation in report.violations:
            print(f"  violation: {violation}")

    print(f"\nOwner-side metadata footprint: {owner.metadata_size_bytes()} bytes")


if __name__ == "__main__":
    main()
