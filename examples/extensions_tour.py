#!/usr/bin/env python3
"""Tour of the full-version extensions: ranges, joins, inserts, multi-attribute.

Builds two small partitioned relations (employees and department budgets) and
exercises each extension on top of the core Query Binning engine.

Run with:  python examples/extensions_tour.py
"""

import random

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.extensions.inserts import IncrementalInserter
from repro.extensions.joins import BinnedJoinExecutor
from repro.extensions.multi_attribute import MultiAttributeEngine
from repro.extensions.range_queries import RangeQueryExecutor


def build_engine(partition, attribute, seed):
    return QueryBinningEngine(
        partition=partition,
        attribute=attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(seed),
    ).setup()


def employees_partition():
    schema = Schema(
        [Attribute("dept"), Attribute("grade", dtype=int), Attribute("name")]
    )
    relation = Relation("employees", schema)
    departments = ["defense", "design", "it", "hr", "ops", "lab"]
    for index in range(36):
        dept = departments[index % len(departments)]
        relation.insert(
            {"dept": dept, "grade": index % 9, "name": f"emp{index}"},
            sensitive=(dept in {"defense", "lab"}),
        )
    return partition_relation(relation, SensitivityPolicy())


def budgets_partition():
    schema = Schema([Attribute("dept"), Attribute("budget", dtype=int)])
    relation = Relation("budgets", schema)
    for dept, budget, sensitive in [
        ("defense", 900, True),
        ("design", 300, False),
        ("it", 250, False),
        ("hr", 120, False),
        ("lab", 640, True),
    ]:
        relation.insert({"dept": dept, "budget": budget}, sensitive=sensitive)
    return partition_relation(relation, SensitivityPolicy())


def main() -> None:
    employees = employees_partition()
    budgets = budgets_partition()

    # 1. range queries ---------------------------------------------------------
    grade_engine = build_engine(employees, "grade", seed=1)
    executor = RangeQueryExecutor(grade_engine)
    rows, trace = executor.query_range(3, 5)
    print(
        f"Range query grade in [3, 5]: {trace.rows_returned} rows via "
        f"{trace.distinct_bin_pairs} distinct bin pairs "
        f"({trace.covered_values} covered values)"
    )

    # 2. equi-join on the binned attribute -------------------------------------
    left = build_engine(employees, "dept", seed=2)
    right = build_engine(budgets, "dept", seed=3)
    joined, join_trace = BinnedJoinExecutor(left, right).execute()
    print(
        f"Join employees ⋈ budgets on dept: {join_trace.output_rows} rows from "
        f"{join_trace.join_values_probed} join values"
    )
    sample = joined[0].as_dict()
    print(f"  sample joined row: {sample}")

    # 3. inserts ---------------------------------------------------------------------
    inserter = IncrementalInserter(left, rebin_threshold=8)
    inserter.insert({"dept": "finance", "grade": 4, "name": "new-cfo"}, sensitive=True)
    inserter.insert({"dept": "design", "grade": 2, "name": "new-designer"}, sensitive=False)
    print(
        f"Inserts absorbed: {inserter.stats.total} "
        f"(re-binnings triggered: {inserter.stats.rebins_triggered}); "
        f"query for the new sensitive dept returns "
        f"{len(left.query('finance'))} row(s)"
    )

    # 4. multi-attribute search ---------------------------------------------------
    multi = MultiAttributeEngine(
        employees, ["dept", "grade"], permutation_seed=9
    ).setup()
    conjunctive = multi.conjunctive_query({"dept": "design", "grade": 7})
    print(
        f"Multi-attribute conjunctive query dept=design AND grade=7: "
        f"{[row['name'] for row in conjunctive]}"
    )
    print(f"  total owner metadata across attributes: {multi.total_metadata_bytes()} bytes")


if __name__ == "__main__":
    main()
