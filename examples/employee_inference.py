#!/usr/bin/env python3
"""The inference attack of §II and how Query Binning stops it.

Replays the paper's Example 2 / Table II (naive partitioned execution leaks
which employees work only in Defense, only in Design, or in both) and then the
same three queries under QB / Table III (the adversary learns nothing).

Run with:  python examples/employee_inference.py
"""

import random

from repro.adversary.attacks import kpa_association_attack
from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.workloads.employee import employee_partition, paper_example_queries


def describe_views(title: str, view_log) -> None:
    print(f"\n{title}")
    print(f"{'query #':>8} | {'cleartext request':<32} | {'returned rids (enc)':<20} | cleartext rows")
    for view in view_log:
        request = ", ".join(map(str, view.non_sensitive_request)) or "-"
        rids = ", ".join(f"E(t{rid})" for rid in view.returned_sensitive_rids) or "null"
        plain = ", ".join(row["EId"] for row in view.returned_non_sensitive) or "null"
        print(f"{view.query_id:>8} | {request:<32} | {rids:<20} | {plain}")


def main() -> None:
    queries = paper_example_queries()

    # --- naive partitioned execution (Table II) -----------------------------
    naive = NaivePartitionedEngine(
        partition=employee_partition(),
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
    ).setup()
    for value in queries:
        naive.query(value)
    describe_views("Table II — adversarial view without QB", naive.cloud.view_log)

    outcome = kpa_association_attack(naive.cloud.view_log, num_non_sensitive_values=4)
    print(
        f"\nAssociation attack against the naive execution: succeeded={outcome.succeeded} "
        f"(posterior {outcome.details['best_posterior']:.2f} vs prior {outcome.details['prior']:.2f})"
    )
    print(
        "  values exposed as existing only in the clear:"
        f" {outcome.details['values_exposed_as_non_sensitive_only']}"
    )

    # --- the same queries under Query Binning (Table III) --------------------
    qb = QueryBinningEngine(
        partition=employee_partition(),
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(23),
    ).setup()
    for value in queries:
        qb.query(value)
    describe_views("Table III — adversarial view with QB", qb.cloud.view_log)

    outcome = kpa_association_attack(qb.cloud.view_log, num_non_sensitive_values=4)
    print(
        f"\nAssociation attack against QB: succeeded={outcome.succeeded} "
        f"(posterior {outcome.details['best_posterior']:.2f} vs prior {outcome.details['prior']:.2f})"
    )
    print("\nQB keeps the answers identical while hiding the associations.")


if __name__ == "__main__":
    main()
