"""Table III — adversarial view of the same queries under Query Binning.

Regenerates Table III: every request now names a whole bin on each side, the
returned encrypted/cleartext sets are identical across the three queries'
sensitive bin, and the association attack gains nothing.
"""

from repro.adversary.attacks import kpa_association_attack, size_attack
from repro.workloads.employee import employee_partition, paper_example_queries

from benchmarks.helpers import build_qb_engine, print_table


def run_qb_queries():
    engine = build_qb_engine(employee_partition(), "EId", seed=23)
    for value in paper_example_queries():
        engine.query(value)
    return engine


def test_table3_qb_views(benchmark):
    engine = benchmark(run_qb_queries)

    rows = []
    for value, view in zip(paper_example_queries(), engine.cloud.view_log):
        encrypted = ", ".join(f"E(t{rid + 1})" for rid in sorted(view.returned_sensitive_rids))
        cleartext = ", ".join(sorted(row["EId"] for row in view.returned_non_sensitive))
        rows.append((value, encrypted or "null", cleartext or "null"))
    print_table(
        "Table III: queries and returned tuples (with QB)",
        ["query value", "Employee2 (encrypted)", "Employee3 (cleartext request result)"],
        rows,
    )

    # QB shape: every request covers a bin of >= 2 values on each side, and
    # correctness is preserved.
    for view in engine.cloud.view_log:
        assert len(view.non_sensitive_request) >= 2
        assert view.sensitive_request_size >= 2
    assert len(engine.query("E259")) == 2
    assert len(engine.query("E101")) == 1
    assert len(engine.query("E199")) == 1

    attack = kpa_association_attack(engine.cloud.view_log, num_non_sensitive_values=4)
    print(f"  association attack succeeded: {attack.succeeded}")
    assert not attack.succeeded
    assert not size_attack(engine.cloud.view_log).succeeded
