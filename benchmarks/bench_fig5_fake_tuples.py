"""Figure 5 — minimising fake tuples when packing weighted sensitive values.

The paper's example: 9 sensitive values with 10, 20, ..., 90 tuples packed
into 3 bins.  The naive split (Figure 5a: {10,20,30}, {40,50,60}, {70,80,90})
needs 270 fake tuples to equalise the bins; the balanced packing (Figure 5b)
needs none.  The benchmark runs the library's greedy packer and checks it
lands near the balanced optimum and far below the naive split.
"""

import random

from repro.core.general_binning import create_general_bins

from benchmarks.helpers import print_table

COUNTS = {f"s{i}": 10 * i for i in range(1, 10)}
NON_SENSITIVE = {f"n{i}": 1 for i in range(9)}


def naive_split_fakes() -> int:
    """Fake tuples required by the Figure 5a assignment."""
    bins = [[10, 20, 30], [40, 50, 60], [70, 80, 90]]
    totals = [sum(b) for b in bins]
    return sum(max(totals) - total for total in totals)


def pack():
    return create_general_bins(
        COUNTS,
        NON_SENSITIVE,
        num_sensitive_bins=3,
        num_non_sensitive_bins=3,
        rng=random.Random(5),
    )


def test_figure5_fake_tuple_minimisation(benchmark):
    result = benchmark(pack)

    rows = []
    for bin_ in result.layout.sensitive_bins:
        rows.append(
            (
                f"SB{bin_.index}",
                ", ".join(map(str, bin_.values)),
                result.tuples_per_bin[bin_.index],
                result.fake_tuples[bin_.index],
            )
        )
    print_table(
        "Figure 5: greedy packing of 9 weighted sensitive values into 3 bins",
        ["bin", "values", "real tuples", "fake tuples added"],
        rows,
    )
    print(
        f"  total fakes: greedy={result.total_fake_tuples}, "
        f"naive Figure 5a split={naive_split_fakes()}, balanced optimum=0"
    )

    # Shape: the greedy packing is close to the optimum and far below naive.
    assert result.total_fake_tuples <= 30
    assert result.total_fake_tuples < naive_split_fakes() / 4
    padded = {
        index: result.tuples_per_bin[index] + result.fake_tuples[index]
        for index in result.tuples_per_bin
    }
    assert len(set(padded.values())) == 1  # bins are perfectly equalised after padding
