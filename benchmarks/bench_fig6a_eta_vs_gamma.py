"""Figure 6a — the analytical η = α + ρ(|SB|+|NSB|)/γ curves.

Sweeps γ from 100 to 50 000 for α ∈ {0.3, 0.6, 0.9, 1.0} at ρ = 10 % (the
paper's setting) with |SB| = |NSB| = √|NS| and checks the figure's shape:
η falls towards α as γ grows, curves are ordered by α, and for every α < 1
there is a crossover γ beyond which QB beats full encryption (η < 1).
"""

from repro.model.cost import crossover_gamma, eta_sweep

from benchmarks.helpers import print_table

GAMMAS = [100, 500, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000]
ALPHAS = [0.3, 0.6, 0.9, 1.0]
NUM_NON_SENSITIVE_VALUES = 40_000
RHO = 0.10


def sweep():
    return eta_sweep(GAMMAS, ALPHAS, NUM_NON_SENSITIVE_VALUES, rho=RHO)


def test_figure6a_eta_vs_gamma(benchmark):
    curves = benchmark(sweep)

    rows = []
    for gamma in GAMMAS:
        row = [gamma]
        for alpha in ALPHAS:
            eta = dict(curves[alpha])[gamma]
            row.append(f"{eta:.3f}")
        rows.append(tuple(row))
    print_table(
        "Figure 6a: eta as a function of gamma (rho = 10%)",
        ["gamma"] + [f"alpha={alpha}" for alpha in ALPHAS],
        rows,
    )
    for alpha in (0.3, 0.6, 0.9):
        print(
            f"  crossover gamma for alpha={alpha}: "
            f"{crossover_gamma(alpha, NUM_NON_SENSITIVE_VALUES, rho=RHO):.0f}"
        )

    # Shape assertions.
    for alpha in ALPHAS:
        etas = [eta for _gamma, eta in curves[alpha]]
        assert etas == sorted(etas, reverse=True)  # eta decreases with gamma
        assert abs(etas[-1] - alpha) < 0.25  # eta tends to alpha for large gamma
    # Ordering by alpha at every gamma.
    for gamma in GAMMAS:
        at_gamma = [dict(curves[alpha])[gamma] for alpha in ALPHAS]
        assert at_gamma == sorted(at_gamma)
    # QB eventually wins for every alpha < 1 but never for alpha = 1.
    assert dict(curves[0.9])[50_000] < 1.0
    assert all(eta >= 1.0 for _gamma, eta in curves[1.0])
