"""§VI — QB turns an indexable (Arx-style) scheme into one that resists the
size, frequency-count, and workload-skew attacks.

Two executions over the same skewed dataset and the same Zipf query workload,
both using the Arx-style counter encryption as the underlying technique:

* without QB (exact-value queries) the attacks succeed — output sizes reveal
  heavy values and the hot query is pinned exactly;
* with QB the whole battery fails, at the cost of wider (bin-sized) requests.
"""

import pytest

from repro.adversary.attacks import run_all_attacks
from repro.crypto.arx_index import ArxIndexScheme
from repro.workloads.generator import generate_partitioned_dataset
from repro.workloads.queries import skewed_workload

from benchmarks.helpers import build_naive_engine, build_qb_engine, print_table


def dataset():
    return generate_partitioned_dataset(
        num_values=60,
        sensitivity_fraction=0.5,
        association_fraction=0.5,
        tuples_per_value=5,
        skew_exponent=1.2,
        seed=17,
    )


def run_both():
    data = dataset()
    workload = skewed_workload(data.all_values, num_queries=200, exponent=1.4, seed=3)

    naive = build_naive_engine(data.partition, data.attribute, scheme=ArxIndexScheme())
    naive.execute_workload(workload)
    naive_outcomes = run_all_attacks(
        naive.cloud.view_log,
        naive.cloud.stored_encrypted_rows,
        num_non_sensitive_values=len(data.non_sensitive_counts),
        true_counts=data.sensitive_counts,
    )

    qb = build_qb_engine(data.partition, data.attribute, seed=29, scheme=ArxIndexScheme())
    qb.execute_workload(workload)
    qb_outcomes = run_all_attacks(
        qb.cloud.view_log,
        qb.cloud.stored_encrypted_rows,
        num_non_sensitive_values=len(data.non_sensitive_counts),
        true_counts=data.sensitive_counts,
    )
    return naive_outcomes, qb_outcomes


def test_arx_with_and_without_qb(benchmark):
    naive_outcomes, qb_outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for naive_outcome, qb_outcome in zip(naive_outcomes, qb_outcomes):
        rows.append(
            (
                naive_outcome.name,
                "succeeds" if naive_outcome.succeeded else "fails",
                "succeeds" if qb_outcome.succeeded else "fails",
            )
        )
    print_table(
        "Attacks against the Arx-style indexable scheme (skewed workload)",
        ["attack", "without QB", "with QB"],
        rows,
    )

    by_name_naive = {o.name: o for o in naive_outcomes}
    by_name_qb = {o.name: o for o in qb_outcomes}
    # Without QB the size and workload-skew attacks succeed (§VI's premise)...
    assert by_name_naive["size"].succeeded
    assert by_name_naive["workload-skew"].succeeded
    # ... and with QB every attack in the battery fails (§VI's claim).
    assert all(not outcome.succeeded for outcome in qb_outcomes), [
        o.name for o in qb_outcomes if o.succeeded
    ]
