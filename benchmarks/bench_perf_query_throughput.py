"""Cloud query throughput: naive scan vs. tag index vs. bin-addressed store.

Unlike the paper-reproduction benchmarks, this one measures the *systems* side
of the reproduction: how fast the :class:`~repro.cloud.server.CloudServer`
serves binned requests under each of its three sensitive-side search paths
(linear scan, :class:`~repro.cloud.indexes.EncryptedTagIndex`, bin-addressed
store).  The owner-side work (query rewriting, token generation) is done once
outside the timed region — the benchmark isolates the cloud subsystem the
index work optimised.  Each indexed path is compared against the linear-scan
baseline *of the same scheme*, so speedups are like for like:

* ``deterministic`` tags → tag index vs. scanning every ciphertext;
* ``sse`` (no stable tags, per-row PRF trial-testing) → bin-addressed store
  vs. trial-testing the whole relation.

Two metrics per configuration:

* **queries/sec** — cloud-side service rate (process_request / process_batch);
* **rows scanned** — encrypted rows examined per query
  (``CloudStatistics.sensitive_rows_scanned``), the hardware-independent
  signal behind the speedup.

Run directly to sweep 1k/10k/100k rows and write the ``BENCH_throughput.json``
trajectory file::

    PYTHONPATH=src python benchmarks/bench_perf_query_throughput.py

or as a quick perf smoke via ``pytest -m perf`` (reduced sizes, see
``tests/test_perf_throughput.py``).  The full-scale acceptance assertion in
this file is NOT auto-collected (``bench_*.py`` does not match pytest's
``python_files``); run it explicitly::

    PYTHONPATH=src python -m pytest -m perf -q benchmarks/bench_perf_query_throughput.py
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.cloud.server import BatchRequest, CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.crypto.searchable import SSEScheme

from benchmarks.helpers import print_table

TUPLES_PER_VALUE = 10
DEFAULT_SIZES: Tuple[int, ...] = (1_000, 10_000, 100_000)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: name -> (scheme factory, encrypted indexes enabled, batched, baseline name).
#: A ``None`` baseline marks the config *as* a baseline for its scheme.
CONFIGS: Dict[str, Tuple] = {
    "linear-scan": (DeterministicScheme, False, False, None),
    "tag-index": (DeterministicScheme, True, False, "linear-scan"),
    "tag-index+batch": (DeterministicScheme, True, True, "linear-scan"),
    "sse-linear-scan": (SSEScheme, False, False, None),
    "sse-bin-store": (SSEScheme, True, False, "sse-linear-scan"),
}

#: Query budgets, scaled down for the scan-heavy paths so the full 100k sweep
#: stays in tens of seconds; qps is an average either way.  SSE trial-testing
#: the whole relation is orders of magnitude slower than everything else, so
#: its linear baseline gets the smallest budget.
QUERY_BUDGET = {
    "linear-scan": 30,
    "tag-index": 500,
    "tag-index+batch": 500,
    "sse-linear-scan": 3,
    "sse-bin-store": 30,
}


def _build_dataset(size: int, seed: int):
    from repro.workloads.generator import generate_partitioned_dataset

    return generate_partitioned_dataset(
        num_values=size // TUPLES_PER_VALUE,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=TUPLES_PER_VALUE,
        seed=seed,
    )


def _build_engine(dataset, scheme_factory, use_encrypted_indexes: bool):
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme_factory(SecretKey.from_passphrase("bench-throughput")),
        cloud=CloudServer(use_encrypted_indexes=use_encrypted_indexes),
        rng=random.Random(13),
    )
    return engine.setup()


def _prepare_requests(engine, values: Sequence[object]) -> List[BatchRequest]:
    """Owner-side rewrite + token generation, done outside the timed region.

    Delegates to the engine's own request builder so the benchmark measures
    exactly the request stream the batched execution path sends.
    """
    requests, _slots = engine.build_requests(values)
    return requests


def _measure_cloud(engine, requests: Sequence[BatchRequest], batched: bool) -> Dict:
    cloud = engine.cloud
    scanned_before = cloud.stats.sensitive_rows_scanned
    started = time.perf_counter()
    if batched:
        cloud.process_batch(requests)
    else:
        for request in requests:
            cloud.process_request(
                request.attribute,
                request.cleartext_values,
                request.tokens,
                sensitive_bin_index=request.sensitive_bin_index,
                non_sensitive_bin_index=request.non_sensitive_bin_index,
            )
    elapsed = time.perf_counter() - started
    scanned = cloud.stats.sensitive_rows_scanned - scanned_before
    queries = len(requests)
    return {
        "queries": queries,
        "elapsed_seconds": elapsed,
        "queries_per_second": queries / elapsed if elapsed > 0 else float("inf"),
        "rows_scanned": scanned,
        "rows_scanned_per_query": scanned / queries if queries else 0.0,
    }


def run_throughput_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    query_budget: Optional[Dict[str, int]] = None,
    out_path: Optional[Path] = OUTPUT_PATH,
    seed: int = 29,
    configs: Optional[Sequence[str]] = None,
) -> Dict:
    """Sweep sizes × configurations; optionally write the trajectory JSON.

    ``configs`` restricts the sweep to a subset of :data:`CONFIGS` (a config
    with a baseline pulls its baseline in automatically) — used by the perf
    smoke tests to scale each scheme's comparison independently.
    """
    budgets = dict(QUERY_BUDGET)
    if query_budget:
        budgets.update(query_budget)
    if configs is None:
        selected = dict(CONFIGS)
    else:
        wanted = set(configs)
        for name in configs:
            baseline = CONFIGS[name][3]
            if baseline is not None:
                wanted.add(baseline)
        selected = {name: spec for name, spec in CONFIGS.items() if name in wanted}
    results: Dict = {
        "benchmark": "query_throughput",
        "tuples_per_value": TUPLES_PER_VALUE,
        "configs": list(selected),
        "sizes": [],
    }
    for size in sizes:
        dataset = _build_dataset(size, seed)
        entry: Dict = {"relation_rows": size, "results": {}}
        for name, (scheme_factory, use_indexes, batched, _baseline) in selected.items():
            setup_started = time.perf_counter()
            engine = _build_engine(dataset, scheme_factory, use_indexes)
            setup_seconds = time.perf_counter() - setup_started
            rng = random.Random(seed + 1)
            values = [rng.choice(dataset.all_values) for _ in range(budgets[name])]
            requests = _prepare_requests(engine, values)
            measured = _measure_cloud(engine, requests, batched)
            measured["setup_seconds"] = setup_seconds
            measured["encrypted_rows_stored"] = engine.cloud.encrypted_row_count
            entry["results"][name] = measured
        for name, (_, _, _, baseline) in selected.items():
            if baseline is None:
                entry["results"][name]["speedup_vs_linear"] = 1.0
                continue
            base_qps = entry["results"][baseline]["queries_per_second"]
            qps = entry["results"][name]["queries_per_second"]
            entry["results"][name]["speedup_vs_linear"] = (
                qps / base_qps if base_qps else float("inf")
            )
        results["sizes"].append(entry)
    if out_path is not None:
        out_path.write_text(json.dumps(results, indent=2) + "\n")
    return results


def print_results(results: Dict) -> None:
    for entry in results["sizes"]:
        rows = []
        for name, measured in entry["results"].items():
            rows.append(
                (
                    name,
                    measured["queries"],
                    f"{measured['queries_per_second']:.1f}",
                    f"{measured['rows_scanned_per_query']:.1f}",
                    f"{measured['speedup_vs_linear']:.1f}x",
                )
            )
        print_table(
            f"Cloud query throughput @ {entry['relation_rows']} rows",
            ["config", "queries", "qps", "rows scanned/query", "vs same-scheme linear"],
            rows,
        )


@pytest.mark.perf
@pytest.mark.slowperf
def test_throughput_acceptance_at_100k():
    """The acceptance bar: ≥5x queries/sec over the linear scan at 100k rows.

    The deterministic-scheme comparison runs at full 100k scale; the SSE
    comparison runs at 10k because its linear baseline (PRF trial-testing
    every row) costs seconds *per query* at 100k — the committed
    ``BENCH_throughput.json`` carries the full-scale numbers.
    """
    det = run_throughput_suite(
        sizes=(100_000,),
        configs=("tag-index", "tag-index+batch"),
        query_budget={"linear-scan": 20, "tag-index": 300, "tag-index+batch": 300},
        out_path=None,
    )
    print_results(det)
    at_100k = det["sizes"][0]["results"]
    assert at_100k["tag-index"]["speedup_vs_linear"] >= 5.0
    assert at_100k["tag-index+batch"]["speedup_vs_linear"] >= 5.0
    linear_scanned = at_100k["linear-scan"]["rows_scanned_per_query"]
    assert at_100k["tag-index"]["rows_scanned_per_query"] < linear_scanned / 50

    sse = run_throughput_suite(
        sizes=(10_000,),
        configs=("sse-bin-store",),
        query_budget={"sse-linear-scan": 3, "sse-bin-store": 20},
        out_path=None,
    )
    print_results(sse)
    at_10k = sse["sizes"][0]["results"]
    assert at_10k["sse-bin-store"]["speedup_vs_linear"] >= 5.0
    assert (
        at_10k["sse-bin-store"]["rows_scanned_per_query"]
        < at_10k["sse-linear-scan"]["rows_scanned_per_query"] / 2
    )


if __name__ == "__main__":
    suite_results = run_throughput_suite()
    print_results(suite_results)
    print(f"\ntrajectory written to {OUTPUT_PATH}")
