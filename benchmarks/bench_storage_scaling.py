"""Storage scaling: serving a 1M-row encrypted store from disk.

Every store before this PR lived in process memory: the encrypted relation
as a Python list, the tag index as a dict of buckets.  That puts a RAM
ceiling on the relation size a member can hold — each
:class:`~repro.crypto.base.EncryptedRow` costs a few hundred bytes of
Python-object overhead on top of its ciphertext.  The SQLite storage engine
(``storage_backend="sqlite"``) moves all three stores into a per-member
database file, bounding resident memory by SQLite's page cache instead of
the relation size.

This benchmark records the trade at scale:

* ``memory_100k`` — the in-memory backend at 100k rows: resident-set growth
  of the store, the derived **per-row memory cost**, and steady-state
  indexed-probe qps.
* ``sqlite_1m`` — the SQLite backend at **1M rows** (10x the largest store
  any committed benchmark built before): the same measurements, plus the
  database file size.  The acceptance claim is that the 1M-row store serves
  queries with resident growth *below what the memory backend would need
  for the same relation* (``memory_per_row × 1M``) — i.e. the store
  genuinely lives on disk, not in a shadow copy.

Methodology notes:

* Rows are generated, encrypted, and appended in chunks
  (:func:`build_store`), so the benchmark itself never materialises the
  full encrypted relation in Python — the transient footprint is one chunk.
  This is also the realistic ingest path for a relation that cannot fit in
  memory.
* Memory is read as ``VmRSS`` deltas from ``/proc/self/status`` (sampled
  during the serve loop for the peak), not ``ru_maxrss``: the high-water
  mark would remember every transient chunk ever allocated, while the claim
  is about the steady serving state.  The SQLite scenario runs first, from
  a clean baseline, so freed-arena reuse never flatters it.
* Serving uses the tag-index probe path (deterministic scheme), the regime
  a large store would actually run: per-query work is a keyed b-tree lookup
  returning ~``rows/values`` rows, identical for both backends.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, Optional

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.cloud.server import CloudServer
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.data.relation import Row

from benchmarks.helpers import print_table

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: full-scale shape: 10k distinct values × 100 tuples each = 1M rows
FULL_SQLITE_ROWS = 1_000_000
FULL_MEMORY_ROWS = 100_000
TUPLES_PER_VALUE = 100
CHUNK_ROWS = 20_000
SERVE_QUERIES = 300


def rss_kb() -> int:
    """Current resident set (VmRSS) of this process, in kB."""
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found in /proc/self/status")


def build_store(
    storage_backend: str,
    num_rows: int,
    tuples_per_value: int = TUPLES_PER_VALUE,
    chunk_rows: int = CHUNK_ROWS,
) -> Dict[str, object]:
    """Chunk-encrypt ``num_rows`` into a fresh store; measure as we go.

    Returns the server, the scheme, the value universe, and the RSS delta
    attributable to the stored relation (baseline taken before the first
    chunk, reading taken after the last — the in-flight chunk buffers are
    freed between measurements).
    """
    assert num_rows % tuples_per_value == 0
    num_values = num_rows // tuples_per_value
    scheme = DeterministicScheme(SecretKey.from_passphrase("storage-scaling"))
    server = CloudServer(storage_backend=storage_backend)
    baseline_kb = rss_kb()
    built = 0
    elapsed = 0.0
    while built < num_rows:
        take = min(chunk_rows, num_rows - built)
        chunk = [
            Row(
                rid=built + offset,
                values={"key": f"v{(built + offset) % num_values:06d}",
                        "payload": f"p{built + offset}"},
                sensitive=True,
            )
            for offset in range(take)
        ]
        encrypted = scheme.encrypt_rows(chunk, "key")
        assignment = {row.rid: row.rid % max(1, num_values // 10) for row in chunk}
        start = time.perf_counter()
        if built == 0:
            server.store_sensitive(encrypted, scheme, assignment)
        else:
            server.append_sensitive(encrypted, assignment)
        elapsed += time.perf_counter() - start
        built += take
    del chunk, encrypted, assignment
    return {
        "server": server,
        "scheme": scheme,
        "values": [f"v{index:06d}" for index in range(num_values)],
        "baseline_kb": baseline_kb,
        "store_rss_delta_kb": max(0, rss_kb() - baseline_kb),
        "ingest_rows_per_second": round(num_rows / elapsed) if elapsed else 0,
    }


def serve_probes(
    server: CloudServer,
    scheme: DeterministicScheme,
    values,
    queries: int = SERVE_QUERIES,
    seed: int = 17,
) -> Dict[str, object]:
    """Indexed-probe serving loop; returns qps and the sampled peak VmRSS."""
    rng = random.Random(seed)
    workload = [values[rng.randrange(len(values))] for _ in range(queries)]
    tokens = scheme.tokens_for_values(workload, "key")
    returned = 0
    peak_kb = rss_kb()
    start = time.perf_counter()
    for position, token in enumerate(tokens):
        matches, _examined = server._search_sensitive([token], None)
        returned += len(matches)
        if position % 50 == 0:
            peak_kb = max(peak_kb, rss_kb())
    elapsed = time.perf_counter() - start
    peak_kb = max(peak_kb, rss_kb())
    return {
        "qps": round(queries / elapsed, 1),
        "rows_returned": returned,
        "serve_peak_rss_kb": peak_kb,
    }


def run_storage_scaling(
    sqlite_rows: int = FULL_SQLITE_ROWS,
    memory_rows: int = FULL_MEMORY_ROWS,
    tuples_per_value: int = TUPLES_PER_VALUE,
    queries: int = SERVE_QUERIES,
    out_path: Optional[Path] = OUTPUT_PATH,
) -> Dict[str, object]:
    """Build both stores, serve both, and record the memory-ceiling trade."""
    # -- sqlite first, from a clean baseline --------------------------------------
    sqlite_build = build_store("sqlite", sqlite_rows, tuples_per_value)
    sqlite_server = sqlite_build["server"]
    try:  # close() even on a failed serve: the temp database must not leak
        sqlite_serve = serve_probes(
            sqlite_server, sqlite_build["scheme"], sqlite_build["values"], queries
        )
        db_file_bytes = os.path.getsize(sqlite_server.storage.path)
    finally:
        sqlite_server.close()
    sqlite_peak_delta_kb = max(
        sqlite_build["store_rss_delta_kb"],
        sqlite_serve["serve_peak_rss_kb"] - sqlite_build["baseline_kb"],
    )
    sqlite_section = {
        "rows": sqlite_rows,
        "store_rss_delta_kb": sqlite_build["store_rss_delta_kb"],
        "serve_peak_rss_kb": sqlite_serve["serve_peak_rss_kb"],
        "db_file_bytes": db_file_bytes,
        "ingest_rows_per_second": sqlite_build["ingest_rows_per_second"],
        "qps": sqlite_serve["qps"],
        "rows_returned": sqlite_serve["rows_returned"],
    }

    # -- the memory baseline at a tenth the size ----------------------------------
    memory_build = build_store("memory", memory_rows, tuples_per_value)
    memory_server = memory_build["server"]
    memory_serve = serve_probes(
        memory_server, memory_build["scheme"], memory_build["values"], queries
    )
    per_row_bytes = memory_build["store_rss_delta_kb"] * 1024 / memory_rows
    memory_section = {
        "rows": memory_rows,
        "store_rss_delta_kb": memory_build["store_rss_delta_kb"],
        "per_row_bytes": round(per_row_bytes, 1),
        "ingest_rows_per_second": memory_build["ingest_rows_per_second"],
        "qps": memory_serve["qps"],
        "rows_returned": memory_serve["rows_returned"],
    }
    memory_server.close()

    memory_bound_at_sqlite_rows_kb = round(per_row_bytes * sqlite_rows / 1024)
    section = {
        "tuples_per_value": tuples_per_value,
        "queries": queries,
        "sqlite": sqlite_section,
        "memory": memory_section,
        "memory_bound_at_sqlite_rows_kb": memory_bound_at_sqlite_rows_kb,
        "sqlite_peak_delta_kb": sqlite_peak_delta_kb,
        "peak_over_memory_bound": round(
            sqlite_peak_delta_kb / memory_bound_at_sqlite_rows_kb, 3
        )
        if memory_bound_at_sqlite_rows_kb
        else None,
    }

    print_table(
        f"storage scaling: sqlite@{sqlite_rows} vs memory@{memory_rows}",
        ["backend", "rows", "store RSS kB", "qps", "db file MB"],
        [
            [
                "sqlite",
                sqlite_rows,
                sqlite_section["store_rss_delta_kb"],
                sqlite_section["qps"],
                round(db_file_bytes / 1e6, 1),
            ],
            [
                "memory",
                memory_rows,
                memory_section["store_rss_delta_kb"],
                memory_section["qps"],
                "-",
            ],
        ],
    )
    print(
        f"  memory backend would need ~{memory_bound_at_sqlite_rows_kb} kB for"
        f" {sqlite_rows} rows ({memory_section['per_row_bytes']} B/row);"
        f" sqlite served them within {sqlite_peak_delta_kb} kB"
    )

    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["storage_scaling"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


# -- tier-1 smoke -----------------------------------------------------------------


def test_storage_scaling_smoke():
    """Seconds-scale shape check: the pipeline runs and sqlite stays lean."""
    section = run_storage_scaling(
        sqlite_rows=20_000,
        memory_rows=10_000,
        tuples_per_value=50,
        queries=40,
        out_path=None,
    )
    # both backends served every probe identically-sized answers
    assert section["sqlite"]["rows_returned"] == 40 * 50
    assert section["memory"]["rows_returned"] == 40 * 50
    assert section["sqlite"]["qps"] > 0 and section["memory"]["qps"] > 0
    # the sqlite store's resident growth is already well below the memory
    # backend's footprint for the same row count at this small scale
    assert section["sqlite"]["store_rss_delta_kb"] < (
        2 * section["memory"]["store_rss_delta_kb"] + 4_096
    )
    assert section["sqlite"]["db_file_bytes"] > 0


# -- full-scale acceptance --------------------------------------------------------


@pytest.mark.slowperf
def test_storage_scaling_acceptance(tmp_path):
    """1M rows served from disk, resident growth below the memory bound."""
    section = run_storage_scaling(out_path=tmp_path / "trajectory.json")
    assert section["sqlite"]["rows"] == FULL_SQLITE_ROWS
    assert section["sqlite"]["rows_returned"] == SERVE_QUERIES * TUPLES_PER_VALUE
    # THE claim: peak resident growth of the disk-backed store stays below
    # what the memory backend's measured per-row cost extrapolates to at 1M
    assert section["sqlite_peak_delta_kb"] < section["memory_bound_at_sqlite_rows_kb"]


if __name__ == "__main__":
    run_storage_scaling()
    print(f"\ntrajectory written to {OUTPUT_PATH}")
