"""Figure 6c — retrieval cost versus bin-size imbalance ‖SB| − |NSB‖.

The paper measures the average selection time for different bin-size choices
and finds the minimum when |SB| = |NSB| (≈ √|NS|).  The benchmark forces a
range of layouts over the same dataset — from very unbalanced (few, huge
non-sensitive bins) to balanced and back — and reports both the measured time
per query and the number of values/tuples retrieved.  The shape to reproduce:
the balanced layout retrieves the least and is (near-)fastest.
"""

import random
import time

from repro.workloads.generator import generate_partitioned_dataset

from benchmarks.helpers import build_qb_engine, print_table

NUM_VALUES = 400


def dataset():
    return generate_partitioned_dataset(
        num_values=NUM_VALUES,
        sensitivity_fraction=0.5,
        association_fraction=0.5,
        tuples_per_value=2,
        seed=61,
    )


#: Forced (number of sensitive bins, number of non-sensitive bins) layouts.
#: |NS| = 300 distinct non-sensitive values here, so widths are ~300/bins.
LAYOUTS = [(60, 5), (40, 8), (30, 10), (20, 15), (18, 17), (15, 20), (10, 30), (8, 40), (5, 60)]


def run_layout(data, layout):
    engine = build_qb_engine(data.partition, data.attribute, seed=9, force_layout=layout)
    sample = random.Random(2).sample(data.all_values, 40)
    start = time.perf_counter()
    # batched=False: this figure reports *per-query* retrieval time, so the
    # batch executor's cross-query deduplication must not compress it.  The
    # owner's steady-state caches (per-bin tokens, memoised bin decisions)
    # still apply — they are part of the system being measured.
    traces = engine.execute_workload(sample, batched=False)
    elapsed = (time.perf_counter() - start) / len(sample)
    avg_values = sum(
        t.sensitive_values_requested + t.non_sensitive_values_requested for t in traces
    ) / len(traces)
    avg_rows = sum(t.total_rows_returned for t in traces) / len(traces)
    imbalance = abs(
        engine.layout.max_sensitive_bin_size - engine.layout.max_non_sensitive_bin_size
    )
    return imbalance, avg_values, avg_rows, elapsed


def test_figure6c_bin_size_effect(benchmark):
    data = dataset()

    results = benchmark.pedantic(
        lambda: [run_layout(data, layout) for layout in LAYOUTS], rounds=1, iterations=1
    )

    rows = [
        (
            f"{layout[0]}x{layout[1]}",
            imbalance,
            f"{avg_values:.1f}",
            f"{avg_rows:.1f}",
            f"{elapsed * 1e3:.2f}",
        )
        for layout, (imbalance, avg_values, avg_rows, elapsed) in zip(LAYOUTS, results)
    ]
    print_table(
        "Figure 6c: retrieval cost vs bin-size imbalance",
        ["layout (SBxNSB)", "| |SB|-|NSB| |", "values/query", "rows/query", "ms/query"],
        rows,
    )

    by_imbalance = sorted(results, key=lambda item: item[0])
    most_balanced = by_imbalance[0]
    most_skewed = by_imbalance[-1]
    # Shape: the balanced layout requests the fewest values and rows per query.
    assert most_balanced[1] <= most_skewed[1]
    assert most_balanced[2] <= most_skewed[2]
    # And the minimum request width over all layouts is achieved at (or next
    # to) the most balanced configuration.
    min_values = min(item[1] for item in results)
    assert most_balanced[1] <= min_values * 1.25
