"""Table IV / Figure 3 / Figure 4a — binning 10+10 values and preserving all
surviving matches.

Rebuilds the paper's Figure 3 layout (10 sensitive values, 10 non-sensitive
values, 5 of them associated), regenerates the Table IV adversarial views for
the queries s2 / s7 / ns13, and verifies Figure 4a: after answering queries
for every value with Algorithm 2, every sensitive bin is associated with every
non-sensitive bin.
"""

from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.core.bins import Bin, BinLayout
from repro.core.retrieval import BinRetriever

from benchmarks.helpers import print_table


def figure3_layout() -> BinLayout:
    sensitive = [
        Bin(0, ["s5", "s10"]),
        Bin(1, ["s1", "s6"]),
        Bin(2, ["s2", "s7"]),
        Bin(3, ["s3", "s8"]),
        Bin(4, ["s4", "s9"]),
    ]
    non_sensitive = [
        Bin(0, ["s5", "s1", "s2", "s3", "ns11"]),
        Bin(1, ["ns12", "s6", "ns13", "ns14", "ns15"]),
    ]
    layout = BinLayout(sensitive, non_sensitive, attribute="A")
    layout.validate()
    return layout


def analyse_layout():
    layout = figure3_layout()
    retriever = BinRetriever(layout)
    decisions = {value: retriever.retrieve(value) for value in ("s2", "s7", "ns13")}
    analysis = SurvivingMatchAnalysis.from_layout(layout)
    return layout, decisions, analysis


def test_table4_and_figure4a(benchmark):
    layout, decisions, analysis = benchmark(analyse_layout)

    rows = []
    for value, decision in decisions.items():
        rows.append(
            (
                value,
                f"SB{decision.sensitive_bin_index}: "
                + ", ".join(f"E({v})" for v in decision.sensitive_values),
                f"NSB{decision.non_sensitive_bin_index}: "
                + ", ".join(map(str, decision.non_sensitive_values)),
            )
        )
    print_table(
        "Table IV: adversarial views under Algorithm 2",
        ["query value", "sensitive bin and data", "non-sensitive bin and data"],
        rows,
    )

    # Paper shape: s2 -> (SB2, NSB0); s7 and ns13 -> (SB2, NSB1).
    assert (decisions["s2"].sensitive_bin_index, decisions["s2"].non_sensitive_bin_index) == (2, 0)
    assert (decisions["s7"].sensitive_bin_index, decisions["s7"].non_sensitive_bin_index) == (2, 1)
    assert (decisions["ns13"].sensitive_bin_index, decisions["ns13"].non_sensitive_bin_index) == (2, 1)

    print(
        f"  Figure 4a: surviving bin matches = {analysis.total_possible_pairs - len(analysis.dropped_pairs())}"
        f"/{analysis.total_possible_pairs} (complete={analysis.is_complete()})"
    )
    assert analysis.is_complete()
