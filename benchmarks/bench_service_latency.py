"""Service latency under open-loop load: p50/p95/p99 vs offered qps (PR 9).

Characterizes the multi-tenant encrypted-search service the way an SLO
would be written: many concurrent clients drive Poisson arrivals at a
configured *offered* load against a running
:class:`~repro.service.server.EncryptedSearchService` over real loopback
TCP, and the benchmark reports the achieved throughput next to the latency
distribution (p50/p95/p99) and the explicit-rejection count.

Methodology notes, because each choice changes the numbers:

* **Open loop, not closed loop.**  Each client draws seeded exponential
  inter-arrival gaps and *pipelines* requests on schedule, whether or not
  earlier responses have returned.  A closed-loop client (wait, then send)
  self-throttles as the service saturates, silently hiding queueing delay —
  the classic coordinated-omission trap.  Latency here is measured from the
  *scheduled* arrival time, so a request that found the service busy pays
  its queueing in the recorded number.
* **Two tenants, isolated stores.**  Requests split across two provisioned
  tenants; per-tenant engine locks mean tenant A's slow query never blocks
  tenant B — the multi-tenant claim the layered locking is supposed to buy.
* **Explicit overload.**  The admission queue is bounded; at offered loads
  past capacity the service rejects instead of queueing without bound.
  Rejected requests are counted separately and excluded from the latency
  distribution (they complete in microseconds and would flatter the tail).

Run directly to refresh the ``service_latency`` section of
``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_service_latency.py

The scaled-down acceptance check rides the ``slowperf`` marker::

    PYTHONPATH=src python -m pytest -m slowperf -q benchmarks/bench_service_latency.py
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.data.partition import SensitivityPolicy
from repro.exceptions import ServiceOverloadedError
from repro.service import EncryptedSearchService, ServiceClient, TenantRegistry
from repro.workloads.generator import generate_partitioned_dataset

from benchmarks.helpers import print_table

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

TENANT_NAMES = ("tenant-a", "tenant-b")

#: load levels: (clients, offered qps across all clients, total requests).
#: The low level sits well under capacity (pure service time), the high
#: level adds queueing, and the surge level is deliberately past the
#: admission queue's capacity so the rejection path shows up in the table.
DEFAULT_LEVELS: Tuple[Tuple[int, float, int], ...] = (
    (2, 50.0, 300),
    (8, 200.0, 800),
    (16, 2000.0, 1200),
)
DEFAULT_NUM_VALUES = 150
DEFAULT_TUPLES_PER_VALUE = 4
DEFAULT_NUM_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 64


def build_service(
    num_values: int = DEFAULT_NUM_VALUES,
    tuples_per_value: int = DEFAULT_TUPLES_PER_VALUE,
    num_workers: int = DEFAULT_NUM_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> Tuple[EncryptedSearchService, Dict[str, List[object]]]:
    """A running service with two fully-isolated tenants; returns it plus
    each tenant's queryable value pool."""
    registry = TenantRegistry()
    values_by_tenant: Dict[str, List[object]] = {}
    for index, name in enumerate(TENANT_NAMES):
        dataset = generate_partitioned_dataset(
            num_values=num_values,
            sensitivity_fraction=0.5,
            association_fraction=0.6,
            tuples_per_value=tuples_per_value,
            skew_exponent=1.1,
            seed=23 + index,  # distinct data per tenant
        )
        registry.provision(
            name,
            dataset.relation,
            SensitivityPolicy(use_row_flags=True),
            attributes=(dataset.attribute,),
            permutation_seed=17,
        )
        values_by_tenant[name] = list(dataset.all_values)
    service = EncryptedSearchService(
        registry, num_workers=num_workers, queue_depth=queue_depth
    ).start()
    return service, values_by_tenant


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_level(
    service: EncryptedSearchService,
    values_by_tenant: Dict[str, List[object]],
    clients: int,
    offered_qps: float,
    total_requests: int,
    seed: int = 101,
) -> Dict[str, object]:
    """Drive one open-loop level and reduce it to the reported row."""
    host, port = service.address
    per_client = [total_requests // clients] * clients
    for index in range(total_requests % clients):
        per_client[index] += 1
    client_rate = offered_qps / clients
    attribute_by_tenant = {
        name: service.registry.get(name).owner.searchable_attributes()[0]
        for name in values_by_tenant
    }
    latencies_ms: List[float] = []
    rejected = 0
    errored = 0
    results_lock = threading.Lock()
    start_barrier = threading.Barrier(clients)
    wall: List[float] = []

    def client_loop(client_index: int) -> None:
        nonlocal rejected, errored
        rng = random.Random(seed * 1000 + client_index)
        tenants = list(values_by_tenant)
        client = ServiceClient(host, port)
        pending: List[Tuple[float, object]] = []
        # completion instants, stamped by the client's receiver thread the
        # moment each response resolves — NOT when this thread gets around
        # to collecting the future, which may be long after
        completed_at: Dict[int, float] = {}

        def stamp(index: int):
            def callback(_future) -> None:
                completed_at[index] = time.perf_counter()

            return callback

        try:
            start_barrier.wait()
            origin = time.perf_counter()
            scheduled = 0.0
            for _ in range(per_client[client_index]):
                scheduled += rng.expovariate(client_rate)
                # open loop: sleep until the *scheduled* arrival, then
                # pipeline the request regardless of what's still in flight
                delay = origin + scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                tenant = tenants[rng.randrange(len(tenants))]
                value = rng.choice(values_by_tenant[tenant])
                future = client.submit(
                    tenant, "query", (attribute_by_tenant[tenant], value)
                )
                future.add_done_callback(stamp(len(pending)))
                # latency clock starts at the scheduled arrival: queueing
                # delay caused by saturation stays in the measurement
                pending.append((origin + scheduled, future))
            local_latencies, local_rejected, local_errored = [], 0, 0
            last_completion = origin
            for index, (sent_at, future) in enumerate(pending):
                try:
                    future.result(timeout=120.0)
                    finished = completed_at.get(index, time.perf_counter())
                    local_latencies.append((finished - sent_at) * 1000.0)
                    last_completion = max(last_completion, finished)
                except ServiceOverloadedError:
                    local_rejected += 1
                except Exception:
                    local_errored += 1
            elapsed = last_completion - origin
        finally:
            client.close()
        with results_lock:
            latencies_ms.extend(local_latencies)
            rejected += local_rejected
            errored += local_errored
            wall.append(elapsed)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # a response's latency includes delivery, so the completion wall clock
    # (slowest client) is the honest denominator for achieved throughput
    elapsed = max(wall) if wall else float("nan")
    latencies_ms.sort()
    return {
        "clients": clients,
        "offered_qps": offered_qps,
        "requests": total_requests,
        "served": len(latencies_ms),
        "rejected": rejected,
        "errors": errored,
        "achieved_qps": (len(latencies_ms) / elapsed) if elapsed else 0.0,
        "p50_ms": _percentile(latencies_ms, 0.50),
        "p95_ms": _percentile(latencies_ms, 0.95),
        "p99_ms": _percentile(latencies_ms, 0.99),
        "max_ms": latencies_ms[-1] if latencies_ms else float("nan"),
    }


def run_suite(
    levels: Sequence[Tuple[int, float, int]] = DEFAULT_LEVELS,
    num_values: int = DEFAULT_NUM_VALUES,
    tuples_per_value: int = DEFAULT_TUPLES_PER_VALUE,
    num_workers: int = DEFAULT_NUM_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    out_path: Optional[Path] = OUTPUT_PATH,
) -> Dict[str, object]:
    """Sweep the load levels on one service; fold into the trajectory."""
    service, values_by_tenant = build_service(
        num_values=num_values,
        tuples_per_value=tuples_per_value,
        num_workers=num_workers,
        queue_depth=queue_depth,
    )
    try:
        rows = [
            run_level(service, values_by_tenant, clients, offered_qps, requests)
            for clients, offered_qps, requests in levels
        ]
    finally:
        service.stop()
    section = {
        "description": (
            "open-loop Poisson load against the multi-tenant service over "
            "loopback TCP; latency from scheduled arrival (coordinated "
            "omission avoided); rejected = explicit admission-queue "
            "overload signals, excluded from the latency distribution"
        ),
        "tenants": len(TENANT_NAMES),
        "num_workers": num_workers,
        "queue_depth": queue_depth,
        "dataset": {
            "num_values": num_values,
            "tuples_per_value": tuples_per_value,
        },
        "levels": rows,
    }
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["service_latency"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


# -- acceptance ------------------------------------------------------------------


@pytest.mark.perf
@pytest.mark.slowperf
def test_service_meets_latency_slos():
    """The full-size sweep behaves like a service, not a batch job:

    * under-capacity levels serve everything they admit (no errors) and
      achieve at least half the offered load;
    * tail ordering is sane (p50 ≤ p95 ≤ p99) at every level;
    * the surge level honors the backpressure contract: the service either
      keeps up with the offered load or sheds it *explicitly* through
      admission control — and the requests it did admit still completed.
    """
    section = run_suite(out_path=OUTPUT_PATH)
    levels = section["levels"]
    assert len(levels) >= 2
    for row in levels:
        assert row["errors"] == 0, row
        assert row["served"] + row["rejected"] == row["requests"], row
        if row["served"]:
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], row
    undersaturated = levels[0]
    assert undersaturated["rejected"] == 0, undersaturated
    assert undersaturated["achieved_qps"] >= undersaturated["offered_qps"] * 0.5
    surge = levels[-1]
    kept_up = surge["achieved_qps"] >= surge["offered_qps"] * 0.8
    assert surge["rejected"] > 0 or kept_up, (
        "surge neither kept up nor shed load explicitly — requests queued "
        f"without bound instead: {surge}"
    )
    assert surge["served"] > 0, "admission control starved the surge entirely"


def main() -> None:
    section = run_suite()
    print_table(
        "service latency under open-loop load",
        ["clients", "offered qps", "achieved qps", "served", "rejected",
         "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                row["clients"],
                f"{row['offered_qps']:.0f}",
                f"{row['achieved_qps']:.1f}",
                row["served"],
                row["rejected"],
                f"{row['p50_ms']:.2f}",
                f"{row['p95_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
            ]
            for row in section["levels"]
        ],
    )
    print(f"\ntrajectory updated at {OUTPUT_PATH}")


if __name__ == "__main__":
    main()
