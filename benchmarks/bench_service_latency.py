"""Service latency under open-loop load: p50/p95/p99 vs offered qps (PR 9).

Characterizes the multi-tenant encrypted-search service the way an SLO
would be written: many concurrent clients drive Poisson arrivals at a
configured *offered* load against a running
:class:`~repro.service.server.EncryptedSearchService` over real loopback
TCP, and the benchmark reports the achieved throughput next to the latency
distribution (p50/p95/p99) and the explicit-rejection count.

Methodology notes, because each choice changes the numbers:

* **Open loop, not closed loop.**  Each client draws seeded exponential
  inter-arrival gaps and *pipelines* requests on schedule, whether or not
  earlier responses have returned.  A closed-loop client (wait, then send)
  self-throttles as the service saturates, silently hiding queueing delay —
  the classic coordinated-omission trap.  Latency here is measured from the
  *scheduled* arrival time, so a request that found the service busy pays
  its queueing in the recorded number.
* **Two tenants, isolated stores.**  Requests split across two provisioned
  tenants; per-tenant engine locks mean tenant A's slow query never blocks
  tenant B — the multi-tenant claim the layered locking is supposed to buy.
* **Explicit overload.**  The admission queue is bounded; at offered loads
  past capacity the service rejects instead of queueing without bound.
  Rejected requests are counted separately and excluded from the latency
  distribution (they complete in microseconds and would flatter the tail).

Run directly to refresh the ``service_latency`` section of
``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_service_latency.py

The scaled-down acceptance check rides the ``slowperf`` marker::

    PYTHONPATH=src python -m pytest -m slowperf -q benchmarks/bench_service_latency.py
"""

from __future__ import annotations

import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.data.partition import SensitivityPolicy
from repro.exceptions import ServiceOverloadedError
from repro.service import (
    ChaosScenario,
    EncryptedSearchService,
    RetryPolicy,
    ServiceClient,
    TenantRegistry,
    TokenBucket,
)
from repro.workloads.generator import generate_partitioned_dataset

from benchmarks.helpers import print_table

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

TENANT_NAMES = ("tenant-a", "tenant-b")

#: load levels: (clients, offered qps across all clients, total requests).
#: The low level sits well under capacity (pure service time), the high
#: level adds queueing, and the surge level is deliberately past the
#: admission queue's capacity so the rejection path shows up in the table.
DEFAULT_LEVELS: Tuple[Tuple[int, float, int], ...] = (
    (2, 50.0, 300),
    (8, 200.0, 800),
    (16, 2000.0, 1200),
)
DEFAULT_NUM_VALUES = 150
DEFAULT_TUPLES_PER_VALUE = 4
DEFAULT_NUM_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 64


def build_service(
    num_values: int = DEFAULT_NUM_VALUES,
    tuples_per_value: int = DEFAULT_TUPLES_PER_VALUE,
    num_workers: int = DEFAULT_NUM_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
) -> Tuple[EncryptedSearchService, Dict[str, List[object]]]:
    """A running service with two fully-isolated tenants; returns it plus
    each tenant's queryable value pool."""
    registry = TenantRegistry()
    values_by_tenant: Dict[str, List[object]] = {}
    for index, name in enumerate(TENANT_NAMES):
        dataset = generate_partitioned_dataset(
            num_values=num_values,
            sensitivity_fraction=0.5,
            association_fraction=0.6,
            tuples_per_value=tuples_per_value,
            skew_exponent=1.1,
            seed=23 + index,  # distinct data per tenant
        )
        registry.provision(
            name,
            dataset.relation,
            SensitivityPolicy(use_row_flags=True),
            attributes=(dataset.attribute,),
            permutation_seed=17,
        )
        values_by_tenant[name] = list(dataset.all_values)
    service = EncryptedSearchService(
        registry, num_workers=num_workers, queue_depth=queue_depth
    ).start()
    return service, values_by_tenant


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_level(
    service: EncryptedSearchService,
    values_by_tenant: Dict[str, List[object]],
    clients: int,
    offered_qps: float,
    total_requests: int,
    seed: int = 101,
) -> Dict[str, object]:
    """Drive one open-loop level and reduce it to the reported row."""
    host, port = service.address
    per_client = [total_requests // clients] * clients
    for index in range(total_requests % clients):
        per_client[index] += 1
    client_rate = offered_qps / clients
    attribute_by_tenant = {
        name: service.registry.get(name).owner.searchable_attributes()[0]
        for name in values_by_tenant
    }
    latencies_ms: List[float] = []
    rejected = 0
    errored = 0
    results_lock = threading.Lock()
    start_barrier = threading.Barrier(clients)
    wall: List[float] = []

    def client_loop(client_index: int) -> None:
        nonlocal rejected, errored
        rng = random.Random(seed * 1000 + client_index)
        tenants = list(values_by_tenant)
        client = ServiceClient(host, port)
        pending: List[Tuple[float, object]] = []
        # completion instants, stamped by the client's receiver thread the
        # moment each response resolves — NOT when this thread gets around
        # to collecting the future, which may be long after
        completed_at: Dict[int, float] = {}

        def stamp(index: int):
            def callback(_future) -> None:
                completed_at[index] = time.perf_counter()

            return callback

        try:
            start_barrier.wait()
            origin = time.perf_counter()
            scheduled = 0.0
            for _ in range(per_client[client_index]):
                scheduled += rng.expovariate(client_rate)
                # open loop: sleep until the *scheduled* arrival, then
                # pipeline the request regardless of what's still in flight
                delay = origin + scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                tenant = tenants[rng.randrange(len(tenants))]
                value = rng.choice(values_by_tenant[tenant])
                future = client.submit(
                    tenant, "query", (attribute_by_tenant[tenant], value)
                )
                future.add_done_callback(stamp(len(pending)))
                # latency clock starts at the scheduled arrival: queueing
                # delay caused by saturation stays in the measurement
                pending.append((origin + scheduled, future))
            local_latencies, local_rejected, local_errored = [], 0, 0
            last_completion = origin
            for index, (sent_at, future) in enumerate(pending):
                try:
                    future.result(timeout=120.0)
                    finished = completed_at.get(index, time.perf_counter())
                    local_latencies.append((finished - sent_at) * 1000.0)
                    last_completion = max(last_completion, finished)
                except ServiceOverloadedError:
                    local_rejected += 1
                except Exception:
                    local_errored += 1
            elapsed = last_completion - origin
        finally:
            client.close()
        with results_lock:
            latencies_ms.extend(local_latencies)
            rejected += local_rejected
            errored += local_errored
            wall.append(elapsed)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # a response's latency includes delivery, so the completion wall clock
    # (slowest client) is the honest denominator for achieved throughput
    elapsed = max(wall) if wall else float("nan")
    latencies_ms.sort()
    return {
        "clients": clients,
        "offered_qps": offered_qps,
        "requests": total_requests,
        "served": len(latencies_ms),
        "rejected": rejected,
        "errors": errored,
        "achieved_qps": (len(latencies_ms) / elapsed) if elapsed else 0.0,
        "p50_ms": _percentile(latencies_ms, 0.50),
        "p95_ms": _percentile(latencies_ms, 0.95),
        "p99_ms": _percentile(latencies_ms, 0.99),
        "max_ms": latencies_ms[-1] if latencies_ms else float("nan"),
    }


def run_suite(
    levels: Sequence[Tuple[int, float, int]] = DEFAULT_LEVELS,
    num_values: int = DEFAULT_NUM_VALUES,
    tuples_per_value: int = DEFAULT_TUPLES_PER_VALUE,
    num_workers: int = DEFAULT_NUM_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    out_path: Optional[Path] = OUTPUT_PATH,
) -> Dict[str, object]:
    """Sweep the load levels on one service; fold into the trajectory."""
    service, values_by_tenant = build_service(
        num_values=num_values,
        tuples_per_value=tuples_per_value,
        num_workers=num_workers,
        queue_depth=queue_depth,
    )
    try:
        rows = [
            run_level(service, values_by_tenant, clients, offered_qps, requests)
            for clients, offered_qps, requests in levels
        ]
    finally:
        service.stop()
    section = {
        "description": (
            "open-loop Poisson load against the multi-tenant service over "
            "loopback TCP; latency from scheduled arrival (coordinated "
            "omission avoided); rejected = explicit admission-queue "
            "overload signals, excluded from the latency distribution"
        ),
        "tenants": len(TENANT_NAMES),
        "num_workers": num_workers,
        "queue_depth": queue_depth,
        "dataset": {
            "num_values": num_values,
            "tuples_per_value": tuples_per_value,
        },
        "levels": rows,
    }
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["service_latency"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


# -- resilience: chaos drops + a rate-limited noisy neighbour ---------------------

#: The compliant tenant's storm: every connection suffers seeded drops at
#: this rate; the retrying client must absorb them into its tail.
DEFAULT_DROP_RATE = 0.05
DEFAULT_RESILIENCE_CLIENTS = 4
DEFAULT_RESILIENCE_REQUESTS = 150
DEFAULT_MISBEHAVING_CLIENTS = 2
#: Well under the misbehaving clients' offered rate, so admission sheds
#: most of their load as typed rejections.
DEFAULT_MISBEHAVING_RATE = 25.0
DEFAULT_MISBEHAVING_BURST = 5.0


def _drive_compliant(
    service: EncryptedSearchService,
    tenant: str,
    values: List[object],
    clients: int,
    requests_per_client: int,
    drop_rate: float,
    seed_base: int,
) -> Dict[str, object]:
    """Closed-loop retrying clients over a drop-injected wire.

    Latency is per *logical* call, reconnects and backoff included — the
    number a caller with a retrying client actually experiences.  The drop
    scripts are seeded per client index, so the baseline and contended
    phases endure the identical storm and their tails compare apples to
    apples.
    """
    host, port = service.address
    attribute = service.registry.get(tenant).owner.searchable_attributes()[0]
    latencies_ms: List[float] = []
    errored = 0
    dropped = 0
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    wall: List[float] = []

    def client_loop(client_index: int) -> None:
        nonlocal errored, dropped
        rng = random.Random(seed_base * 7 + client_index)
        scenario = ChaosScenario.seeded(
            seed=seed_base + client_index,
            connections=requests_per_client,
            requests_per_connection=requests_per_client + 8,
            rates={"drop": drop_rate},
        )
        client = ServiceClient(
            host, port,
            retry=RetryPolicy(max_attempts=8, base_delay=0.005, seed=client_index),
            chaos=scenario,
        )
        local_latencies, local_errors = [], 0
        try:
            barrier.wait()
            origin = time.perf_counter()
            for _ in range(requests_per_client):
                value = rng.choice(values)
                started = time.perf_counter()
                try:
                    client.query(tenant, attribute, value)
                    local_latencies.append((time.perf_counter() - started) * 1000.0)
                except Exception:
                    local_errors += 1
            elapsed = time.perf_counter() - origin
        finally:
            client.close()
        with lock:
            latencies_ms.extend(local_latencies)
            errored += local_errors
            dropped += scenario.injected.get("drop", 0)
            wall.append(elapsed)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(wall) if wall else float("nan")
    latencies_ms.sort()
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "served": len(latencies_ms),
        "errors": errored,
        "injected_drops": dropped,
        "goodput_qps": (len(latencies_ms) / elapsed) if elapsed else 0.0,
        "p50_ms": _percentile(latencies_ms, 0.50),
        "p95_ms": _percentile(latencies_ms, 0.95),
        "p99_ms": _percentile(latencies_ms, 0.99),
    }


def _hammer_misbehaving(
    service: EncryptedSearchService,
    tenant: str,
    values: List[object],
    clients: int,
    stop: threading.Event,
    seed_base: int,
) -> Dict[str, object]:
    """Non-retrying clients offering load far above the tenant's bucket
    until ``stop`` is set; rejections are counted, not slept on — the
    sustained worst case for the neighbours."""
    host, port = service.address
    attribute = service.registry.get(tenant).owner.searchable_attributes()[0]
    served = 0
    shed = 0
    errored = 0
    latencies_ms: List[float] = []
    lock = threading.Lock()

    def client_loop(client_index: int) -> None:
        nonlocal served, shed, errored
        rng = random.Random(seed_base * 13 + client_index)
        client = ServiceClient(host, port)
        local_latencies, local_shed, local_errors = [], 0, 0
        try:
            while not stop.is_set():
                value = rng.choice(values)
                started = time.perf_counter()
                try:
                    client.query(tenant, attribute, value)
                    local_latencies.append(
                        (time.perf_counter() - started) * 1000.0
                    )
                except ServiceOverloadedError:
                    local_shed += 1  # includes the rate-limited subtype
                except Exception:
                    local_errors += 1
        finally:
            client.close()
        with lock:
            latencies_ms.extend(local_latencies)
            served += len(local_latencies)
            shed += local_shed
            errored += local_errors

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    started_at = time.perf_counter()
    for thread in threads:
        thread.start()
    stop.wait()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started_at
    latencies_ms.sort()
    return {
        "clients": clients,
        "served": served,
        "shed": shed,
        "errors": errored,
        "goodput_qps": (served / elapsed) if elapsed else 0.0,
        "p50_ms": _percentile(latencies_ms, 0.50),
        "p95_ms": _percentile(latencies_ms, 0.95),
        "p99_ms": _percentile(latencies_ms, 0.99),
    }


def run_resilience(
    clients: int = DEFAULT_RESILIENCE_CLIENTS,
    requests_per_client: int = DEFAULT_RESILIENCE_REQUESTS,
    drop_rate: float = DEFAULT_DROP_RATE,
    misbehaving_clients: int = DEFAULT_MISBEHAVING_CLIENTS,
    num_values: int = DEFAULT_NUM_VALUES,
    tuples_per_value: int = DEFAULT_TUPLES_PER_VALUE,
    num_workers: int = DEFAULT_NUM_WORKERS,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    out_path: Optional[Path] = OUTPUT_PATH,
) -> Dict[str, object]:
    """Tail latency and goodput when the wire and the neighbours misbehave.

    Two phases over one service, identical drop storms (seeded per client):

    * **baseline** — the compliant tenant alone, 5% connection drops,
      retrying clients;
    * **contended** — the same, while a *misbehaving* tenant (token bucket
      far below its offered load) hammers continuously.

    The comparison isolates the noisy neighbour's impact: per-tenant rate
    limiting must keep the compliant tenant's p99 within 2x its baseline.
    """
    service, values_by_tenant = build_service(
        num_values=num_values,
        tuples_per_value=tuples_per_value,
        num_workers=num_workers,
        queue_depth=queue_depth,
    )
    compliant, misbehaving = TENANT_NAMES
    service.registry.set_rate_limit(
        misbehaving,
        TokenBucket(rate=DEFAULT_MISBEHAVING_RATE, burst=DEFAULT_MISBEHAVING_BURST),
    )
    try:
        baseline = _drive_compliant(
            service, compliant, values_by_tenant[compliant],
            clients, requests_per_client, drop_rate, seed_base=500,
        )
        stop = threading.Event()
        hammer_result: List[Dict[str, object]] = []
        hammer = threading.Thread(
            target=lambda: hammer_result.append(
                _hammer_misbehaving(
                    service, misbehaving, values_by_tenant[misbehaving],
                    misbehaving_clients, stop, seed_base=900,
                )
            ),
            daemon=True,
        )
        hammer.start()
        try:
            contended = _drive_compliant(
                service, compliant, values_by_tenant[compliant],
                clients, requests_per_client, drop_rate, seed_base=500,
            )
        finally:
            stop.set()
            hammer.join()
        stats = service.stats()
    finally:
        service.stop()
    baseline_p99 = baseline["p99_ms"]
    contended_p99 = contended["p99_ms"]
    section = {
        "description": (
            "closed-loop retrying clients under seeded 5% connection drops; "
            "latency per logical call (reconnect + backoff included); the "
            "contended phase adds a rate-limited misbehaving tenant "
            "hammering continuously — per-tenant token buckets must keep "
            "the compliant tenant's p99 within 2x its baseline"
        ),
        "drop_rate": drop_rate,
        "misbehaving_rate_limit": {
            "rate": DEFAULT_MISBEHAVING_RATE,
            "burst": DEFAULT_MISBEHAVING_BURST,
        },
        "num_workers": num_workers,
        "queue_depth": queue_depth,
        "baseline": baseline,
        "contended": contended,
        "misbehaving": hammer_result[0] if hammer_result else {},
        "rate_limited_total": stats["rate_limited"],
        "p99_degradation_x": (
            (contended_p99 / baseline_p99) if baseline_p99 else float("nan")
        ),
    }
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["service_resilience"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


# -- acceptance ------------------------------------------------------------------


@pytest.mark.perf
@pytest.mark.slowperf
def test_service_meets_latency_slos():
    """The full-size sweep behaves like a service, not a batch job:

    * under-capacity levels serve everything they admit (no errors) and
      achieve at least half the offered load;
    * tail ordering is sane (p50 ≤ p95 ≤ p99) at every level;
    * the surge level honors the backpressure contract: the service either
      keeps up with the offered load or sheds it *explicitly* through
      admission control — and the requests it did admit still completed.
    """
    section = run_suite(out_path=OUTPUT_PATH)
    levels = section["levels"]
    assert len(levels) >= 2
    for row in levels:
        assert row["errors"] == 0, row
        assert row["served"] + row["rejected"] == row["requests"], row
        if row["served"]:
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], row
    undersaturated = levels[0]
    assert undersaturated["rejected"] == 0, undersaturated
    assert undersaturated["achieved_qps"] >= undersaturated["offered_qps"] * 0.5
    surge = levels[-1]
    kept_up = surge["achieved_qps"] >= surge["offered_qps"] * 0.8
    assert surge["rejected"] > 0 or kept_up, (
        "surge neither kept up nor shed load explicitly — requests queued "
        f"without bound instead: {surge}"
    )
    assert surge["served"] > 0, "admission control starved the surge entirely"


@pytest.mark.perf
@pytest.mark.slowperf
def test_misbehaving_tenant_cannot_wreck_the_compliant_tail():
    """The resilience contract, end to end:

    * the drop storm actually fired, in both phases, and the retrying
      clients absorbed every drop (zero errors, full goodput);
    * the rate limit actually bit (the misbehaving tenant was shed);
    * the noisy neighbour degrades the compliant tenant's p99 by at most
      2x — per-tenant admission keeps the storm *its* problem.
    """
    section = run_resilience(out_path=OUTPUT_PATH)
    baseline, contended = section["baseline"], section["contended"]
    for phase in (baseline, contended):
        assert phase["errors"] == 0, phase
        assert phase["served"] == phase["requests"], phase
        assert phase["injected_drops"] > 0, "the storm never fired"
    misbehaving = section["misbehaving"]
    assert misbehaving["shed"] > 0, "the rate limit never bit"
    assert misbehaving["errors"] == 0, misbehaving
    assert contended["p99_ms"] <= 2.0 * baseline["p99_ms"], (
        "misbehaving tenant degraded the compliant p99 "
        f"{section['p99_degradation_x']:.2f}x (limit 2x): {section}"
    )


def main() -> None:
    section = run_suite()
    print_table(
        "service latency under open-loop load",
        ["clients", "offered qps", "achieved qps", "served", "rejected",
         "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                row["clients"],
                f"{row['offered_qps']:.0f}",
                f"{row['achieved_qps']:.1f}",
                row["served"],
                row["rejected"],
                f"{row['p50_ms']:.2f}",
                f"{row['p95_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
            ]
            for row in section["levels"]
        ],
    )
    resilience = run_resilience()
    rows = [
        ["baseline (drops only)", resilience["baseline"]],
        ["contended (+noisy tenant)", resilience["contended"]],
    ]
    print_table(
        "service resilience: 5% drops + rate-limited noisy neighbour",
        ["phase", "served", "errors", "drops", "goodput qps",
         "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                label,
                row["served"],
                row["errors"],
                row["injected_drops"],
                f"{row['goodput_qps']:.1f}",
                f"{row['p50_ms']:.2f}",
                f"{row['p95_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
            ]
            for label, row in rows
        ],
    )
    misbehaving = resilience["misbehaving"]
    print(
        f"\nmisbehaving tenant: served={misbehaving['served']} "
        f"shed={misbehaving['shed']} goodput={misbehaving['goodput_qps']:.1f} qps; "
        f"compliant p99 degradation {resilience['p99_degradation_x']:.2f}x (limit 2x)"
    )
    print(f"\ntrajectory updated at {OUTPUT_PATH}")


if __name__ == "__main__":
    main()
