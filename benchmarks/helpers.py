"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper: it builds
the corresponding workload, runs the relevant part of the library, prints the
regenerated rows/series (visible with ``pytest benchmarks/ --benchmark-only -s``
or in the captured output section), and asserts the qualitative *shape* the
paper reports (who wins, monotonicity, crossovers) rather than absolute
numbers, since the substrate is a simulator rather than the authors' testbed.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator, Optional

from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import PartitionResult


@contextlib.contextmanager
def closing_cloud_stores(*engines) -> Iterator[None]:
    """Close every engine's cloud stores (and fleet members) on exit.

    Benchmarks that build ``storage_backend="sqlite"`` engines must not
    leave temporary database files behind; memory-backed stores close as a
    no-op, so wrapping unconditionally is always safe.
    """
    try:
        yield
    finally:
        for engine in engines:
            fleet = getattr(engine, "multi_cloud", None)
            if fleet is not None:
                fleet.close()
            cloud = getattr(engine, "cloud", None)
            if cloud is not None:
                cloud.close()


def build_qb_engine(
    partition: PartitionResult,
    attribute: str,
    seed: int = 11,
    scheme=None,
    force_layout: Optional[tuple] = None,
    storage_backend: str = "memory",
) -> QueryBinningEngine:
    """A ready-to-query QB engine with a deterministic permutation."""
    engine = QueryBinningEngine(
        partition=partition,
        attribute=attribute,
        scheme=scheme or NonDeterministicScheme(),
        cloud=CloudServer(storage_backend=storage_backend),
        rng=random.Random(seed),
        force_layout=force_layout,
    )
    return engine.setup()


def build_naive_engine(
    partition: PartitionResult, attribute: str, scheme=None
) -> NaivePartitionedEngine:
    """The non-binned (leaky) partitioned engine used as the §II strawman."""
    engine = NaivePartitionedEngine(
        partition=partition,
        attribute=attribute,
        scheme=scheme or NonDeterministicScheme(),
        cloud=CloudServer(),
    )
    return engine.setup()


def print_table(title: str, header: list, rows: list) -> None:
    """Print a small aligned table (the regenerated paper table/figure)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    print("  " + " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
