"""Vectorized crypto hot path vs. the scalar reference loops (PR 8).

Measures what the batched crypto layer actually buys under a *skewed* query
mix — the workload shape the paper's security analysis worries about and the
one where hot bins are recomputed most often:

* **end-to-end qps per scheme** — the same dataset and the same hot-key
  workload served by two engines: one with the batch pipeline enabled (the
  default) and one with ``use_batch=False`` forcing the scalar reference
  loops end to end (per-row crypto *and* the per-query linear bin rescan at
  merge time — the PR 7 pipeline).  Owner caches and the cloud's interned
  retrievals are cleared between passes, so every pass pays the full
  token-generation → search → decryption → merge pipeline the vectorization
  rewrote.  Passes are interleaved scalar/vectorized and the *minimum* of
  several repeats is reported, in both wall-clock and CPU seconds — on a
  contended single-CPU host the CPU-second figure is the stable one, and on
  an idle host the two coincide; the recorded speedup uses CPU seconds.
* **owner-side crypto micro-passes** — ``encrypt_rows`` / ``decrypt_rows``
  over the whole sensitive partition, batch vs. scalar, isolating the
  primitive-level amortisation (HMAC templates, cached AESGCM instances,
  single nonce draw) from engine effects.
* **process-member wire accounting** — one sharded workload through
  process-backed members, reporting the real transport bytes
  (``NetworkModel.wire_bytes``) the framed pickle-5 protocol moved, so
  serialization cost is visible next to wall clock.  Wall-clock scaling
  claims self-skip below 4 usable CPUs (same convention as
  ``bench_perf_multicloud.py``); byte accounting is CPU-independent.

Run directly to refresh the ``vectorized_hot_path`` section of
``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_vectorized_hot_path.py

The acceptance assertion (≥2x qps for at least one scheme at 100k rows) is
not auto-collected; run it explicitly::

    PYTHONPATH=src python -m pytest -m perf -q benchmarks/bench_vectorized_hot_path.py
"""

from __future__ import annotations

import gc
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.process_member import process_backend_available
from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.crypto.searchable import SSEScheme
from repro.workloads.generator import (
    generate_partitioned_dataset,
    generate_query_stream,
)

from benchmarks.helpers import print_table

TUPLES_PER_VALUE = 10
DEFAULT_SIZES: Tuple[int, ...] = (100_000,)
DEFAULT_QUERIES = 2000
#: the default skewed load: 2% of values take 90% of the queries (a classic
#: cache-hotspot shape), the cold tail spreads the rest — hot bins are hit
#: repeatedly, which is exactly the regime the grouped merge and the batch
#: hooks target, while the tail keeps cold-bin decryption in the measurement
DEFAULT_MIX = "hotkey"
DEFAULT_HOT_FRACTION = 0.02
DEFAULT_HOT_WEIGHT = 0.9
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: scheme configs under test; both run with encrypted indexes on, so the
#: deterministic scheme exercises the tag-index probe path and SSE the
#: bin-store trial-decryption path — the two cloud-side hot loops PR 8
#: vectorized.
CONFIGS = {
    "tag-index": DeterministicScheme,
    "sse-bin-store": SSEScheme,
}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_dataset(size: int, seed: int):
    return generate_partitioned_dataset(
        num_values=size // TUPLES_PER_VALUE,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=TUPLES_PER_VALUE,
        seed=seed,
    )


def _build_engine(dataset, scheme, use_batch: bool):
    scheme.use_batch = use_batch
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme,
        cloud=CloudServer(use_encrypted_indexes=True),
        rng=random.Random(13),
    )
    return engine.setup()


def _clear_hot_caches(engine) -> None:
    """Force every pass to recompute the full crypto pipeline.

    The interning/caching layers (owner token & request caches, decrypted-bin
    cache, the cloud's interned retrievals) deliberately make steady-state
    repeats nearly free; this benchmark measures the *compute* regime those
    caches sit in front of, so each pass starts cold.
    """
    engine._token_cache.clear()
    engine._request_cache.clear()
    engine._decrypted_bin_cache.clear()
    engine.cloud.invalidate_retrievals()


def _measure_pair(
    engines: Dict[str, object], workload: Sequence[object], repeats: int = 3
) -> Dict[str, Dict]:
    """Interleaved scalar/vectorized passes; min-of-repeats per side.

    Interleaving cancels slow host-wide drift (thermal, noisy neighbours),
    the minimum discards transient stalls, and GC is paused through the
    timed region so collection pauses don't land on one side; both
    wall-clock and CPU seconds are captured per pass.
    """
    for engine in engines.values():  # warmup: touch every code path once
        _clear_hot_caches(engine)
        engine.execute_workload(list(workload), placement="batched")
    best_wall = {label: float("inf") for label in engines}
    best_cpu = {label: float("inf") for label in engines}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for label, engine in engines.items():
                _clear_hot_caches(engine)
                wall = time.perf_counter()
                cpu = time.process_time()
                engine.execute_workload(list(workload), placement="batched")
                best_cpu[label] = min(best_cpu[label], time.process_time() - cpu)
                best_wall[label] = min(best_wall[label], time.perf_counter() - wall)
    finally:
        if gc_was_enabled:
            gc.enable()
    queries = len(workload)
    return {
        label: {
            "queries": queries,
            "repeats": repeats,
            "best_wall_seconds": best_wall[label],
            "best_cpu_seconds": best_cpu[label],
            "queries_per_second": queries / best_wall[label],
            "queries_per_cpu_second": queries / best_cpu[label],
            "batch_calls": engine.scheme.batch_calls,
            "scalar_fallback_calls": engine.scheme.scalar_fallback_calls,
        }
        for label, engine in engines.items()
    }


def _measure_owner_crypto(dataset, scheme_factory, repeats: int = 2) -> Dict:
    """Batch vs. scalar ``encrypt_rows``/``decrypt_rows`` over the partition.

    Same discipline as :func:`_measure_pair`: interleaved sides, min of
    repeats, CPU seconds, GC paused — a single wall-clock pass on a
    contended host can swing 2-3x and invert the comparison.
    """
    rows = list(dataset.partition.sensitive.rows)
    key = SecretKey.from_passphrase("bench-vectorized-owner")
    out: Dict = {"rows": len(rows)}
    schemes = {}
    for label, use_batch in (("scalar", False), ("vectorized", True)):
        schemes[label] = scheme_factory(key)
        schemes[label].use_batch = use_batch
        out[label] = {
            "encrypt_seconds": float("inf"),
            "decrypt_seconds": float("inf"),
        }
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for label, scheme in schemes.items():
                started = time.process_time()
                encrypted = scheme.encrypt_rows(rows, dataset.attribute)
                encrypt_seconds = time.process_time() - started
                started = time.process_time()
                decrypted = scheme.decrypt_rows(encrypted)
                decrypt_seconds = time.process_time() - started
                assert len(decrypted) == len(rows)
                out[label]["encrypt_seconds"] = min(
                    out[label]["encrypt_seconds"], encrypt_seconds
                )
                out[label]["decrypt_seconds"] = min(
                    out[label]["decrypt_seconds"], decrypt_seconds
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    out["encrypt_speedup"] = (
        out["scalar"]["encrypt_seconds"] / out["vectorized"]["encrypt_seconds"]
        if out["vectorized"]["encrypt_seconds"]
        else float("inf")
    )
    out["decrypt_speedup"] = (
        out["scalar"]["decrypt_seconds"] / out["vectorized"]["decrypt_seconds"]
        if out["vectorized"]["decrypt_seconds"]
        else float("inf")
    )
    return out


def _measure_process_wire(
    size: int, queries: int, seed: int, server_count: int = 4
) -> Optional[Dict]:
    """One sharded workload through process members; report real wire bytes."""
    if not process_backend_available():  # pragma: no cover - non-POSIX
        return None
    dataset = _build_dataset(size, seed)
    workload = generate_query_stream(
        dataset.all_values,
        queries,
        mix=DEFAULT_MIX,
        hot_fraction=DEFAULT_HOT_FRACTION,
        hot_weight=DEFAULT_HOT_WEIGHT,
        seed=seed + 1,
    )
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=SSEScheme(SecretKey.from_passphrase("bench-vectorized-wire")),
        cloud=CloudServer(),
        rng=random.Random(13),
        multi_cloud=MultiCloud(server_count, member_backend="process"),
    )
    engine.setup()
    try:
        fleet = engine.multi_cloud
        setup_wire_bytes = fleet.total_wire_bytes()
        started = time.perf_counter()
        engine.execute_workload(workload, placement="sharded")
        elapsed = time.perf_counter() - started
        workload_wire_bytes = fleet.total_wire_bytes() - setup_wire_bytes
        return {
            "relation_rows": size,
            "queries": queries,
            "server_count": server_count,
            "usable_cpus": _usable_cpus(),
            "elapsed_seconds": elapsed,
            "queries_per_second": queries / elapsed if elapsed else float("inf"),
            "setup_wire_bytes": setup_wire_bytes,
            "workload_wire_bytes": workload_wire_bytes,
            "wire_bytes_per_query": workload_wire_bytes / queries if queries else 0.0,
            "note": (
                "wire bytes are real transported frame bytes (pickle-5 payloads "
                "+ headers + out-of-band buffers, both directions) measured by "
                "FrameChannel; wall-clock scaling claims require >= "
                f"{server_count} usable CPUs"
            ),
        }
    finally:
        engine.multi_cloud.close()


def run_vectorized_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    queries: int = DEFAULT_QUERIES,
    mix: str = DEFAULT_MIX,
    hot_fraction: float = DEFAULT_HOT_FRACTION,
    hot_weight: float = DEFAULT_HOT_WEIGHT,
    seed: int = 29,
    wire_size: int = 20_000,
    wire_queries: int = 120,
    out_path: Optional[Path] = OUTPUT_PATH,
) -> Dict:
    """Sweep sizes × schemes × {scalar, vectorized}; fold into the trajectory."""
    section: Dict = {
        "benchmark": "vectorized_hot_path",
        "tuples_per_value": TUPLES_PER_VALUE,
        "query_mix": mix,
        "hot_fraction": hot_fraction,
        "hot_weight": hot_weight,
        "queries": queries,
        "usable_cpus": _usable_cpus(),
        "sizes": [],
    }
    for size in sizes:
        dataset = _build_dataset(size, seed)
        workload = generate_query_stream(
            dataset.all_values,
            queries,
            mix=mix,
            hot_fraction=hot_fraction,
            hot_weight=hot_weight,
            seed=seed + 1,
        )
        entry: Dict = {"relation_rows": size, "results": {}}
        for name, scheme_cls in CONFIGS.items():
            engines = {}
            setup_seconds = {}
            for label, use_batch in (("scalar", False), ("vectorized", True)):
                scheme = scheme_cls(
                    SecretKey.from_passphrase("bench-vectorized")
                )
                setup_started = time.perf_counter()
                engines[label] = _build_engine(dataset, scheme, use_batch)
                setup_seconds[label] = time.perf_counter() - setup_started
            runs: Dict = _measure_pair(engines, workload)
            for label, seconds in setup_seconds.items():
                runs[label]["setup_seconds"] = seconds
            # speedup is asserted on CPU seconds: stable under host
            # contention, and identical to the wall ratio on an idle host
            runs["speedup"] = (
                runs["scalar"]["best_cpu_seconds"]
                / runs["vectorized"]["best_cpu_seconds"]
                if runs["vectorized"]["best_cpu_seconds"]
                else float("inf")
            )
            runs["wall_speedup"] = (
                runs["scalar"]["best_wall_seconds"]
                / runs["vectorized"]["best_wall_seconds"]
                if runs["vectorized"]["best_wall_seconds"]
                else float("inf")
            )
            entry["results"][name] = runs
        entry["owner_crypto"] = {
            name: _measure_owner_crypto(dataset, scheme_cls)
            for name, scheme_cls in CONFIGS.items()
        }
        section["sizes"].append(entry)
    wire = _measure_process_wire(wire_size, wire_queries, seed)
    if wire is not None:
        section["process_member_wire"] = wire
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["vectorized_hot_path"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


def print_results(section: Dict) -> None:
    for entry in section["sizes"]:
        rows = []
        for name, runs in entry["results"].items():
            rows.append(
                (
                    name,
                    f"{runs['scalar']['queries_per_cpu_second']:.1f}",
                    f"{runs['vectorized']['queries_per_cpu_second']:.1f}",
                    f"{runs['speedup']:.2f}x",
                    f"{runs['wall_speedup']:.2f}x",
                )
            )
        print_table(
            f"vectorized hot path @ {entry['relation_rows']} rows "
            f"({section['query_mix']} mix, {section['usable_cpus']} usable cpus)",
            ["config", "scalar q/cpu-s", "vect q/cpu-s", "cpu speedup", "wall speedup"],
            rows,
        )
        crypto_rows = []
        for name, measured in entry["owner_crypto"].items():
            crypto_rows.append(
                (
                    name,
                    measured["rows"],
                    f"{measured['encrypt_speedup']:.2f}x",
                    f"{measured['decrypt_speedup']:.2f}x",
                )
            )
        print_table(
            "owner-side crypto (batch vs scalar)",
            ["config", "rows", "encrypt speedup", "decrypt speedup"],
            crypto_rows,
        )
    wire = section.get("process_member_wire")
    if wire:
        print_table(
            f"process-member wire @ {wire['relation_rows']} rows",
            ["queries", "qps", "wire bytes", "bytes/query"],
            [
                (
                    wire["queries"],
                    f"{wire['queries_per_second']:.1f}",
                    wire["workload_wire_bytes"],
                    f"{wire['wire_bytes_per_query']:.0f}",
                )
            ],
        )


@pytest.mark.perf
@pytest.mark.slowperf
def test_vectorized_acceptance_at_100k():
    """The acceptance bar: ≥2x qps over the scalar path for at least one
    scheme at 100k rows under the skewed mix, with the batch counters proving
    the vectorized run actually took the batch paths."""
    section = run_vectorized_suite(sizes=(100_000,), out_path=None)
    print_results(section)
    results = section["sizes"][0]["results"]
    for runs in results.values():
        assert runs["vectorized"]["batch_calls"] > 0
        assert runs["vectorized"]["scalar_fallback_calls"] == 0
        assert runs["scalar"]["batch_calls"] == 0
    assert max(runs["speedup"] for runs in results.values()) >= 2.0
    wire = section.get("process_member_wire")
    if wire is not None:
        # byte accounting is CPU-independent: the framed protocol must have
        # actually moved the workload over the pipes
        assert wire["workload_wire_bytes"] > 0
        if wire["usable_cpus"] < 4:
            pytest.skip(
                f"only {wire['usable_cpus']} usable CPUs: wall-clock wire "
                "claims need the fleet on real cores"
            )


if __name__ == "__main__":
    suite_section = run_vectorized_suite()
    print_results(suite_section)
    print(f"\ntrajectory updated at {OUTPUT_PATH}")
