"""Table V / Figure 4b — dropping surviving matches by ignoring Algorithm 2.

Replays the paper's strawman: associated values are answered correctly, but
the non-associated values are always served from a fixed bin pair instead of
the pair Algorithm 2 dictates.  The resulting adversarial view eliminates
surviving matches — the adversary learns that SB2's tuples can only be
associated with NSB0 — which is exactly the leakage Figure 4b illustrates.
"""

import itertools

from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.adversary.view import AdversarialView, ViewLog
from repro.core.retrieval import BinRetriever

from benchmarks.bench_table4_surviving_matches import figure3_layout
from benchmarks.helpers import print_table

#: The fixed (sensitive bin, non-sensitive bin) pairs the strawman uses for the
#: non-associated values, mirroring Table V.
TABLE5_FIXED_PAIRS = {
    "s7": (2, 0),
    "ns12": (1, 1),
    "ns13": (1, 1),
    "ns14": (1, 1),
    "ns15": (1, 1),
    "s4": (4, 0),
    "s8": (3, 0),
    "s9": (4, 0),
    "s10": (0, 0),
}


def run_strawman():
    layout = figure3_layout()
    retriever = BinRetriever(layout)
    log = ViewLog()
    query_id = itertools.count()
    for value in ("s1", "s2", "s3", "s5", "s6"):  # associated: follow the rules
        decision = retriever.retrieve(value)
        log.append(
            AdversarialView(
                query_id=next(query_id),
                attribute="A",
                non_sensitive_request=decision.non_sensitive_values,
                sensitive_request_size=len(decision.sensitive_values),
                returned_non_sensitive=(),
                returned_sensitive_rids=tuple(range(len(decision.sensitive_values))),
                sensitive_bin_index=decision.sensitive_bin_index,
                non_sensitive_bin_index=decision.non_sensitive_bin_index,
            )
        )
    for value, (sensitive_bin, non_sensitive_bin) in TABLE5_FIXED_PAIRS.items():
        log.append(
            AdversarialView(
                query_id=next(query_id),
                attribute="A",
                non_sensitive_request=layout.non_sensitive_bin(non_sensitive_bin).values,
                sensitive_request_size=layout.sensitive_bin(sensitive_bin).size,
                returned_non_sensitive=(),
                returned_sensitive_rids=(sensitive_bin,),
                sensitive_bin_index=sensitive_bin,
                non_sensitive_bin_index=non_sensitive_bin,
            )
        )
    return layout, SurvivingMatchAnalysis.from_view_log(
        log, num_sensitive_bins=5, num_non_sensitive_bins=2
    )


def test_table5_dropped_surviving_matches(benchmark):
    layout, analysis = benchmark(run_strawman)

    dropped = analysis.dropped_pairs()
    rows = [(f"SB{i}", f"NSB{j}") for i, j in dropped]
    print_table(
        "Figure 4b: surviving matches dropped by the Table V strawman",
        ["sensitive bin", "non-sensitive bin no longer possible"],
        rows,
    )
    print(
        f"  surviving fraction: {analysis.surviving_fraction():.2f} "
        f"(QB with Algorithm 2 keeps 1.00)"
    )

    # The paper's observation: random/fixed retrieval drops matches (e.g. SB2
    # is never seen with NSB1), so the strawman is insecure.
    assert not analysis.is_complete()
    assert (2, 1) in dropped
    assert analysis.surviving_fraction() < 1.0
