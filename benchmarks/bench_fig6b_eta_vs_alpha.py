"""Figure 6b — measured η versus sensitivity fraction α for three DB sizes.

The paper measures η for databases of 150 K, 1.5 M, and 4.5 M tuples on a
commercial DBMS whose non-deterministic encryption ("No-Ind(A)") is searched
by shipping the encrypted column to the owner and decrypting it there.  The
reproduction calibrates the same per-tuple costs on its own substrate
(cleartext index probe, per-tuple decryption + transfer for the encrypted
side, link model for communication) on a laptop-sized dataset, then evaluates
the exact η ratio of §V-A at the paper's three target sizes.

Expected shape (Figure 6b): η grows roughly linearly with α and stays below 1
for every database size — QB beats the fully-encrypted baseline regardless of
scale.
"""

import random
import time

from repro.cloud.server import CloudServer
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import partition_by_fraction
from repro.model.cost import eta_full
from repro.model.parameters import CostParameters
from repro.workloads.tpch import generate_lineitem

from benchmarks.helpers import build_qb_engine, print_table

CALIBRATION_ROWS = 6_000
TARGET_SIZES = (150_000, 1_500_000, 4_500_000)
ALPHAS = (0.1, 0.2, 0.4, 0.6, 0.8)
ATTRIBUTE = "L_PARTKEY"


def calibrate():
    """Measure per-probe and per-tuple costs on the calibration dataset."""
    lineitem = generate_lineitem(num_rows=CALIBRATION_ROWS, seed=3)
    values = lineitem.distinct_values(ATTRIBUTE)
    sample = random.Random(0).sample(values, min(30, len(values)))

    # Cleartext probe cost: hash-index lookups on the cloud server.
    cloud = CloudServer()
    cloud.store_non_sensitive(lineitem)
    cloud.build_index(ATTRIBUTE)
    start = time.perf_counter()
    for value in sample:
        cloud.process_request(ATTRIBUTE, [value], [])
    plaintext_cost = max((time.perf_counter() - start) / len(sample), 1e-7)

    # Encrypted per-tuple cost of the No-Ind search: the owner downloads the
    # encrypted searchable column and decrypts it, so the per-tuple cost is
    # one transfer plus one authenticated decryption.
    scheme = NonDeterministicScheme()
    encrypted = scheme.encrypt_rows(list(lineitem.rows)[:2_000], ATTRIBUTE)
    start = time.perf_counter()
    for row in encrypted:
        scheme.decrypt_row(row)
    decrypt_per_tuple = (time.perf_counter() - start) / len(encrypted)
    communication_cost = CloudServer().network.seconds_per_tuple
    encrypted_cost = decrypt_per_tuple + communication_cost

    distinct_values = len(values)
    return (
        CostParameters(
            communication_cost=communication_cost,
            plaintext_cost=plaintext_cost,
            encrypted_cost=encrypted_cost,
            selectivity=1.0 / distinct_values,
        ),
        distinct_values,
    )


def measure_bin_widths(alpha: float) -> tuple:
    """Bin widths QB actually builds at this sensitivity on calibration data."""
    lineitem = generate_lineitem(num_rows=CALIBRATION_ROWS, seed=3)
    partition = partition_by_fraction(lineitem, ATTRIBUTE, alpha)
    engine = build_qb_engine(partition, ATTRIBUTE, seed=4)
    return (
        engine.layout.max_sensitive_bin_size,
        engine.layout.max_non_sensitive_bin_size,
    )


def test_figure6b_eta_vs_alpha(benchmark):
    (params, calib_distinct) = benchmark.pedantic(calibrate, rounds=1, iterations=1)

    rows = []
    etas_by_size = {size: [] for size in TARGET_SIZES}
    widths_by_alpha = {alpha: measure_bin_widths(alpha) for alpha in ALPHAS}
    for alpha in ALPHAS:
        sensitive_width, non_sensitive_width = widths_by_alpha[alpha]
        row = [f"{alpha:.0%}"]
        for size in TARGET_SIZES:
            scale = (size / CALIBRATION_ROWS) ** 0.5
            distinct_at_size = calib_distinct * size / CALIBRATION_ROWS
            size_params = params.with_selectivity(1.0 / distinct_at_size)
            eta = eta_full(
                sensitive_tuples=int(size * alpha),
                non_sensitive_tuples=int(size * (1 - alpha)),
                sensitive_bin_width=max(1, int(sensitive_width * scale)),
                non_sensitive_bin_width=max(1, int(non_sensitive_width * scale)),
                params=size_params,
            )
            etas_by_size[size].append(eta)
            row.append(f"{eta:.3f}")
        rows.append(tuple(row))

    print_table(
        "Figure 6b: eta vs alpha for three database sizes (No-Ind substrate)",
        ["alpha"] + [f"{size:,} tuples" for size in TARGET_SIZES],
        rows,
    )
    print(
        f"  calibrated: Cp={params.plaintext_cost * 1e6:.1f}us/probe, "
        f"Ce={params.encrypted_cost * 1e6:.1f}us/tuple, "
        f"Ccom={params.communication_cost * 1e6:.2f}us/tuple, "
        f"beta={params.beta:.1f}, gamma={params.gamma:.1f}"
    )

    # Shape: eta < 1 for every size and every alpha, increasing with alpha,
    # and approximately equal to alpha (the paper's analytical prediction).
    for size in TARGET_SIZES:
        etas = etas_by_size[size]
        assert all(eta < 1.0 for eta in etas), (size, etas)
        assert etas == sorted(etas)
        for alpha, eta in zip(ALPHAS, etas):
            assert eta >= alpha * 0.8
