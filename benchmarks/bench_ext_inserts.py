"""Full-version insert experiment — cost of inserts under QB.

Measures the three insert regimes the full version discusses:

* inserting tuples whose value already exists in the bins (cheap: encrypt and
  append);
* inserting previously unseen values that still fit into the existing layout
  (cheap: one slot assignment);
* accumulating enough new values that a full re-binning is triggered
  (expensive: rebuild and re-outsource).

The shape to reproduce: in-place inserts are orders of magnitude cheaper than
a re-bin, and queries remain correct across all regimes.
"""

import time

from repro.extensions.inserts import IncrementalInserter
from repro.workloads.generator import generate_partitioned_dataset

from benchmarks.helpers import build_qb_engine, print_table


def dataset():
    return generate_partitioned_dataset(
        num_values=120,
        sensitivity_fraction=0.4,
        association_fraction=0.5,
        tuples_per_value=2,
        seed=83,
    )


def insert_existing(engine, inserter, data, count=30):
    start = time.perf_counter()
    for index in range(count):
        value = data.all_values[index % len(data.all_values)]
        inserter.insert({"key": value, "payload": f"ins{index}"}, sensitive=(index % 2 == 0))
    return (time.perf_counter() - start) / count


def insert_new_values(inserter, count=20):
    start = time.perf_counter()
    for index in range(count):
        inserter.insert(
            {"key": f"fresh-{index}", "payload": "x"}, sensitive=(index % 2 == 0)
        )
    return (time.perf_counter() - start) / count


def force_rebin(inserter):
    start = time.perf_counter()
    inserter.rebin()
    return time.perf_counter() - start


def run_experiment():
    data = dataset()
    engine = build_qb_engine(data.partition, data.attribute, seed=31)
    inserter = IncrementalInserter(engine, rebin_threshold=10_000)
    existing_cost = insert_existing(engine, inserter, data)
    new_value_cost = insert_new_values(inserter)
    rebin_cost = force_rebin(inserter)
    return data, engine, inserter, existing_cost, new_value_cost, rebin_cost


def test_insert_costs_under_qb(benchmark):
    data, engine, inserter, existing_cost, new_value_cost, rebin_cost = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    print_table(
        "Insert cost under QB (per operation)",
        ["operation", "ms"],
        [
            ("insert, value already binned", f"{existing_cost * 1e3:.3f}"),
            ("insert, new value placed in existing bins", f"{new_value_cost * 1e3:.3f}"),
            ("full re-binning + re-outsourcing", f"{rebin_cost * 1e3:.3f}"),
        ],
    )
    print(
        f"  inserts absorbed: {inserter.stats.total}, "
        f"re-binnings: {inserter.stats.rebins_triggered}"
    )

    # Shape: incremental inserts are much cheaper than a full re-bin, and the
    # data stays queryable and correct after all of them.
    assert existing_cost < rebin_cost
    assert new_value_cost < rebin_cost
    assert len(engine.query("fresh-0")) == 1
    sample_value = data.all_values[0]
    expected = {
        row.rid
        for row in data.partition.sensitive.rows + data.partition.non_sensitive.rows
        if row[data.attribute] == sample_value
    }
    assert {row.rid for row in engine.query(sample_value)} == expected
