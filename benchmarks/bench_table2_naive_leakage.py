"""Table II — adversarial view of naive partitioned execution (Example 2).

Regenerates the three rows of Table II (queries for E259, E101, E199 over the
Employee partition without QB) and verifies that the view leaks exactly what
the paper describes: E259 appears on both sides, E101 only encrypted, E199
only in cleartext — enough for the association attack to succeed.
"""

from repro.adversary.attacks import kpa_association_attack
from repro.workloads.employee import employee_partition, paper_example_queries

from benchmarks.helpers import build_naive_engine, print_table


def run_naive_queries():
    engine = build_naive_engine(employee_partition(), "EId")
    for value in paper_example_queries():
        engine.query(value)
    return engine


def test_table2_naive_partitioned_views(benchmark):
    engine = benchmark(run_naive_queries)

    rows = []
    for value, view in zip(paper_example_queries(), engine.cloud.view_log):
        encrypted = ", ".join(f"E(t{rid + 1})" for rid in view.returned_sensitive_rids) or "null"
        cleartext = ", ".join(f"t{row.rid + 1}" for row in view.returned_non_sensitive) or "null"
        rows.append((value, encrypted, cleartext))
    print_table(
        "Table II: queries and returned tuples (no QB)",
        ["query value", "Employee2 (encrypted)", "Employee3 (cleartext)"],
        rows,
    )

    # Paper shape: E259 -> E(t4) + t2 ; E101 -> E(t1) + null ; E199 -> null + t3.
    by_value = {value: (enc, clear) for value, enc, clear in rows}
    assert by_value["E259"] == ("E(t4)", "t2")
    assert by_value["E101"] == ("E(t1)", "null")
    assert by_value["E199"] == ("null", "t3")

    attack = kpa_association_attack(engine.cloud.view_log, num_non_sensitive_values=4)
    print(
        f"  association attack: succeeded={attack.succeeded}, "
        f"posterior={attack.details['best_posterior']:.2f}"
    )
    assert attack.succeeded
